"""Heterogeneous fleets: hardware layouts x traffic programs, cost-queried.

The datacenter scenarios so far size fleets in *replicas* of one GPU; real
capacity planning buys *hardware*.  This study crosses fleet hardware
layouts (the ``fleet`` axis: every pool carries its own
:class:`~repro.api.HardwareSpec`) with traffic programs (the ``traffic``
axis: steady vs burst) on the weighted chat+agent mixture, prices each run
with the catalog's GPU hourly rates, and asks the planner question on the
resulting frontier: dollars per 1k served tokens vs chat SLO attainment.

The headline read: a mixed fleet -- H100 chat pool for latency headroom,
L4 agent pool for cheap background tokens -- lands on the cost/attainment
Pareto frontier and *dominates* the homogeneous A100 fleet sized to the
same chat attainment, which pays A100 rates for every background token.
:class:`~repro.serving.planner.FleetPlanner` then selects the mixed layout
under a cost budget.  ``examples/hetero_fleet.py`` prints the grid, the
frontier, and the plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.agents import AgentConfig
from repro.analysis.reporting import format_table
from repro.api import (
    ArrivalSpec,
    ExperimentSpec,
    FleetPlan,
    FleetPlanner,
    HardwareSpec,
    MeasurementSpec,
    ParetoPoint,
    PoolSpec,
    StudyAxis,
    StudyResult,
    StudySpec,
    WeightedWorkload,
    run_study,
)
from repro.serving.shapes import ConstantShape, RateShape, SquareWaveShape

#: Metric columns the heterogeneous-fleet tables report.
HETERO_METRICS: Tuple[Tuple[str, object], ...] = (
    ("completed", "num_completed"),
    ("chat_attainment", "class_attainment:chat"),
    ("chat_p95_s", "class_p95:chat"),
    ("cost_usd", "cost_usd"),
    ("usd_per_1k_tok", "cost_per_1k_tokens"),
    ("energy_wh", "energy_wh"),
)

#: Fleet candidates: (label, chat GPU, chat replicas, agent GPU, agent
#: replicas).  The homogeneous A100 pair brackets the mixed fleet -- lean
#: (cheap, SLO-fragile) and heavy (sized until chat attainment matches the
#: mixed fleet, at A100 rates for every agent token).
DEFAULT_FLEETS: Tuple[Tuple[str, str, int, str, int], ...] = (
    ("a100-lean", "A100-40GB", 1, "A100-40GB", 2),
    ("a100-heavy", "A100-40GB", 4, "A100-40GB", 2),
    ("mixed-h100-l4", "H100-80GB", 1, "L4", 2),
)


def _fleet_layout(
    chat_gpu: str, chat_replicas: int, agent_gpu: str, agent_replicas: int
) -> Tuple[PoolSpec, ...]:
    """One hardware candidate: a chat pool + an agent pool, each pinned."""
    return (
        PoolSpec(
            name="chat",
            model="8b",
            replicas=chat_replicas,
            router="least-loaded",
            traffic_classes=("chat",),
            hardware=HardwareSpec(gpu=chat_gpu),
        ),
        PoolSpec(
            name="agent",
            model="8b",
            replicas=agent_replicas,
            scheduler="sjf-by-predicted-decode",
            router="prefix-affinity",
            traffic_classes=("agent",),
            hardware=HardwareSpec(gpu=agent_gpu),
        ),
    )


@dataclass
class HeteroFleetResult:
    """The executed hardware-layout grid plus its planner views."""

    result: StudyResult
    chat_slo_s: float

    def rows(self) -> List[Dict[str, object]]:
        return self.result.tabulate(HETERO_METRICS)

    def format(self) -> str:
        return self.result.format(
            f"Hardware layouts on the chat+agent mixture "
            f"(chat p95 SLO {self.chat_slo_s:g}s)",
            HETERO_METRICS,
        )

    def frontier(self, traffic: Optional[str] = None) -> List[ParetoPoint]:
        """$/1k-tokens vs chat-attainment frontier (optionally per shape)."""
        return self.planner(traffic).frontier

    def planner(self, traffic: Optional[str] = None) -> FleetPlanner:
        """A planner over this study (optionally one traffic slice)."""
        view = self.result if traffic is None else self.result.slice(traffic=traffic)
        return FleetPlanner(
            view,
            cost="cost_per_1k_tokens",
            quality="class_attainment:chat",
            minimize_quality=False,
        )

    def plan(self, cost_budget: float, traffic: Optional[str] = None) -> FleetPlan:
        """The best-attainment layout within a $/1k-tokens budget."""
        return self.planner(traffic).plan_for_budget(cost_budget)

    def format_frontier(self, traffic: str) -> str:
        rows = [
            {
                "fleet": entry.point.labels.get("fleet", "?"),
                "usd_per_1k_tok": entry.cost,
                "chat_attainment": entry.quality,
                "cost_usd": entry.point.metric("cost_usd"),
            }
            for entry in self.frontier(traffic)
        ]
        return format_table(
            rows,
            f"Pareto frontier under {traffic} traffic ($/1k tokens vs chat attainment)",
        )

    def frontier_fleets(self, traffic: str) -> List[str]:
        """The fleet labels on the frontier, cheapest first."""
        return [entry.point.labels.get("fleet", "?") for entry in self.frontier(traffic)]

    def fleet_metric(self, traffic: str, fleet: str, metric: object) -> float:
        """One metric of one (traffic, fleet) grid point."""
        view = self.result.slice(traffic=traffic, fleet=fleet)
        if not view.points:
            raise ValueError(f"no grid point traffic={traffic!r} fleet={fleet!r}")
        return view.points[0].metric(metric)

    def mixed_dominates(
        self, traffic: str, mixed: str = "mixed-h100-l4", homogeneous: str = "a100-heavy"
    ) -> bool:
        """Does the mixed fleet dominate the attainment-matched A100 fleet?

        True when the mixed layout serves tokens no more expensively while
        holding chat attainment at least as high (strictly better in at
        least one) -- i.e. the homogeneous layout cannot sit on the
        frontier while the mixed one can.
        """
        mixed_cost = self.fleet_metric(traffic, mixed, "cost_per_1k_tokens")
        mixed_quality = self.fleet_metric(traffic, mixed, "class_attainment:chat")
        homog_cost = self.fleet_metric(traffic, homogeneous, "cost_per_1k_tokens")
        homog_quality = self.fleet_metric(traffic, homogeneous, "class_attainment:chat")
        return (
            mixed_cost <= homog_cost
            and mixed_quality >= homog_quality
            and (mixed_cost < homog_cost or mixed_quality > homog_quality)
        )


def hetero_fleet_study(
    qps: float = 1.0,
    num_requests: int = 48,
    chat_weight: float = 0.6,
    agent_weight: float = 0.4,
    chat_slo_s: float = 10.0,
    fleets: Sequence[Tuple[str, str, int, str, int]] = DEFAULT_FLEETS,
    burst_shape: Optional[RateShape] = None,
    task_pool_size: int = 10,
    seed: int = 0,
    parallel: int = 1,
) -> HeteroFleetResult:
    """Sweep hardware layouts x traffic shapes on the chat+agent mixture.

    ``fleets`` lists (label, chat GPU, chat replicas, agent GPU, agent
    replicas) candidates from the GPU catalog; the traffic axis compares
    steady arrivals against a square-wave burst.  Arrival process, the
    mixture, schedulers, and seed are held fixed, so cost and attainment
    differences are attributable to the hardware layout (and, across the
    other axis, the traffic program).
    """
    if burst_shape is None:
        burst_shape = SquareWaveShape(
            base_level=0.5, burst_level=2.5, period_s=24.0, burst_start_s=8.0,
            burst_s=8.0,
        )
    base = ExperimentSpec(
        pools=_fleet_layout(*fleets[0][1:]),
        workloads=(
            WeightedWorkload(
                agent="chatbot", workload="sharegpt", weight=chat_weight, name="chat"
            ),
            WeightedWorkload(
                agent="react", workload="hotpotqa", weight=agent_weight, name="agent"
            ),
        ),
        agent_config=AgentConfig(max_iterations=5),
        arrival=ArrivalSpec(
            process="poisson",
            qps=qps,
            num_requests=num_requests,
            task_pool_size=task_pool_size,
        ),
        measurement=MeasurementSpec(class_slos=(("chat", chat_slo_s),)),
        max_decode_chunk=8,
        seed=seed,
    )
    study = StudySpec(
        base=base,
        axes=(
            StudyAxis(
                name="traffic",
                field="arrival.shape",
                values=(ConstantShape(), burst_shape),
                labels=("steady", "burst"),
            ),
            StudyAxis(
                name="fleet",
                field="pools",
                values=tuple(_fleet_layout(*fleet[1:]) for fleet in fleets),
                labels=tuple(fleet[0] for fleet in fleets),
            ),
        ),
        name="hetero-fleet",
    )
    return HeteroFleetResult(
        result=run_study(study, parallel=parallel), chat_slo_s=chat_slo_s
    )
