"""Predictive scale-ahead vs reactive autoscaling under the Table IV burst.

The paper's datacenter scenario (Table IV) gestures at a capacity-planning
question this study makes concrete: over a chat+agent burst, how much does
*anticipating* demand (arrival-rate forecasting + scale-ahead) buy over
*reacting* to it (queue depth), and what happens when admission control and
the autoscaler cooperate instead of working the same burst independently?

Three controller configurations share one autoscaled pool, one weighted
chat+agent mixture, one arrival plan, and one declared chat p95 SLO:

* ``reactive``    -- the PR-3 state of the art: queue-depth autoscaling,
  with ``slo-shed`` admission shedding agent work on the *current* backlog
  projection (the two controllers are blind to each other),
* ``predictive``  -- the autoscaler forecasts the arrival rate
  (:mod:`repro.serving.forecast`) and provisions replicas a warm-up ahead
  of the burst; admission still sheds on the current projection,
* ``cooperative`` -- predictive scale-ahead *plus* a cooperative gate: the
  shed projection credits in-flight scale-ups landing within the forecast
  horizon, so agent work is shed only when warm replicas cannot catch up
  (and admitted again as they land).

Reported per configuration: chat p95 / SLO attainment, agent rejection
rate, replica-seconds (the cost of elasticity), forecast error, and the
scale-ahead lead time (the head start prediction bought over the reactive
trigger).  ``examples/predictive_scaling.py`` prints the table;
``benchmarks/test_predictive_scaling.py`` pins the qualitative shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.agents import AgentConfig
from repro.analysis.reporting import format_table
from repro.api import (
    AdmissionSpec,
    ArrivalSpec,
    AutoscalerSpec,
    ExperimentSpec,
    MeasurementSpec,
    ResultSet,
    WeightedWorkload,
    run_experiment,
)

#: Controller configurations the study sweeps by default, in presentation order.
DEFAULT_MODES: Tuple[str, ...] = ("reactive", "predictive", "cooperative")


@dataclass
class PredictiveScalingResult:
    """Per-configuration outcomes of the scale-ahead study."""

    outcomes: Dict[str, ResultSet]
    chat_slo_s: float

    def rows(self) -> List[Dict[str, object]]:
        rows: List[Dict[str, object]] = []
        for mode, outcome in self.outcomes.items():
            chat = outcome.class_stats.get("chat")
            agent = outcome.class_stats.get("agent")
            rows.append(
                {
                    "mode": mode,
                    "chat_p95_s": chat.p95_latency_s if chat else 0.0,
                    "chat_attainment": (
                        chat.slo_attainment
                        if chat and chat.slo_attainment is not None
                        else 0.0
                    ),
                    "agent_rejection_rate": agent.rejection_rate if agent else 0.0,
                    "agent_rejected": agent.rejected if agent else 0,
                    "replica_seconds": outcome.replica_seconds,
                    "forecast_mae": outcome.forecast_mae,
                    "scale_ahead_lead_s": outcome.scale_ahead_lead_s,
                    "energy_wh": outcome.energy_wh,
                    "completed": outcome.num_completed,
                }
            )
        return rows

    # -- comparisons ---------------------------------------------------------
    def chat_attainment(self, mode: str) -> float:
        chat = self.outcomes[mode].class_stats.get("chat")
        if chat is None or chat.slo_attainment is None:
            return 0.0
        return chat.slo_attainment

    def agent_rejection_rate(self, mode: str) -> float:
        agent = self.outcomes[mode].class_stats.get("agent")
        return agent.rejection_rate if agent is not None else 0.0

    def replica_seconds(self, mode: str) -> float:
        return self.outcomes[mode].replica_seconds

    def beats_reactive(self, mode: str = "cooperative") -> bool:
        """Does ``mode`` beat the reactive baseline on cost or shed load at
        equal-or-better chat SLO attainment?

        The trade the study is after: fewer replica-seconds *or* a lower
        agent rejection rate, without giving up chat SLO attainment.
        """
        if self.chat_attainment(mode) < self.chat_attainment("reactive"):
            return False
        return (
            self.replica_seconds(mode) < self.replica_seconds("reactive")
            or self.agent_rejection_rate(mode)
            < self.agent_rejection_rate("reactive")
        )

    def format(self) -> str:
        return format_table(
            self.rows(),
            f"Scale-ahead autoscaling under the chat+agent burst "
            f"(chat p95 SLO {self.chat_slo_s:.0f}s)",
        )


def _autoscaler_for(
    mode: str,
    *,
    min_replicas: int,
    max_replicas: int,
    warmup_s: float,
    horizon_s: float,
    forecaster: str,
) -> AutoscalerSpec:
    """The autoscaler spec the study uses for one swept configuration."""
    base = dict(
        min_replicas=min_replicas,
        max_replicas=max_replicas,
        check_interval_s=1.0,
        warmup_s=warmup_s,
        scale_up_pending_per_replica=5.0,
        scale_down_pending_per_replica=0.5,
    )
    if mode == "reactive":
        return AutoscalerSpec(**base)
    return AutoscalerSpec(
        mode="predictive",
        forecaster=forecaster,
        horizon_s=horizon_s,
        forecaster_bucket_s=2.0,
        forecaster_alpha=0.6,
        forecaster_beta=0.4,
        **base,
    )


def _admission_for(mode: str, shed_window_s: float) -> AdmissionSpec:
    """Agent class on slo-shed protecting chat; cooperative only when asked."""
    return AdmissionSpec(
        per_class=(
            (
                "agent",
                AdmissionSpec(
                    policy="slo-shed",
                    protect_class="chat",
                    window_s=shed_window_s,
                    enter_factor=0.75,
                    exit_factor=0.5,
                    cooperative=(mode == "cooperative"),
                ),
            ),
        )
    )


def predictive_scaling_study(
    qps: float = 6.0,
    num_requests: int = 60,
    chat_slo_s: float = 16.0,
    chat_weight: float = 0.5,
    agent_weight: float = 0.5,
    min_replicas: int = 2,
    max_replicas: int = 6,
    warmup_s: float = 6.0,
    horizon_s: float = 10.0,
    forecaster: str = "holt",
    shed_window_s: float = 20.0,
    warmup_requests: int = 10,
    modes: Sequence[str] = DEFAULT_MODES,
    seed: int = 0,
) -> PredictiveScalingResult:
    """Sweep reactive vs predictive vs cooperative on the chat+agent burst.

    The mixture, arrival plan, scheduler (SJF by predicted decode), pool
    bounds, and seed are identical across configurations; only the
    autoscaler mode and the admission gate's cooperativeness vary, so the
    deltas in replica-seconds, agent rejection rate, and chat SLO
    attainment are attributable to the controllers alone.
    """
    base = ExperimentSpec(
        workloads=(
            WeightedWorkload(
                agent="chatbot", workload="sharegpt", weight=chat_weight, name="chat"
            ),
            WeightedWorkload(
                agent="react", workload="hotpotqa", weight=agent_weight, name="agent"
            ),
        ),
        replicas=min_replicas,
        router="least-loaded",
        scheduler="sjf-by-predicted-decode",
        agent_config=AgentConfig(max_iterations=5),
        arrival=ArrivalSpec(
            process="poisson", qps=qps, num_requests=num_requests, task_pool_size=10
        ),
        measurement=MeasurementSpec(
            class_slos=(("chat", chat_slo_s),), warmup_requests=warmup_requests
        ),
        max_decode_chunk=8,
        seed=seed,
    )
    outcomes: Dict[str, ResultSet] = {}
    for mode in modes:
        if mode not in DEFAULT_MODES:
            raise ValueError(
                f"predictive-scaling study does not know mode {mode!r}; "
                f"known: {list(DEFAULT_MODES)}"
            )
        spec = base.with_overrides(
            autoscaler=_autoscaler_for(
                mode,
                min_replicas=min_replicas,
                max_replicas=max_replicas,
                warmup_s=warmup_s,
                horizon_s=horizon_s,
                forecaster=forecaster,
            ),
            admission=_admission_for(mode, shed_window_s),
        )
        outcomes[mode] = run_experiment(spec)
    return PredictiveScalingResult(outcomes=outcomes, chat_slo_s=chat_slo_s)
