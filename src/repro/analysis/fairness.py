"""Multi-tenant fairness: schedulers x tenant skew x load, Pareto-queried.

A serving fleet is never one customer: arrivals come from a heavy-tailed
population of users -- a handful of whales and a long tail of occasional
callers -- and a scheduler that ignores identity lets the whales starve
the tail whenever capacity is contended.  This study makes the question
concrete with the declarative study machinery: a
:class:`~repro.api.StudySpec` sweeps admission-order policy (the
``scheduler`` axis: fcfs, priority, sjf-by-predicted-decode, and the
per-tenant ``vtc`` virtual-token-counter policy) against tenant skew (the
``arrival.tenants`` axis: a mildly vs heavily Zipf-skewed million-user
population) and offered load, over the weighted chat+agent mixture with a
chat latency SLO.

Fairness is read off :attr:`~repro.api.ResultSet.served_token_ratio`
(served-token max/min across contending tenants over the contended
window; 1.0 = perfectly fair) and :attr:`~repro.api.ResultSet.jain_fairness`,
and the frontier query ``pareto_frontier(cost="served_token_ratio",
quality="class_attainment:chat", minimize_quality=False)`` answers the
operator's question directly: which scheduler buys fairness without
paying for it in interactive SLO attainment?

The headline read: under heavy skew ``vtc`` holds the served-token ratio
well below fcfs (whose ratio blows up as the whale monopolises the
contended window) at equal or better chat SLO attainment -- fairness
scheduling is close to free.  ``examples/fairness.py`` prints the grid
and the frontier.

:func:`predictor_error_study` probes the other scheduler claim: sjf's
mean-latency win over fcfs assumes the decode-length predictor is good.
Sweeping the predictor's multiplicative noise on the same contended
mixture shows the advantage is robust to mild noise (about +19% at a
perfect oracle, +17% at sigma 0.5), halves around sigma 1, and collapses
entirely by sigma 2 -- beyond that the "shortest" pick is effectively
random and sjf degenerates to fcfs (while still paying sjf's chat-tail
cost, since long chat requests keep losing ties to short agent steps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.agents import AgentConfig
from repro.analysis.reporting import format_table
from repro.api import (
    ArrivalSpec,
    ExperimentSpec,
    MeasurementSpec,
    ParetoPoint,
    StudyAxis,
    StudyResult,
    StudySpec,
    WeightedWorkload,
    run_study,
)
from repro.serving.tenants import TenantSpec

#: Metric columns the fairness tables report.
FAIRNESS_METRICS: Tuple[Tuple[str, object], ...] = (
    ("completed", "num_completed"),
    ("served_ratio", "served_token_ratio"),
    ("jain", "jain_fairness"),
    ("chat_p95_s", "class_p95:chat"),
    ("chat_slo", "class_attainment:chat"),
)

#: The admission-order policies the study compares.
FAIRNESS_SCHEDULERS: Tuple[str, ...] = (
    "fcfs",
    "priority",
    "sjf-by-predicted-decode",
    "vtc",
)


@dataclass
class FairnessStudyResult:
    """The executed fairness grid plus its Pareto views."""

    result: StudyResult
    chat_slo_s: float

    def rows(self) -> List[Dict[str, object]]:
        return self.result.tabulate(FAIRNESS_METRICS)

    def format(self) -> str:
        return self.result.format(
            f"Scheduler fairness on the chat+agent mixture "
            f"(chat p95 SLO {self.chat_slo_s:g}s)",
            FAIRNESS_METRICS,
        )

    def frontier(self, skew: Optional[str] = None) -> List[ParetoPoint]:
        """Served-token ratio vs chat SLO attainment (optionally per skew)."""
        view = self.result if skew is None else self.result.slice(skew=skew)
        return view.pareto_frontier(
            cost="served_token_ratio",
            quality="class_attainment:chat",
            minimize_quality=False,
        )

    def format_frontier(self, skew: str) -> str:
        rows = [
            {
                "scheduler": entry.point.labels.get("scheduler", "?"),
                "qps": entry.point.labels.get("qps", "?"),
                "served_ratio": entry.cost,
                "chat_slo": entry.quality,
                "jain": entry.point.metric("jain_fairness"),
            }
            for entry in self.frontier(skew)
        ]
        return format_table(
            rows,
            f"Pareto frontier under {skew} skew (fairness vs chat attainment)",
        )

    def served_ratio(self, scheduler: str, skew: str, qps: str) -> float:
        """The served-token max/min ratio of one grid cell."""
        (point,) = self.result.slice(
            scheduler=scheduler, skew=skew, qps=qps
        ).points
        return point.metric("served_token_ratio")

    def mean_served_ratio(self, scheduler: str, skew: str) -> float:
        """Served-token ratio averaged over the load axis (one skew level)."""
        points = self.result.slice(scheduler=scheduler, skew=skew).points
        ratios = [point.metric("served_token_ratio") for point in points]
        return sum(ratios) / len(ratios)

    def frontier_schedulers(self, skew: str) -> List[str]:
        """Scheduler labels on the frontier, fairest first."""
        return [
            entry.point.labels.get("scheduler", "?") for entry in self.frontier(skew)
        ]


#: Metric columns the predictor-error tables report.
PREDICTOR_ERROR_METRICS: Tuple[Tuple[str, object], ...] = (
    ("completed", "num_completed"),
    ("mean_s", "mean_latency"),
    ("p95_s", "p95_latency"),
    ("chat_p95_s", "class_p95:chat"),
)


@dataclass
class PredictorErrorStudyResult:
    """Scheduler x predictor-noise grid: where does sjf's advantage collapse?"""

    result: StudyResult

    def rows(self) -> List[Dict[str, object]]:
        return self.result.tabulate(PREDICTOR_ERROR_METRICS)

    def format(self) -> str:
        return self.result.format(
            "sjf-by-predicted-decode vs fcfs under a noisy decode predictor",
            PREDICTOR_ERROR_METRICS,
        )

    def mean_latency(self, scheduler: str, error: str) -> float:
        """Mean request latency of one grid cell."""
        (point,) = self.result.slice(scheduler=scheduler, error=error).points
        return point.metric("mean_latency")

    def sjf_advantage(self, error: str) -> float:
        """Relative mean-latency win of sjf over fcfs at one noise level.

        Positive = sjf is faster; 0.10 means a 10% lower mean latency.
        fcfs ignores the predictor, so its cell doubles as the noise-free
        baseline at every error level.
        """
        fcfs = self.mean_latency("fcfs", error)
        sjf = self.mean_latency("sjf-by-predicted-decode", error)
        if fcfs <= 0:
            return 0.0
        return (fcfs - sjf) / fcfs

    def collapse_error(self, threshold: float = 0.02) -> Optional[str]:
        """Smallest swept noise level where sjf's advantage falls below ``threshold``.

        ``None`` when sjf keeps its edge across the whole sweep.  The error
        labels are swept in declaration order, which the study builds
        ascending, so the first sub-threshold cell is the collapse point.
        """
        for axis in self.result.study.axes:
            if axis.name != "error":
                continue
            for index in range(len(axis.values)):
                label = axis.label_for(index)
                if self.sjf_advantage(label) < threshold:
                    return label
        return None


def predictor_error_study(
    error_values: Sequence[float] = (0.0, 0.5, 1.0, 2.0, 4.0),
    qps: float = 8.0,
    num_requests: int = 32,
    chat_weight: float = 0.7,
    agent_weight: float = 0.3,
    max_num_seqs: int = 2,
    task_pool_size: int = 10,
    seed: int = 0,
    parallel: int = 1,
) -> PredictorErrorStudyResult:
    """Sweep decode-predictor noise against the sjf and fcfs arms.

    Same contended chat+agent mixture as :func:`fairness_study` (engine
    batch capped so admission order matters), untenanted so the only moving
    part is the scheduler's view of decode lengths.  ``predictor_error`` is
    the standard deviation of the predictor's multiplicative noise
    (0 = the perfect oracle the built-in SJF historically assumed); fcfs
    never consults the predictor, so its arm is flat and serves as the
    baseline at every noise level.
    """
    base = ExperimentSpec(
        workloads=(
            WeightedWorkload(
                agent="chatbot", workload="sharegpt", weight=chat_weight, name="chat"
            ),
            WeightedWorkload(
                agent="react", workload="hotpotqa", weight=agent_weight, name="agent"
            ),
        ),
        agent_config=AgentConfig(max_iterations=4),
        arrival=ArrivalSpec(
            process="poisson",
            qps=qps,
            num_requests=num_requests,
            task_pool_size=task_pool_size,
        ),
        max_decode_chunk=4,
        max_num_seqs=max_num_seqs,
        seed=seed,
    )
    study = StudySpec(
        base=base,
        axes=(
            StudyAxis(
                name="scheduler",
                values=("fcfs", "sjf-by-predicted-decode"),
            ),
            StudyAxis(
                name="error",
                field="predictor_error",
                values=tuple(error_values),
                labels=tuple(f"{error:g}" for error in error_values),
            ),
        ),
        name="predictor-error",
    )
    return PredictorErrorStudyResult(result=run_study(study, parallel=parallel))


def fairness_study(
    qps_values: Sequence[float] = (4.0, 8.0),
    num_requests: int = 32,
    chat_weight: float = 0.7,
    agent_weight: float = 0.3,
    chat_slo_s: float = 20.0,
    num_users: int = 1_000_000,
    skews: Sequence[Tuple[str, float]] = (("mild", 1.1), ("heavy", 1.6)),
    schedulers: Sequence[str] = FAIRNESS_SCHEDULERS,
    max_num_seqs: int = 2,
    task_pool_size: int = 10,
    seed: int = 0,
    parallel: int = 1,
) -> FairnessStudyResult:
    """Sweep scheduler x tenant skew x load on the tenanted mixture.

    Every grid point serves the same chat+agent mixture from the same
    million-user Zipf population at the same seed; only the admission-order
    policy, the skew exponent, and the offered load vary, so fairness
    movement is attributable to the scheduler.  ``max_num_seqs`` caps the
    engine batch so requests genuinely contend at the scheduler's admission
    door -- with an unbounded batch every policy admits immediately and the
    policies are indistinguishable.

    ``parallel`` fans the grid points out over a process pool (see
    :func:`repro.api.run_study`); results are bit-identical to serial runs.
    """
    base = ExperimentSpec(
        workloads=(
            WeightedWorkload(
                agent="chatbot", workload="sharegpt", weight=chat_weight, name="chat"
            ),
            WeightedWorkload(
                agent="react", workload="hotpotqa", weight=agent_weight, name="agent"
            ),
        ),
        agent_config=AgentConfig(max_iterations=4),
        arrival=ArrivalSpec(
            process="poisson",
            qps=qps_values[0],
            num_requests=num_requests,
            task_pool_size=task_pool_size,
            tenants=TenantSpec(num_users=num_users, skew=skews[0][1], num_apps=40),
        ),
        measurement=MeasurementSpec(class_slos=(("chat", chat_slo_s),)),
        max_decode_chunk=4,
        max_num_seqs=max_num_seqs,
        seed=seed,
    )
    study = StudySpec(
        base=base,
        axes=(
            StudyAxis(
                name="scheduler",
                values=tuple(schedulers),
            ),
            StudyAxis(
                name="skew",
                field="arrival.tenants",
                values=tuple(
                    TenantSpec(num_users=num_users, skew=skew, num_apps=40)
                    for _, skew in skews
                ),
                labels=tuple(label for label, _ in skews),
            ),
            StudyAxis(
                name="qps",
                field="arrival.qps",
                values=tuple(qps_values),
            ),
        ),
        name="tenant-fairness",
    )
    return FairnessStudyResult(
        result=run_study(study, parallel=parallel), chat_slo_s=chat_slo_s
    )
