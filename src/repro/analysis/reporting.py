"""Small helpers for formatting experiment results as text tables."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence


def format_value(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000:
            return f"{value:,.0f}"
        if magnitude >= 10:
            return f"{value:.1f}"
        if magnitude >= 0.01:
            return f"{value:.3f}"
        return f"{value:.2e}"
    return str(value)


def format_table(rows: Sequence[Dict[str, Any]], title: str = "") -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())
    rendered = [[format_value(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[index]) for line in rendered))
        for index, column in enumerate(columns)
    ]
    header = " | ".join(column.ljust(width) for column, width in zip(columns, widths))
    separator = "-+-".join("-" * width for width in widths)
    body = [
        " | ".join(cell.ljust(width) for cell, width in zip(line, widths))
        for line in rendered
    ]
    lines = ([title] if title else []) + [header, separator] + body
    return "\n".join(lines)


def print_table(rows: Sequence[Dict[str, Any]], title: str = "") -> None:
    print(format_table(rows, title))
