"""Engine fidelity: chunked prefill x speculative decoding, frontier-queried.

The simulator's default engine executes every prompt as one atomic prefill
step and emits exactly one decode token per step.  Real engines do neither:
vLLM-style chunked prefill slices each prompt into per-iteration token
budgets and co-schedules the chunks with running decodes, and speculative
decoding drafts several tokens per verify step and keeps the accepted
prefix.  Both knobs move the latency/throughput/energy operating point, and
both matter most on exactly the agent-heavy mixtures this repo studies:
long retrieval-stuffed ReAct prompts are the prefills that chat decodes get
stuck behind.

This study sweeps :attr:`~repro.api.ExperimentSpec.prefill_chunk_tokens`
(off plus a small/large per-step budget) against
:attr:`~repro.api.ExperimentSpec.speculative` (off / on) on the contended
Table IV-style chat+agent mixture used by the fairness studies.  Every grid
point serves the same arrivals on the same single replica at the same seed,
so replica-seconds are equal across the grid and any movement in
``class_p95:chat`` or energy is attributable to the engine knob.

The headline read: chunked prefill removes head-of-line blocking --
``prefill_hol_block_s`` (seconds decodes spent parked behind atomic prefill
steps) drops to zero and chat p95 falls at equal replica-seconds -- while
speculation trades draft energy (``draft_energy_j``) for decode latency.
The frontier query ``pareto_frontier(cost="energy_wh_per_query",
quality="class_p95:chat")`` shows which combinations are worth paying for.
``examples/engine_fidelity.py`` prints the grid and the frontier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.agents import AgentConfig
from repro.analysis.reporting import format_table
from repro.api import (
    ArrivalSpec,
    ExperimentSpec,
    ParetoPoint,
    SpeculativeSpec,
    StudyAxis,
    StudyResult,
    StudySpec,
    WeightedWorkload,
    run_study,
)

#: Metric columns the engine-fidelity tables report.
ENGINE_FIDELITY_METRICS: Tuple[Tuple[str, object], ...] = (
    ("chat_p95_s", "class_p95:chat"),
    ("agent_p95_s", "class_p95:agent"),
    ("qps", "throughput_qps"),
    ("hol_s", "prefill_hol_block_s"),
    ("accepted", "mean_accepted_per_step"),
    ("draft_j", "draft_energy_j"),
    ("wh_per_q", "energy_wh_per_query"),
    ("replica_s", "replica_seconds"),
)


@dataclass
class EngineFidelityStudyResult:
    """The executed chunk-budget x speculation grid plus its Pareto views."""

    result: StudyResult

    def rows(self) -> List[Dict[str, object]]:
        return self.result.tabulate(ENGINE_FIDELITY_METRICS)

    def format(self) -> str:
        return self.result.format(
            "Engine fidelity: prefill chunk budget x speculative decoding",
            ENGINE_FIDELITY_METRICS,
        )

    def frontier(self, **labels: str) -> List[ParetoPoint]:
        """Energy per query vs chat tail latency (optionally sliced)."""
        view = self.result if not labels else self.result.slice(**labels)
        return view.pareto_frontier(
            cost="energy_wh_per_query",
            quality="class_p95:chat",
        )

    def format_frontier(self, **labels: str) -> str:
        rows = [
            {
                "chunk": entry.point.labels.get("chunk", "?"),
                "spec": entry.point.labels.get("spec", "?"),
                "wh_per_q": entry.cost,
                "chat_p95_s": entry.quality,
                "hol_s": entry.point.metric("prefill_hol_block_s"),
                "draft_j": entry.point.metric("draft_energy_j"),
            }
            for entry in self.frontier(**labels)
        ]
        return format_table(
            rows, "Pareto frontier (energy per query vs chat tail latency)"
        )

    def chat_p95(self, chunk: str, spec: str) -> float:
        """Chat p95 latency of one grid cell."""
        (point,) = self.result.slice(chunk=chunk, spec=spec).points
        return point.metric("class_p95:chat")

    def hol_block_s(self, chunk: str, spec: str) -> float:
        """Prefill head-of-line blocking seconds of one grid cell."""
        (point,) = self.result.slice(chunk=chunk, spec=spec).points
        return point.metric("prefill_hol_block_s")

    def chunking_advantage(self, chunk: str, spec: str = "off") -> Dict[str, float]:
        """Chunked minus atomic prefill, same speculation arm, same arrivals.

        Both cells pay identical replica-seconds (fixed fleet, same
        measured window), so a negative ``chat_p95_s`` is a pure
        engine-fidelity win: slicing the agent prompts unblocked the chat
        decodes without buying any extra hardware.
        """
        chunked = self.result.slice(chunk=chunk, spec=spec)
        atomic = self.result.slice(chunk="off", spec=spec)
        (chunked_point,) = chunked.points
        (atomic_point,) = atomic.points
        return {
            "chat_p95_s": (
                chunked_point.metric("class_p95:chat")
                - atomic_point.metric("class_p95:chat")
            ),
            "hol_s": (
                chunked_point.metric("prefill_hol_block_s")
                - atomic_point.metric("prefill_hol_block_s")
            ),
            "replica_s": (
                chunked_point.metric("replica_seconds")
                - atomic_point.metric("replica_seconds")
            ),
        }

    def speculation_tradeoff(self, chunk: str = "off") -> Dict[str, float]:
        """Speculation-on minus speculation-off, same chunking arm.

        The expected shape: negative latency deltas (accepted draft tokens
        compress the decode phase) bought with a positive ``draft_j``
        (the draft model's extra compute is not free energy-wise).
        """
        on = self.result.slice(chunk=chunk, spec="on")
        off = self.result.slice(chunk=chunk, spec="off")
        (on_point,) = on.points
        (off_point,) = off.points
        return {
            "chat_p95_s": (
                on_point.metric("class_p95:chat")
                - off_point.metric("class_p95:chat")
            ),
            "p95_s": (
                on_point.metric("p95_latency") - off_point.metric("p95_latency")
            ),
            "draft_j": on_point.metric("draft_energy_j"),
            "accepted": on_point.metric("mean_accepted_per_step"),
        }


def engine_fidelity_study(
    qps: float = 8.0,
    num_requests: int = 32,
    chat_weight: float = 0.7,
    agent_weight: float = 0.3,
    chunk_values: Sequence[Optional[int]] = (None, 256, 1024),
    speculative: Optional[SpeculativeSpec] = None,
    max_num_seqs: int = 4,
    task_pool_size: int = 10,
    seed: int = 0,
    parallel: int = 1,
) -> EngineFidelityStudyResult:
    """Sweep prefill chunk budget x speculative decoding on the agent mixture.

    Same contended chat+agent mixture as :func:`repro.analysis.fairness_study`
    (``max_num_seqs`` caps the batch so long agent prefills and short chat
    decodes genuinely share each engine step), served on one replica at one
    seed, so every grid point pays the same replica-seconds and movement is
    attributable to the engine knob.  The base spec deliberately leaves
    ``max_decode_chunk`` at 1: the legacy approximate decode chunking is
    incompatible with both fidelity features (see
    :class:`~repro.llm.engine.EngineConfig`), and exact decode
    fast-forwarding already covers the uncontended stretches.

    ``chunk_values`` should include ``None`` (atomic prefill) as the
    baseline arm; ``speculative`` defaults to a
    :class:`~repro.api.SpeculativeSpec` with its stock draft ratio and
    acceptance rate.

    ``parallel`` fans the grid points out over a process pool (see
    :func:`repro.api.run_study`); results are bit-identical to serial runs.
    """
    if speculative is None:
        speculative = SpeculativeSpec()
    base = ExperimentSpec(
        workloads=(
            WeightedWorkload(
                agent="chatbot", workload="sharegpt", weight=chat_weight, name="chat"
            ),
            WeightedWorkload(
                agent="react", workload="hotpotqa", weight=agent_weight, name="agent"
            ),
        ),
        agent_config=AgentConfig(max_iterations=4),
        arrival=ArrivalSpec(
            process="poisson",
            qps=qps,
            num_requests=num_requests,
            task_pool_size=task_pool_size,
        ),
        max_num_seqs=max_num_seqs,
        seed=seed,
    )
    study = StudySpec(
        base=base,
        axes=(
            StudyAxis(
                name="chunk",
                field="prefill_chunk_tokens",
                values=tuple(chunk_values),
                labels=tuple(
                    "off" if value is None else str(value) for value in chunk_values
                ),
            ),
            StudyAxis(
                name="spec",
                field="speculative",
                values=(None, speculative),
                labels=("off", "on"),
            ),
        ),
        name="engine-fidelity",
    )
    return EngineFidelityStudyResult(result=run_study(study, parallel=parallel))
