"""Cost-optimal fleet sizing: pool layouts x traffic shapes, Pareto-queried.

The paper's Table IV datacenter scenario implies a capacity-planning
question it never answers: *which fleet should you buy* for a given traffic
mixture?  This study makes it concrete with the declarative study
machinery: a :class:`~repro.api.StudySpec` sweeps pool layouts (the
``pools`` axis: replica splits between a chat pool and an agent pool,
lean to heavy) against traffic programs (the ``arrival.shape`` axis:
steady vs agent-hour burst) over the weighted chat+agent mixture, and the
:class:`~repro.api.StudyResult` answers with the Pareto frontier of
replica-seconds (the cost of the fleet) vs chat p95 latency (the quality
the interactive class experiences).

The headline read: under steady traffic a lean fleet sits on the
frontier -- paying for more replicas buys little chat latency -- while
under the burst the lean fleet's chat p95 collapses and the frontier
shifts toward the heavier splits.  ``examples/fleet_sizing.py`` prints the
grid and both frontiers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.agents import AgentConfig
from repro.analysis.reporting import format_table
from repro.api import (
    ArrivalSpec,
    ExperimentSpec,
    MeasurementSpec,
    ParetoPoint,
    PoolSpec,
    StudyAxis,
    StudyResult,
    StudySpec,
    WeightedWorkload,
    run_study,
)
from repro.serving.shapes import ConstantShape, RateShape, SquareWaveShape

#: Metric columns the fleet-sizing tables report.
FLEET_METRICS: Tuple[Tuple[str, object], ...] = (
    ("completed", "num_completed"),
    ("chat_p95_s", "class_p95:chat"),
    ("agent_p95_s", "class_p95:agent"),
    ("replica_seconds", "replica_seconds"),
    ("energy_wh", "energy_wh"),
    ("throughput_qps", "throughput_qps"),
)


def _pool_layout(chat_replicas: int, agent_replicas: int) -> Tuple[PoolSpec, ...]:
    """One fleet candidate: a chat pool + an SJF/prefix-affinity agent pool."""
    return (
        PoolSpec(
            name="chat",
            model="8b",
            replicas=chat_replicas,
            router="least-loaded",
            traffic_classes=("chat",),
        ),
        PoolSpec(
            name="agent",
            model="8b",
            replicas=agent_replicas,
            scheduler="sjf-by-predicted-decode",
            router="prefix-affinity",
            traffic_classes=("agent",),
        ),
    )


@dataclass
class FleetSizingResult:
    """The executed fleet-sizing grid plus its Pareto views."""

    result: StudyResult
    chat_slo_s: float

    def rows(self) -> List[Dict[str, object]]:
        return self.result.tabulate(FLEET_METRICS)

    def format(self) -> str:
        return self.result.format(
            f"Fleet sizing on the chat+agent mixture (chat p95 SLO {self.chat_slo_s:g}s)",
            FLEET_METRICS,
        )

    def frontier(self, traffic: Optional[str] = None) -> List[ParetoPoint]:
        """Replica-seconds vs chat-p95 Pareto frontier (optionally per shape)."""
        view = self.result if traffic is None else self.result.slice(traffic=traffic)
        return view.pareto_frontier(cost="replica_seconds", quality="class_p95:chat")

    def format_frontier(self, traffic: str) -> str:
        rows = [
            {
                "fleet": entry.point.labels.get("fleet", "?"),
                "replica_seconds": entry.cost,
                "chat_p95_s": entry.quality,
                "agent_p95_s": entry.point.metric("class_p95:agent"),
            }
            for entry in self.frontier(traffic)
        ]
        return format_table(
            rows, f"Pareto frontier under {traffic} traffic (cost vs chat p95)"
        )

    def frontier_fleets(self, traffic: str) -> List[str]:
        """The fleet labels on the frontier, cheapest first."""
        return [entry.point.labels.get("fleet", "?") for entry in self.frontier(traffic)]


def fleet_sizing_study(
    qps: float = 6.0,
    num_requests: int = 48,
    chat_weight: float = 0.6,
    agent_weight: float = 0.4,
    chat_slo_s: float = 16.0,
    fleets: Sequence[Tuple[int, int]] = ((1, 2), (1, 3), (2, 2), (3, 3)),
    burst_shape: Optional[RateShape] = None,
    task_pool_size: int = 10,
    seed: int = 0,
) -> FleetSizingResult:
    """Sweep fleet layouts x traffic shapes on the Table IV mixture.

    ``fleets`` lists (chat_replicas, agent_replicas) candidates, lean to
    heavy (the default set includes a misbalanced ``chat1+agent3`` fleet
    the burst is expected to push off the frontier); the traffic axis
    compares steady arrivals against a square-wave burst at 6x the base
    level for a third of each period.  Everything else -- mixture,
    scheduler policies, seed -- is held fixed, so the frontier movement is
    attributable to the traffic program alone.
    """
    if burst_shape is None:
        burst_shape = SquareWaveShape(
            base_level=0.5, burst_level=3.0, period_s=24.0, burst_start_s=8.0,
            burst_s=8.0,
        )
    base = ExperimentSpec(
        pools=_pool_layout(*fleets[0]),
        workloads=(
            WeightedWorkload(
                agent="chatbot", workload="sharegpt", weight=chat_weight, name="chat"
            ),
            WeightedWorkload(
                agent="react", workload="hotpotqa", weight=agent_weight, name="agent"
            ),
        ),
        agent_config=AgentConfig(max_iterations=5),
        arrival=ArrivalSpec(
            process="poisson",
            qps=qps,
            num_requests=num_requests,
            task_pool_size=task_pool_size,
        ),
        measurement=MeasurementSpec(class_slos=(("chat", chat_slo_s),)),
        max_decode_chunk=8,
        seed=seed,
    )
    study = StudySpec(
        base=base,
        axes=(
            StudyAxis(
                name="traffic",
                field="arrival.shape",
                values=(ConstantShape(), burst_shape),
                labels=("steady", "burst"),
            ),
            StudyAxis(
                name="fleet",
                field="pools",
                values=tuple(_pool_layout(chat, agent) for chat, agent in fleets),
                labels=tuple(f"chat{chat}+agent{agent}" for chat, agent in fleets),
            ),
        ),
        name="fleet-sizing",
    )
    return FleetSizingResult(result=run_study(study), chat_slo_s=chat_slo_s)
