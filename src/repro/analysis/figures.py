"""Regeneration of every figure in the paper's evaluation (Figs. 4-9, 11-17).

Each ``figureN`` function configures the corresponding experiment, runs it on
the serving simulator, and returns a result object whose ``rows()`` method
yields the same rows/series the paper plots.  Sample counts default to small
values so the full suite runs in minutes; pass larger ``num_tasks`` /
``num_requests`` for tighter estimates (the paper uses 50 tasks per design
point).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.agents import AgentConfig, PAPER_AGENTS
from repro.analysis.reporting import format_table
from repro.api import ArrivalSpec, ExperimentSpec, run_experiment, run_sweep
from repro.core import (
    CharacterizationResult,
    DesignPoint,
    SingleRequestRunner,
    best_accuracy_point,
    best_efficiency_point,
    mean,
    percentile,
)
from repro.serving import ServingConfig, run_at_qps
from repro.workloads import AGENTIC_WORKLOADS, create_workload

#: default design-space defaults per benchmark (iteration budget the paper uses).
DEFAULT_MAX_ITERATIONS = {
    "hotpotqa": 7,
    "webshop": 12,
    "math": 8,
    "humaneval": 5,
}


def default_config(benchmark: str, **overrides) -> AgentConfig:
    """The paper's default agent configuration for a benchmark."""
    base = AgentConfig(
        max_iterations=DEFAULT_MAX_ITERATIONS.get(benchmark, 8),
        num_few_shot=2,
        max_trials=3,
        num_children=5,
        max_expansions=12,
    )
    return base.with_overrides(**overrides) if overrides else base


# ---------------------------------------------------------------------------
# Shared characterization matrix (Figs. 4, 5, 6, 8, 9 reuse these runs).
# ---------------------------------------------------------------------------


@dataclass
class CharacterizationMatrix:
    """Single-request characterization of every (agent, benchmark) pair."""

    results: Dict[Tuple[str, str], CharacterizationResult] = field(default_factory=dict)

    def get(self, agent: str, benchmark: str) -> Optional[CharacterizationResult]:
        return self.results.get((agent, benchmark))

    def pairs(self) -> List[Tuple[str, str]]:
        return sorted(self.results, key=lambda pair: (pair[1], pair[0]))


def characterization_matrix(
    benchmarks: Sequence[str] = AGENTIC_WORKLOADS,
    agents: Sequence[str] = PAPER_AGENTS,
    num_tasks: int = 8,
    model: str = "8b",
    seed: int = 0,
    enable_prefix_caching: bool = True,
) -> CharacterizationMatrix:
    """Run every supported (agent, benchmark) pair one request at a time."""
    matrix = CharacterizationMatrix()
    runner = SingleRequestRunner(
        model=model, enable_prefix_caching=enable_prefix_caching, seed=seed
    )
    for benchmark in benchmarks:
        workload = create_workload(benchmark, seed=seed)
        for agent in agents:
            if not workload.supports_agent(agent):
                continue
            matrix.results[(agent, benchmark)] = runner.run(
                agent, benchmark, config=default_config(benchmark), num_tasks=num_tasks
            )
    return matrix


# ---------------------------------------------------------------------------
# Figure 4 -- LLM and tool invocations per request.
# ---------------------------------------------------------------------------


@dataclass
class Figure4Result:
    matrix: CharacterizationMatrix

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for agent, benchmark in self.matrix.pairs():
            result = self.matrix.get(agent, benchmark)
            rows.append(
                {
                    "benchmark": benchmark,
                    "agent": agent,
                    "llm_invocations": result.mean_llm_calls,
                    "tool_invocations": result.mean_tool_calls,
                }
            )
        return rows

    def llm_call_ratio_vs_cot(self, benchmark: str) -> Dict[str, float]:
        """How many more LLM calls each agent makes than CoT on a benchmark."""
        cot = self.matrix.get("cot", benchmark)
        if cot is None or cot.mean_llm_calls == 0:
            return {}
        ratios = {}
        for agent, bench in self.matrix.pairs():
            if bench != benchmark or agent == "cot":
                continue
            ratios[agent] = self.matrix.get(agent, bench).mean_llm_calls / cot.mean_llm_calls
        return ratios

    def format(self) -> str:
        return format_table(self.rows(), "Figure 4: LLM and tool invocations per request")


def figure4(matrix: Optional[CharacterizationMatrix] = None, **kwargs) -> Figure4Result:
    return Figure4Result(matrix=matrix or characterization_matrix(**kwargs))


# ---------------------------------------------------------------------------
# Figure 5 -- latency breakdown and end-to-end latency.
# ---------------------------------------------------------------------------


@dataclass
class Figure5Result:
    matrix: CharacterizationMatrix

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for agent, benchmark in self.matrix.pairs():
            result = self.matrix.get(agent, benchmark)
            breakdown = result.latency_breakdown()
            fractions = breakdown.fractions
            rows.append(
                {
                    "benchmark": benchmark,
                    "agent": agent,
                    "llm_frac": fractions["llm"],
                    "tool_frac": fractions["tool"],
                    "overlap_frac": fractions["overlap"],
                    "other_frac": fractions["other"],
                    "e2e_latency_s": result.mean_latency,
                }
            )
        return rows

    def average_fractions(self) -> Dict[str, float]:
        rows = self.rows()
        return {
            "llm": mean([row["llm_frac"] for row in rows]),
            "tool": mean([row["tool_frac"] for row in rows]),
            "overlap": mean([row["overlap_frac"] for row in rows]),
            "other": mean([row["other_frac"] for row in rows]),
        }

    def format(self) -> str:
        return format_table(self.rows(), "Figure 5: latency breakdown per agent")


def figure5(matrix: Optional[CharacterizationMatrix] = None, **kwargs) -> Figure5Result:
    return Figure5Result(matrix=matrix or characterization_matrix(**kwargs))


# ---------------------------------------------------------------------------
# Figure 6 -- GPU runtime breakdown and utilization.
# ---------------------------------------------------------------------------


@dataclass
class Figure6Result:
    matrix: CharacterizationMatrix

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for agent, benchmark in self.matrix.pairs():
            result = self.matrix.get(agent, benchmark)
            gpu = result.gpu_breakdown()
            fractions = gpu.fractions
            rows.append(
                {
                    "benchmark": benchmark,
                    "agent": agent,
                    "prefill_frac": fractions["prefill"],
                    "decode_frac": fractions["decode"],
                    "idle_frac": fractions["idle"],
                    "gpu_utilization": gpu.utilization,
                }
            )
        return rows

    def format(self) -> str:
        return format_table(self.rows(), "Figure 6: GPU runtime breakdown and utilization")


def figure6(matrix: Optional[CharacterizationMatrix] = None, **kwargs) -> Figure6Result:
    return Figure6Result(matrix=matrix or characterization_matrix(**kwargs))


# ---------------------------------------------------------------------------
# Figure 7 -- end-to-end latency distribution (chatbot vs ReAct agents).
# ---------------------------------------------------------------------------


@dataclass
class Figure7Result:
    distributions: Dict[str, List[float]]

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for label, latencies in self.distributions.items():
            rows.append(
                {
                    "workload": label,
                    "mean_s": mean(latencies),
                    "p50_s": percentile(latencies, 50),
                    "p95_s": percentile(latencies, 95),
                    "max_s": max(latencies) if latencies else 0.0,
                }
            )
        return rows

    def histogram(self, label: str, bin_width: float = 2.0) -> Dict[float, int]:
        counts: Dict[float, int] = {}
        for value in self.distributions.get(label, []):
            bucket = round(value // bin_width * bin_width, 6)
            counts[bucket] = counts.get(bucket, 0) + 1
        return dict(sorted(counts.items()))

    def format(self) -> str:
        return format_table(self.rows(), "Figure 7: end-to-end latency distribution")


def figure7(
    num_tasks: int = 30,
    model: str = "8b",
    seed: int = 0,
) -> Figure7Result:
    runner = SingleRequestRunner(model=model, enable_prefix_caching=True, seed=seed)
    chatbot = runner.run("chatbot", "sharegpt", num_tasks=num_tasks)
    hotpot = runner.run(
        "react", "hotpotqa", config=default_config("hotpotqa"), num_tasks=num_tasks
    )
    webshop = runner.run(
        "react", "webshop", config=default_config("webshop"), num_tasks=num_tasks
    )
    return Figure7Result(
        distributions={
            "sharegpt_chatbot": chatbot.latencies,
            "hotpotqa_react": hotpot.latencies,
            "webshop_react": webshop.latencies,
        }
    )


# ---------------------------------------------------------------------------
# Figure 8 -- token breakdown of LLM inference.
# ---------------------------------------------------------------------------


@dataclass
class Figure8Result:
    matrix: CharacterizationMatrix

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for agent, benchmark in self.matrix.pairs():
            result = self.matrix.get(agent, benchmark)
            tokens = result.token_breakdown()
            row = {"benchmark": benchmark, "agent": agent}
            row.update(tokens.as_dict())
            row["input_total"] = tokens.input_total
            rows.append(row)
        return rows

    def format(self) -> str:
        return format_table(self.rows(), "Figure 8: input/output token breakdown")


def figure8(matrix: Optional[CharacterizationMatrix] = None, **kwargs) -> Figure8Result:
    return Figure8Result(matrix=matrix or characterization_matrix(**kwargs))


# ---------------------------------------------------------------------------
# Figure 9 -- effect of prefix caching on LLM inference latency.
# ---------------------------------------------------------------------------


@dataclass
class Figure9Result:
    with_caching: CharacterizationMatrix
    without_caching: CharacterizationMatrix

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for agent, benchmark in self.with_caching.pairs():
            cached = self.with_caching.get(agent, benchmark)
            uncached = self.without_caching.get(agent, benchmark)
            if uncached is None:
                continue
            prefill_reduction = 0.0
            if uncached.mean_prefill_time > 0:
                prefill_reduction = 1.0 - cached.mean_prefill_time / uncached.mean_prefill_time
            rows.append(
                {
                    "benchmark": benchmark,
                    "agent": agent,
                    "prefill_s_no_cache": uncached.mean_prefill_time,
                    "prefill_s_cache": cached.mean_prefill_time,
                    "decode_s_no_cache": uncached.mean_decode_time,
                    "decode_s_cache": cached.mean_decode_time,
                    "inference_s_no_cache": uncached.mean_llm_inference_latency,
                    "inference_s_cache": cached.mean_llm_inference_latency,
                    "prefill_reduction": prefill_reduction,
                }
            )
        return rows

    def mean_prefill_reduction(self, exclude_cot: bool = True) -> float:
        values = [
            row["prefill_reduction"]
            for row in self.rows()
            if not (exclude_cot and row["agent"] == "cot")
        ]
        return mean(values)

    def format(self) -> str:
        return format_table(self.rows(), "Figure 9: prefix caching effect on inference latency")


def figure9(
    benchmarks: Sequence[str] = AGENTIC_WORKLOADS,
    agents: Sequence[str] = PAPER_AGENTS,
    num_tasks: int = 6,
    model: str = "8b",
    seed: int = 0,
) -> Figure9Result:
    with_caching = characterization_matrix(
        benchmarks, agents, num_tasks=num_tasks, model=model, seed=seed, enable_prefix_caching=True
    )
    without_caching = characterization_matrix(
        benchmarks, agents, num_tasks=num_tasks, model=model, seed=seed, enable_prefix_caching=False
    )
    return Figure9Result(with_caching=with_caching, without_caching=without_caching)


# ---------------------------------------------------------------------------
# Figure 11 -- tail latency vs offered QPS, with and without prefix caching.
# ---------------------------------------------------------------------------


@dataclass
class Figure11Result:
    curves: Dict[Tuple[str, bool], "object"]  # (workload label, caching) -> QpsSweepResult

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for (label, caching), sweep in sorted(self.curves.items()):
            for result in sweep.results:
                rows.append(
                    {
                        "workload": label,
                        "prefix_caching": caching,
                        "offered_qps": result.offered_qps,
                        "p95_latency_s": result.p95_latency,
                        "throughput_qps": result.throughput_qps,
                    }
                )
        return rows

    def peak_throughputs(self) -> Dict[Tuple[str, bool], float]:
        return {key: sweep.peak_throughput() for key, sweep in self.curves.items()}

    def caching_speedup(self, label: str) -> float:
        peaks = self.peak_throughputs()
        without = peaks.get((label, False), 0.0)
        with_cache = peaks.get((label, True), 0.0)
        if without <= 0:
            return 0.0
        return with_cache / without

    def format(self) -> str:
        return format_table(self.rows(), "Figure 11: p95 latency vs QPS")


def figure11(
    qps_grid: Optional[Dict[str, Sequence[float]]] = None,
    num_requests: int = 40,
    model: str = "8b",
    seed: int = 0,
    include_no_caching: bool = True,
    replicas: int = 1,
    router: str = "round-robin",
) -> Figure11Result:
    workload_specs = {
        "sharegpt": ("chatbot", "sharegpt"),
        "hotpotqa": ("react", "hotpotqa"),
        "webshop": ("react", "webshop"),
    }
    qps_grid = qps_grid or {
        "sharegpt": (1.0, 2.0, 4.0, 6.0, 8.0),
        "hotpotqa": (0.25, 0.5, 1.0, 2.0, 3.0),
        "webshop": (0.25, 0.5, 1.0, 1.5, 2.0),
    }
    caching_options = (True, False) if include_no_caching else (True,)
    curves = {}
    for label, (agent, benchmark) in workload_specs.items():
        for caching in caching_options:
            spec = ExperimentSpec(
                agent=agent,
                workload=benchmark,
                model=model,
                replicas=replicas,
                router=router,
                enable_prefix_caching=caching,
                agent_config=default_config(benchmark) if benchmark != "sharegpt" else AgentConfig(),
                arrival=ArrivalSpec(process="single", num_requests=num_requests),
                seed=seed,
                max_decode_chunk=4,
            )
            curves[(label, caching)] = run_sweep(spec, qps_grid[label])
    return Figure11Result(curves=curves)


# ---------------------------------------------------------------------------
# Figure 12 -- KV-cache memory with and without prefix caching.
# ---------------------------------------------------------------------------


@dataclass
class Figure12Result:
    measurements: Dict[Tuple[str, bool], Dict[str, float]]

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for (benchmark, caching), stats in sorted(self.measurements.items()):
            rows.append(
                {
                    "benchmark": benchmark,
                    "prefix_caching": caching,
                    "avg_kv_gb": stats["avg_bytes"] / 1e9,
                    "max_kv_gb": stats["max_bytes"] / 1e9,
                }
            )
        return rows

    def reduction(self, benchmark: str, which: str = "avg_bytes") -> float:
        without = self.measurements.get((benchmark, False), {}).get(which, 0.0)
        with_cache = self.measurements.get((benchmark, True), {}).get(which, 0.0)
        if without <= 0:
            return 0.0
        return 1.0 - with_cache / without

    def format(self) -> str:
        return format_table(self.rows(), "Figure 12: KV cache memory usage")


def figure12(
    num_requests: int = 30,
    model: str = "8b",
    seed: int = 0,
) -> Figure12Result:
    scenarios = {"hotpotqa": 0.2, "webshop": 0.1}
    measurements = {}
    for benchmark, qps in scenarios.items():
        for caching in (True, False):
            config = ServingConfig(
                agent="react",
                benchmark=benchmark,
                model=model,
                enable_prefix_caching=caching,
                agent_config=default_config(benchmark),
                seed=seed,
            )
            result = run_at_qps(config, qps, num_requests=num_requests)
            measurements[(benchmark, caching)] = {
                "avg_bytes": result.kv_average_bytes,
                "max_bytes": result.kv_max_bytes,
            }
    return Figure12Result(measurements=measurements)


# ---------------------------------------------------------------------------
# Figure 13 -- accuracy vs latency Pareto across the agent design space.
# ---------------------------------------------------------------------------


@dataclass
class Figure13Result:
    points: Dict[str, List[DesignPoint]]  # benchmark -> design points

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for benchmark, points in sorted(self.points.items()):
            best = max((p.cost_efficiency for p in points), default=0.0)
            for point in points:
                rows.append(
                    {
                        "benchmark": benchmark,
                        "agent": point.agent,
                        "label": point.label,
                        "accuracy": point.accuracy,
                        "latency_s": point.latency_s,
                        "efficiency_norm": (point.cost_efficiency / best) if best > 0 else 0.0,
                    }
                )
        return rows

    def format(self) -> str:
        return format_table(self.rows(), "Figure 13: accuracy/latency design space")


def figure13(
    benchmarks: Sequence[str] = AGENTIC_WORKLOADS,
    num_tasks: int = 8,
    model: str = "8b",
    seed: int = 0,
) -> Figure13Result:
    """Evaluate a small design-space sweep per agent and benchmark."""
    variant_grid = {
        "react": [{"max_iterations": 4}, {}, {"max_iterations": 15}],
        "reflexion": [{"max_trials": 2}, {}, {"max_trials": 6}],
        "lats": [{"num_children": 3, "max_expansions": 5}, {}, {"num_children": 8}],
        "llmcompiler": [{"replan_rounds": 2}, {}],
    }
    runner = SingleRequestRunner(model=model, enable_prefix_caching=True, seed=seed)
    points: Dict[str, List[DesignPoint]] = {}
    for benchmark in benchmarks:
        workload = create_workload(benchmark, seed=seed)
        bench_points: List[DesignPoint] = []
        for agent, variants in variant_grid.items():
            if not workload.supports_agent(agent):
                continue
            for index, overrides in enumerate(variants):
                config = default_config(benchmark, **overrides)
                result = runner.run(agent, benchmark, config=config, num_tasks=num_tasks)
                bench_points.append(
                    DesignPoint(
                        label=f"{agent}-v{index}",
                        agent=agent,
                        benchmark=benchmark,
                        accuracy=result.mean_score if benchmark == "webshop" else result.accuracy,
                        latency_s=result.mean_latency,
                        config=dict(overrides),
                        total_tokens=result.mean_total_tokens,
                        energy_wh=result.mean_energy_wh,
                        p95_latency_s=result.latency_stats.p95,
                    )
                )
        points[benchmark] = bench_points
    return Figure13Result(points=points)


# ---------------------------------------------------------------------------
# Figure 14 -- iteration-budget sweep (ReAct).
# ---------------------------------------------------------------------------


@dataclass
class SweepResult:
    """Shared result shape for the Fig. 14/15/16 parameter sweeps."""

    parameter: str
    benchmark: str
    agent: str
    points: List[DesignPoint]

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for point in self.points:
            rows.append(
                {
                    "benchmark": self.benchmark,
                    "agent": self.agent,
                    self.parameter: point.config.get(self.parameter),
                    "accuracy": point.accuracy,
                    "avg_latency_s": point.latency_s,
                    "p95_latency_s": point.p95_latency_s,
                    "efficiency": point.cost_efficiency,
                }
            )
        return rows

    def best_accuracy(self) -> Optional[DesignPoint]:
        return best_accuracy_point(self.points)

    def best_efficiency(self) -> Optional[DesignPoint]:
        return best_efficiency_point(self.points)

    def format(self) -> str:
        return format_table(self.rows(), f"{self.agent} {self.parameter} sweep on {self.benchmark}")


def _run_sweep(
    agent: str,
    benchmark: str,
    parameter: str,
    values: Sequence[int],
    num_tasks: int,
    model: str,
    seed: int,
    base_overrides: Optional[Dict[str, int]] = None,
) -> SweepResult:
    points: List[DesignPoint] = []
    for value in values:
        overrides = dict(base_overrides or {})
        overrides[parameter] = value
        config = default_config(benchmark, **overrides)
        spec = ExperimentSpec(
            agent=agent,
            workload=benchmark,
            model=model,
            enable_prefix_caching=True,
            agent_config=config,
            arrival=ArrivalSpec(process="single", num_requests=num_tasks),
            seed=seed,
        )
        result = run_experiment(spec).characterization
        points.append(
            DesignPoint(
                label=f"{agent}-{parameter}={value}",
                agent=agent,
                benchmark=benchmark,
                accuracy=result.mean_score if benchmark == "webshop" else result.accuracy,
                latency_s=result.mean_latency,
                config={parameter: value},
                total_tokens=result.mean_total_tokens,
                energy_wh=result.mean_energy_wh,
                p95_latency_s=result.latency_stats.p95,
            )
        )
    return SweepResult(parameter=parameter, benchmark=benchmark, agent=agent, points=points)


@dataclass
class Figure14Result:
    sweeps: Dict[str, SweepResult]

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for sweep in self.sweeps.values():
            rows.extend(sweep.rows())
        return rows

    def format(self) -> str:
        return format_table(self.rows(), "Figure 14: iteration budget sweep (ReAct)")


def figure14(
    budgets: Optional[Dict[str, Sequence[int]]] = None,
    num_tasks: int = 10,
    model: str = "8b",
    seed: int = 0,
) -> Figure14Result:
    budgets = budgets or {
        "hotpotqa": (3, 4, 5, 10, 15, 20, 25),
        "webshop": (5, 10, 15, 20, 25, 30),
    }
    sweeps = {
        benchmark: _run_sweep(
            "react", benchmark, "max_iterations", values, num_tasks, model, seed
        )
        for benchmark, values in budgets.items()
    }
    return Figure14Result(sweeps=sweeps)


# ---------------------------------------------------------------------------
# Figure 15 -- few-shot prompting sweep (ReAct).
# ---------------------------------------------------------------------------


@dataclass
class Figure15Result:
    sweeps: Dict[str, SweepResult]

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for sweep in self.sweeps.values():
            rows.extend(sweep.rows())
        return rows

    def format(self) -> str:
        return format_table(self.rows(), "Figure 15: few-shot example sweep (ReAct)")


def figure15(
    counts: Sequence[int] = (0, 1, 2, 3, 4, 5),
    benchmarks: Sequence[str] = ("hotpotqa", "webshop"),
    num_tasks: int = 10,
    model: str = "8b",
    seed: int = 0,
) -> Figure15Result:
    sweeps = {
        benchmark: _run_sweep(
            "react", benchmark, "num_few_shot", counts, num_tasks, model, seed
        )
        for benchmark in benchmarks
    }
    return Figure15Result(sweeps=sweeps)


# ---------------------------------------------------------------------------
# Figure 16 -- sequential vs parallel test-time scaling.
# ---------------------------------------------------------------------------


@dataclass
class Figure16Result:
    reflexion_sequential: SweepResult
    lats_sequential: SweepResult
    lats_parallel: SweepResult

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for label, sweep in (
            ("reflexion_sequential", self.reflexion_sequential),
            ("lats_sequential", self.lats_sequential),
            ("lats_parallel", self.lats_parallel),
        ):
            for row in sweep.rows():
                row = dict(row)
                row["scaling"] = label
                rows.append(row)
        return rows

    def format(self) -> str:
        return format_table(self.rows(), "Figure 16: sequential vs parallel scaling (HotpotQA)")


def figure16(
    reflexion_trials: Sequence[int] = (2, 4, 8, 16),
    lats_expansions: Sequence[int] = (4, 8, 16, 32),
    lats_children: Sequence[int] = (1, 2, 4, 8, 16),
    num_tasks: int = 8,
    model: str = "8b",
    seed: int = 0,
) -> Figure16Result:
    benchmark = "hotpotqa"
    reflexion_sequential = _run_sweep(
        "reflexion", benchmark, "max_trials", reflexion_trials, num_tasks, model, seed
    )
    lats_sequential = _run_sweep(
        "lats", benchmark, "max_expansions", lats_expansions, num_tasks, model, seed
    )
    lats_parallel = _run_sweep(
        "lats",
        benchmark,
        "num_children",
        lats_children,
        num_tasks,
        model,
        seed,
        base_overrides={"max_expansions": 16},
    )
    return Figure16Result(
        reflexion_sequential=reflexion_sequential,
        lats_sequential=lats_sequential,
        lats_parallel=lats_parallel,
    )


# ---------------------------------------------------------------------------
# Figure 17 -- model-size effects on test-time scaling.
# ---------------------------------------------------------------------------


@dataclass
class Figure17Result:
    sweeps: Dict[Tuple[str, str], SweepResult]  # (agent, model) -> sweep

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for (agent, model), sweep in sorted(self.sweeps.items()):
            for point in sweep.points:
                rows.append(
                    {
                        "agent": agent,
                        "model": model,
                        "scaling_level": point.config.get(sweep.parameter),
                        "accuracy": point.accuracy,
                        "latency_s": point.latency_s,
                        "total_tokens": point.total_tokens,
                        "energy_wh": point.energy_wh,
                    }
                )
        return rows

    def format(self) -> str:
        return format_table(self.rows(), "Figure 17: model size effects (HotpotQA)")


def figure17(
    reflexion_trials: Sequence[int] = (1, 2, 4, 8),
    lats_expansions: Sequence[int] = (2, 4, 8, 16),
    models: Sequence[str] = ("8b", "70b"),
    num_tasks: int = 6,
    seed: int = 0,
) -> Figure17Result:
    benchmark = "hotpotqa"
    sweeps: Dict[Tuple[str, str], SweepResult] = {}
    for model in models:
        sweeps[("reflexion", model)] = _run_sweep(
            "reflexion", benchmark, "max_trials", reflexion_trials, num_tasks, model, seed
        )
        sweeps[("lats", model)] = _run_sweep(
            "lats", benchmark, "max_expansions", lats_expansions, num_tasks, model, seed
        )
    return Figure17Result(sweeps=sweeps)


# ---------------------------------------------------------------------------
# Mixed-traffic fleet study (the paper's Table IV datacenter scenario,
# extended with heterogeneous pools and autoscaling).
# ---------------------------------------------------------------------------


@dataclass
class MixedFleetResult:
    """Per-pool and per-class view of one mixed-traffic fleet experiment."""

    outcome: object  # ResultSet

    def pool_rows(self) -> List[Dict[str, object]]:
        return self.outcome.per_pool_summary()

    def class_rows(self) -> List[Dict[str, object]]:
        return self.outcome.per_class_summary()

    def rows(self) -> List[Dict[str, object]]:
        return self.pool_rows() + self.class_rows()

    @property
    def replica_seconds(self) -> float:
        return self.outcome.replica_seconds

    @property
    def scaling_events(self) -> List[object]:
        return self.outcome.serving.scaling_events

    def format(self) -> str:
        parts = [
            format_table(self.pool_rows(), "Mixed fleet: per-pool metrics"),
            format_table(self.class_rows(), "Mixed fleet: per-traffic-class metrics"),
            (
                f"replica-seconds: {self.replica_seconds:.1f}  "
                f"scaling events: {len(self.scaling_events)}"
            ),
        ]
        return "\n\n".join(parts)


def mixed_fleet(
    qps: float = 2.0,
    num_requests: int = 24,
    chat_weight: float = 0.6,
    agent_weight: float = 0.4,
    chat_replicas: int = 1,
    agent_replicas: int = 2,
    autoscale: bool = True,
    max_chat_replicas: int = 3,
    predictor_error: float = 0.0,
    seed: int = 0,
) -> MixedFleetResult:
    """Serve a chatbot + agent traffic mixture on a two-pool fleet.

    The chatbot pool handles short interactive requests (optionally
    autoscaled between 1 and ``max_chat_replicas`` replicas); the agent pool
    runs SJF scheduling with prefix-affinity routing for the long multi-call
    ReAct traffic.  Returns per-pool throughput/p95/energy/replica-seconds
    and per-class latency/accuracy -- the datacenter-scale view of Table IV.
    """
    from repro.api.spec import AutoscalerSpec, PoolSpec, WeightedWorkload

    autoscaler = None
    if autoscale:
        autoscaler = AutoscalerSpec(
            pool="chat",
            min_replicas=1,
            max_replicas=max_chat_replicas,
            check_interval_s=1.0,
            warmup_s=2.0,
            scale_up_pending_per_replica=2.0,
            scale_down_pending_per_replica=0.5,
        )
    spec = ExperimentSpec(
        pools=(
            PoolSpec(
                name="chat",
                model="8b",
                replicas=chat_replicas,
                router="least-loaded",
                traffic_classes=("chat",),
            ),
            PoolSpec(
                name="agent",
                model="8b",
                replicas=agent_replicas,
                scheduler="sjf-by-predicted-decode",
                router="prefix-affinity",
                traffic_classes=("agent",),
            ),
        ),
        workloads=(
            WeightedWorkload(
                agent="chatbot", workload="sharegpt", weight=chat_weight, name="chat"
            ),
            WeightedWorkload(
                agent="react", workload="hotpotqa", weight=agent_weight, name="agent"
            ),
        ),
        autoscaler=autoscaler,
        arrival=ArrivalSpec(
            process="poisson", qps=qps, num_requests=num_requests, task_pool_size=12
        ),
        agent_config=AgentConfig(max_iterations=5),
        max_decode_chunk=8,
        predictor_error=predictor_error,
        seed=seed,
    )
    return MixedFleetResult(outcome=run_experiment(spec))
