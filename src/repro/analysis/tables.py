"""Regeneration of the paper's tables (I-IV)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.agents import AgentConfig, PAPER_AGENTS, get_agent_class
from repro.analysis.reporting import format_table
from repro.core import (
    CHATGPT_QUERIES_PER_DAY,
    GOOGLE_QUERIES_PER_DAY,
    PowerProjection,
    SingleRequestRunner,
    project_power,
)
from repro.workloads import AGENTIC_WORKLOADS, create_workload


# ---------------------------------------------------------------------------
# Table I -- agent capability comparison (static).
# ---------------------------------------------------------------------------


@dataclass
class Table1Result:
    rows_data: List[Dict[str, str]]

    def rows(self) -> List[Dict[str, str]]:
        return self.rows_data

    def format(self) -> str:
        return format_table(self.rows(), "Table I: comparison of AI agents")


def table1(agents: Sequence[str] = PAPER_AGENTS) -> Table1Result:
    rows = []
    for name in agents:
        capabilities = get_agent_class(name).capabilities
        row = {"Agent": name}
        row.update(capabilities.as_row())
        rows.append(row)
    return Table1Result(rows_data=rows)


# ---------------------------------------------------------------------------
# Table II -- benchmark descriptions (static).
# ---------------------------------------------------------------------------


@dataclass
class Table2Result:
    rows_data: List[Dict[str, str]]

    def rows(self) -> List[Dict[str, str]]:
        return self.rows_data

    def format(self) -> str:
        return format_table(self.rows(), "Table II: description of benchmarks")


def table2(benchmarks: Sequence[str] = AGENTIC_WORKLOADS) -> Table2Result:
    rows = []
    for name in benchmarks:
        info = create_workload(name).info()
        rows.append(
            {
                "Benchmark": info.name,
                "Task": info.task_description,
                "Tool": info.tools,
                "Agent": ", ".join(info.agents),
            }
        )
    return Table2Result(rows_data=rows)


# ---------------------------------------------------------------------------
# Table III -- accuracy, latency, and GPU energy per agent request (HotpotQA).
# ---------------------------------------------------------------------------


@dataclass
class Table3Row:
    model: str
    workload: str
    accuracy: Optional[float]
    latency_s: float
    energy_wh: float
    latency_vs_sharegpt: float
    energy_vs_sharegpt: float


@dataclass
class Table3Result:
    rows_data: List[Table3Row] = field(default_factory=list)

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for row in self.rows_data:
            rows.append(
                {
                    "model": row.model,
                    "workload": row.workload,
                    "accuracy_pct": "-" if row.accuracy is None else round(row.accuracy * 100, 1),
                    "latency_s": row.latency_s,
                    "energy_wh_per_query": row.energy_wh,
                    "latency_x_sharegpt": row.latency_vs_sharegpt,
                    "energy_x_sharegpt": row.energy_vs_sharegpt,
                }
            )
        return rows

    def energy_for(self, model: str, workload: str) -> float:
        for row in self.rows_data:
            if row.model == model and row.workload == workload:
                return row.energy_wh
        raise KeyError(f"no Table III row for {model}/{workload}")

    def format(self) -> str:
        return format_table(self.rows(), "Table III: per-request accuracy, latency, energy (HotpotQA)")


#: highest-accuracy configurations used by the paper's Section VI analysis
#: (deep sequential scaling for Reflexion, wide parallel scaling for LATS).
TABLE3_AGENT_CONFIGS: Dict[str, AgentConfig] = {
    "reflexion": AgentConfig(max_iterations=10, max_trials=24, num_few_shot=2),
    "lats": AgentConfig(
        max_iterations=10, max_expansions=24, num_children=12, num_few_shot=2
    ),
}


def table3(
    models: Sequence[str] = ("8b", "70b"),
    num_tasks: int = 6,
    seed: int = 0,
    agent_configs: Optional[Dict[str, AgentConfig]] = None,
    max_decode_chunk: int = 4,
) -> Table3Result:
    """Reproduce Table III: ShareGPT vs Reflexion vs LATS on HotpotQA."""
    agent_configs = agent_configs or TABLE3_AGENT_CONFIGS
    result = Table3Result()
    for model in models:
        runner = SingleRequestRunner(
            model=model,
            enable_prefix_caching=True,
            seed=seed,
            max_decode_chunk=max_decode_chunk,
        )
        baseline = runner.run("chatbot", "sharegpt", num_tasks=max(num_tasks, 10))
        base_latency = baseline.mean_latency
        base_energy = baseline.mean_energy_wh
        result.rows_data.append(
            Table3Row(
                model=model,
                workload="sharegpt",
                accuracy=None,
                latency_s=base_latency,
                energy_wh=base_energy,
                latency_vs_sharegpt=1.0,
                energy_vs_sharegpt=1.0,
            )
        )
        for agent, config in agent_configs.items():
            run = runner.run(agent, "hotpotqa", config=config, num_tasks=num_tasks)
            result.rows_data.append(
                Table3Row(
                    model=model,
                    workload=agent,
                    accuracy=run.accuracy,
                    latency_s=run.mean_latency,
                    energy_wh=run.mean_energy_wh,
                    latency_vs_sharegpt=(run.mean_latency / base_latency) if base_latency else 0.0,
                    energy_vs_sharegpt=(run.mean_energy_wh / base_energy) if base_energy else 0.0,
                )
            )
    return Table3Result(rows_data=result.rows_data)


# ---------------------------------------------------------------------------
# Table IV -- datacenter-wide power demand.
# ---------------------------------------------------------------------------


@dataclass
class Table4Result:
    projections: List[PowerProjection] = field(default_factory=list)

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for projection in self.projections:
            rows.append(
                {
                    "workload": projection.label,
                    "queries_per_day": projection.queries_per_day,
                    "energy_wh_per_query": projection.energy_wh_per_query,
                    "power_mw": projection.power_megawatts,
                    "power_gw": projection.power_gigawatts,
                }
            )
        return rows

    def power_for(self, label: str, queries_per_day: float) -> PowerProjection:
        for projection in self.projections:
            if projection.label == label and projection.queries_per_day == queries_per_day:
                return projection
        raise KeyError(f"no Table IV projection for {label} at {queries_per_day}")

    def format(self) -> str:
        return format_table(self.rows(), "Table IV: datacenter-wide power demand")


def table4(
    table3_result: Optional[Table3Result] = None,
    traffic_levels: Sequence[float] = (CHATGPT_QUERIES_PER_DAY, GOOGLE_QUERIES_PER_DAY),
    **table3_kwargs,
) -> Table4Result:
    """Translate Table III per-query energy into datacenter power (Table IV)."""
    table3_result = table3_result or table3(**table3_kwargs)
    projections: List[PowerProjection] = []
    for row in table3_result.rows_data:
        for queries_per_day in traffic_levels:
            projections.append(
                project_power(
                    label=f"{row.workload}-{row.model}",
                    energy_wh_per_query=row.energy_wh,
                    queries_per_day=queries_per_day,
                )
            )
    return Table4Result(projections=projections)
