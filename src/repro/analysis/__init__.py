"""Experiment and reporting layer: one function per paper table/figure."""

from repro.analysis.admission import (
    AdmissionStudyResult,
    admission_study,
)
from repro.analysis.burst_profiles import (
    BurstProfileResult,
    burst_profile_study,
    offline_accuracy,
)
from repro.analysis.engine_fidelity import (
    EngineFidelityStudyResult,
    engine_fidelity_study,
)
from repro.analysis.fairness import (
    FairnessStudyResult,
    PredictorErrorStudyResult,
    fairness_study,
    predictor_error_study,
)
from repro.analysis.fleet_sizing import (
    FleetSizingResult,
    fleet_sizing_study,
)
from repro.analysis.hetero_fleet import (
    HeteroFleetResult,
    hetero_fleet_study,
)
from repro.analysis.predictive_scaling import (
    PredictiveScalingResult,
    predictive_scaling_study,
)
from repro.analysis.reporting import format_table, format_value, print_table
from repro.analysis.sessions import (
    SessionStudyResult,
    sessions_study,
)
from repro.analysis.figures import (
    CharacterizationMatrix,
    MixedFleetResult,
    characterization_matrix,
    default_config,
    mixed_fleet,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
    figure16,
    figure17,
)
from repro.analysis.tables import table1, table2, table3, table4

__all__ = [
    "AdmissionStudyResult",
    "BurstProfileResult",
    "CharacterizationMatrix",
    "EngineFidelityStudyResult",
    "FairnessStudyResult",
    "FleetSizingResult",
    "HeteroFleetResult",
    "MixedFleetResult",
    "PredictiveScalingResult",
    "PredictorErrorStudyResult",
    "SessionStudyResult",
    "admission_study",
    "burst_profile_study",
    "engine_fidelity_study",
    "fairness_study",
    "fleet_sizing_study",
    "hetero_fleet_study",
    "offline_accuracy",
    "predictive_scaling_study",
    "predictor_error_study",
    "sessions_study",
    "characterization_matrix",
    "default_config",
    "mixed_fleet",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "figure15",
    "figure16",
    "figure17",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "format_table",
    "format_value",
    "print_table",
    "table1",
    "table2",
    "table3",
    "table4",
]
