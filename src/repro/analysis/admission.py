"""Admission-policy study under the Table IV mixed chat+agent burst.

The paper's datacenter scenario assumes interactive chat latency survives
while agentic traffic saturates the fleet.  This study drives one shared
replica pool with a weighted chat+agent mixture at burst load and sweeps the
admission policy guarding the door:

* ``unlimited``    -- the open door (no protection),
* ``concurrency``  -- a global in-flight cap (the legacy blunt gate),
* ``token-bucket`` -- the agent class rate-limited to a fixed budget,
* ``slo-shed``     -- agent work shed whenever the projected chat p95
  violates the SLO declared in ``MeasurementSpec`` (deadline-aware).

Every spec shares the scheduler, router, seed, and arrival plan, so the
per-policy deltas in chat p95 / SLO attainment and agent rejection rate are
attributable to admission control alone.  ``examples/admission.py`` prints
the resulting table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.agents import AgentConfig
from repro.analysis.reporting import format_table
from repro.api import (
    AdmissionSpec,
    ArrivalSpec,
    ExperimentSpec,
    MeasurementSpec,
    ResultSet,
    WeightedWorkload,
    run_experiment,
)

#: Policies the study sweeps by default, in presentation order.
DEFAULT_POLICIES: Tuple[str, ...] = (
    "unlimited",
    "concurrency",
    "token-bucket",
    "slo-shed",
)


@dataclass
class AdmissionStudyResult:
    """Per-policy outcomes of the admission sweep (chat SLO vs agent shed)."""

    outcomes: Dict[str, ResultSet]
    chat_slo_s: float

    def rows(self) -> List[Dict[str, object]]:
        rows: List[Dict[str, object]] = []
        for policy, outcome in self.outcomes.items():
            chat = outcome.class_stats.get("chat")
            agent = outcome.class_stats.get("agent")
            rows.append(
                {
                    "policy": policy,
                    "chat_p95_s": chat.p95_latency_s if chat else 0.0,
                    "chat_slo_met": bool(
                        chat and chat.p95_latency_s <= self.chat_slo_s
                    ),
                    "chat_attainment": (
                        chat.slo_attainment if chat and chat.slo_attainment is not None else 0.0
                    ),
                    "agent_p95_s": agent.p95_latency_s if agent else 0.0,
                    "agent_rejected": agent.rejected if agent else 0,
                    "agent_rejection_rate": agent.rejection_rate if agent else 0.0,
                    "shed_tokens": outcome.shed_tokens,
                    "completed": outcome.num_completed,
                    "energy_wh": outcome.energy_wh,
                }
            )
        return rows

    def chat_slo_held(self, policy: str) -> bool:
        """Did ``policy`` keep the measured chat p95 within the declared SLO?"""
        chat = self.outcomes[policy].class_stats.get("chat")
        return bool(chat and chat.p95_latency_s <= self.chat_slo_s)

    def format(self) -> str:
        parts = [
            format_table(
                self.rows(),
                f"Admission policies under the chat+agent burst "
                f"(chat p95 SLO {self.chat_slo_s:.0f}s)",
            )
        ]
        shed = self.outcomes.get("slo-shed")
        if shed is not None:
            parts.append(
                format_table(
                    shed.per_class_admission(),
                    "slo-shed door accounting (per traffic class)",
                )
            )
        return "\n\n".join(parts)


def _admission_for(
    policy: str,
    max_concurrency: int,
    agent_rate_qps: float,
    shed_window_s: float,
) -> Optional[AdmissionSpec]:
    """The admission spec the study uses for one swept policy."""
    if policy == "unlimited":
        return None
    if policy == "concurrency":
        return AdmissionSpec(policy="concurrency", max_concurrency=max_concurrency)
    if policy == "token-bucket":
        # Only the agent class is rate-limited; chat stays on the open door.
        return AdmissionSpec(
            per_class=(
                (
                    "agent",
                    AdmissionSpec(
                        policy="token-bucket",
                        rate_qps=agent_rate_qps,
                        burst=2,
                        overload_action="reject",
                    ),
                ),
            )
        )
    if policy == "slo-shed":
        # Shed agent work whenever the projected chat p95 violates the SLO
        # declared in MeasurementSpec (inherited via protect_class).
        return AdmissionSpec(
            per_class=(
                (
                    "agent",
                    AdmissionSpec(
                        policy="slo-shed",
                        protect_class="chat",
                        window_s=shed_window_s,
                        enter_factor=0.75,
                        exit_factor=0.5,
                    ),
                ),
            )
        )
    raise ValueError(f"admission study does not know policy {policy!r}")


def admission_study(
    qps: float = 10.0,
    num_requests: int = 70,
    chat_slo_s: float = 16.0,
    chat_weight: float = 0.5,
    agent_weight: float = 0.5,
    replicas: int = 2,
    warmup_requests: int = 10,
    max_concurrency: int = 8,
    agent_rate_qps: float = 0.3,
    shed_window_s: float = 20.0,
    policies: Sequence[str] = DEFAULT_POLICIES,
    seed: int = 0,
) -> AdmissionStudyResult:
    """Sweep admission policies on a shared pool under a chat+agent burst.

    The mixture, arrival burst, scheduler (SJF by predicted decode), router,
    and seed are identical across policies; ``MeasurementSpec`` declares the
    chat p95 SLO and opens the measured window after ``warmup_requests``
    completions so the cold ramp does not dilute the steady-state comparison.
    """
    base = ExperimentSpec(
        workloads=(
            WeightedWorkload(
                agent="chatbot", workload="sharegpt", weight=chat_weight, name="chat"
            ),
            WeightedWorkload(
                agent="react", workload="hotpotqa", weight=agent_weight, name="agent"
            ),
        ),
        replicas=replicas,
        router="least-loaded",
        scheduler="sjf-by-predicted-decode",
        agent_config=AgentConfig(max_iterations=5),
        arrival=ArrivalSpec(
            process="poisson", qps=qps, num_requests=num_requests, task_pool_size=10
        ),
        measurement=MeasurementSpec(
            class_slos=(("chat", chat_slo_s),), warmup_requests=warmup_requests
        ),
        max_decode_chunk=8,
        seed=seed,
    )
    outcomes: Dict[str, ResultSet] = {}
    for policy in policies:
        spec = base.with_overrides(
            admission=_admission_for(
                policy, max_concurrency, agent_rate_qps, shed_window_s
            )
        )
        outcomes[policy] = run_experiment(spec)
    return AdmissionStudyResult(outcomes=outcomes, chat_slo_s=chat_slo_s)
