"""Multi-turn sessions: session length x KV capacity x router, Pareto-queried.

A chat fleet does not serve isolated requests: each user holds a
conversation whose every turn re-reads the whole history.  Whether that
history is re-computed or re-used is a placement question -- the KV blocks
of the previous turn live on exactly one replica, and only a router that
sends the next turn back there turns the conversation into prefix-cache
hits.  This study makes the trade concrete with the declarative study
machinery: a :class:`~repro.api.StudySpec` sweeps the router policy
(``least-loaded``, ``prefix-affinity``, and the sticky ``session-affinity``)
against session length (the ``arrival.sessions`` axis) and prefix-cache
capacity (the ``kv_cache_fraction`` axis) on a fixed-size replica fleet, so
every grid point pays the same replica-seconds.

Cross-turn reuse is read off
:attr:`~repro.api.ResultSet.cross_turn_hit_rate` (prefix-cache hit rate
over later-turn prompt tokens; 1.0 = every turn re-read its history from
KV) and the frontier query ``pareto_frontier(cost="p95_latency",
quality="cross_turn_hit_rate", minimize_quality=False)`` answers the
operator's question directly: which router buys conversation reuse without
paying for it in tail latency?

The headline read: ``session-affinity`` dominates ``prefix-affinity`` on
chat traffic drawn from a small task pool -- prefix hashing collapses every
concurrent conversation that opens with the same prompt onto one replica,
and the hotspot both spills (invalidating its own stickiness) and inflates
p95, while session stickiness spreads conversations at session start and
keeps each one home for its remaining turns.  ``examples/sessions.py``
prints the grid and the frontier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.reporting import format_table
from repro.api import (
    ArrivalSpec,
    ExperimentSpec,
    ParetoPoint,
    SessionSpec,
    StudyAxis,
    StudyResult,
    StudySpec,
    run_study,
)

#: Metric columns the session tables report.
SESSION_METRICS: Tuple[Tuple[str, object], ...] = (
    ("turns_served", "total_turns"),
    ("sessions", "completed_sessions"),
    ("hit_rate", "cross_turn_hit_rate"),
    ("p95_s", "p95_latency"),
    ("invalidations", "affinity_invalidations"),
    ("replica_s", "replica_seconds"),
)

#: The router policies the study compares.
SESSION_ROUTERS: Tuple[str, ...] = (
    "least-loaded",
    "prefix-affinity",
    "session-affinity",
)


@dataclass
class SessionStudyResult:
    """The executed session grid plus its Pareto views."""

    result: StudyResult

    def rows(self) -> List[Dict[str, object]]:
        return self.result.tabulate(SESSION_METRICS)

    def format(self) -> str:
        return self.result.format(
            "Cross-turn KV reuse: router x session length x cache capacity",
            SESSION_METRICS,
        )

    def frontier(self, **labels: str) -> List[ParetoPoint]:
        """Chat p95 vs cross-turn hit rate (optionally sliced by axis label)."""
        view = self.result if not labels else self.result.slice(**labels)
        return view.pareto_frontier(
            cost="p95_latency",
            quality="cross_turn_hit_rate",
            minimize_quality=False,
        )

    def format_frontier(self, **labels: str) -> str:
        rows = [
            {
                "router": entry.point.labels.get("router", "?"),
                "turns": entry.point.labels.get("turns", "?"),
                "kv": entry.point.labels.get("kv", "?"),
                "p95_s": entry.cost,
                "hit_rate": entry.quality,
                "invalidations": entry.point.metric("affinity_invalidations"),
            }
            for entry in self.frontier(**labels)
        ]
        return format_table(
            rows, "Pareto frontier (tail latency vs cross-turn reuse)"
        )

    def hit_rate(self, router: str, turns: str, kv: str) -> float:
        """The cross-turn hit rate of one grid cell."""
        (point,) = self.result.slice(router=router, turns=turns, kv=kv).points
        return point.metric("cross_turn_hit_rate")

    def mean_hit_rate(self, router: str) -> float:
        """Cross-turn hit rate averaged over the session/capacity axes."""
        points = self.result.slice(router=router).points
        rates = [point.metric("cross_turn_hit_rate") for point in points]
        return sum(rates) / len(rates)

    def frontier_routers(self, **labels: str) -> List[str]:
        """Router labels on the frontier, fastest first."""
        return [
            entry.point.labels.get("router", "?") for entry in self.frontier(**labels)
        ]

    def affinity_advantage(self, turns: str, kv: str) -> Dict[str, float]:
        """Session-affinity minus prefix-affinity, same cell, same replica-seconds.

        Positive ``hit_rate`` and negative ``p95_s`` mean sticky session
        routing strictly beats prefix hashing for that session length and
        cache capacity.
        """
        session = self.result.slice(router="session-affinity", turns=turns, kv=kv)
        prefix = self.result.slice(router="prefix-affinity", turns=turns, kv=kv)
        (session_point,) = session.points
        (prefix_point,) = prefix.points
        return {
            "hit_rate": (
                session_point.metric("cross_turn_hit_rate")
                - prefix_point.metric("cross_turn_hit_rate")
            ),
            "p95_s": (
                session_point.metric("p95_latency")
                - prefix_point.metric("p95_latency")
            ),
        }


def sessions_study(
    qps: float = 4.0,
    num_sessions: int = 16,
    turns_values: Sequence[int] = (2, 4),
    kv_fractions: Sequence[float] = (0.05, 1.0),
    routers: Sequence[str] = SESSION_ROUTERS,
    followup_tokens: int = 48,
    think_time_s: float = 1.0,
    replicas: int = 2,
    task_pool_size: int = 2,
    max_num_seqs: int = 2,
    seed: int = 0,
    parallel: int = 1,
) -> SessionStudyResult:
    """Sweep router x session length x KV capacity on chat conversations.

    Every grid point serves the same ``num_sessions`` conversations on the
    same fixed ``replicas``-wide fleet at the same seed, so replica-seconds
    are equal across routers and any hit-rate or tail-latency movement is
    attributable to placement.  ``task_pool_size`` is deliberately small:
    concurrent conversations that open with the same prompt are exactly the
    traffic that defeats prefix hashing (identical first-token hash, one
    hot replica) while leaving session stickiness untouched, and
    ``max_num_seqs`` caps the engine batch so the hot replica genuinely
    queues instead of absorbing the skew.

    ``parallel`` fans the grid points out over a process pool (see
    :func:`repro.api.run_study`); results are bit-identical to serial runs.
    """
    base = ExperimentSpec(
        agent="chatbot",
        workload="sharegpt",
        replicas=replicas,
        max_num_seqs=max_num_seqs,
        arrival=ArrivalSpec(
            process="poisson",
            qps=qps,
            num_requests=num_sessions,
            task_pool_size=task_pool_size,
            sessions=SessionSpec(
                turns=turns_values[0],
                followup_tokens=followup_tokens,
                think_time_s=think_time_s,
            ),
        ),
        max_decode_chunk=4,
        seed=seed,
    )
    study = StudySpec(
        base=base,
        axes=(
            StudyAxis(name="router", values=tuple(routers)),
            StudyAxis(
                name="turns",
                field="arrival.sessions",
                values=tuple(
                    SessionSpec(
                        turns=turns,
                        followup_tokens=followup_tokens,
                        think_time_s=think_time_s,
                    )
                    for turns in turns_values
                ),
                labels=tuple(str(turns) for turns in turns_values),
            ),
            StudyAxis(
                name="kv",
                field="kv_cache_fraction",
                values=tuple(kv_fractions),
                labels=tuple(f"{fraction:g}" for fraction in kv_fractions),
            ),
        ),
        name="session-reuse",
    )
    return SessionStudyResult(result=run_study(study, parallel=parallel))
