"""Forecasters x traffic shapes: who scales ahead of which burst profile?

PR 4 validated the arrival forecasters on synthetic traces that lived as
private generators inside the forecast tests; with rate shapes promoted
into the spec vocabulary, the same ramp / burst / diurnal profiles are now
*runnable traffic programs*, and this study sweeps them against the
forecaster registry the way Table IV gestures at:

* **offline accuracy** -- every forecaster replayed over the deterministic
  trace of every shape (:func:`repro.serving.shapes.deterministic_trace` +
  :func:`repro.serving.forecast.replay_score`, the exact scoring loop the
  accuracy tests pin), no simulator in the loop;
* **in-the-loop study** -- a :class:`~repro.api.StudySpec` sweeping
  ``autoscaler.forecaster`` x ``arrival.shape`` on a predictive-autoscaled
  pool, reporting the realised forecast MAE, the scale-ahead lead time,
  p95 latency, and replica-seconds per cell.

The qualitative shape to expect: the trend-aware ``holt`` forecaster wins
the ramp offline, and in the loop the forecasted runs buy scale-ahead lead
time the ``none`` baseline cannot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.reporting import format_table
from repro.api import (
    ArrivalSpec,
    AutoscalerSpec,
    ExperimentSpec,
    StudyAxis,
    StudyResult,
    StudySpec,
    run_study,
)
from repro.serving.forecast import build_forecaster, replay_score
from repro.serving.shapes import (
    DiurnalShape,
    RampShape,
    RateShape,
    SquareWaveShape,
    deterministic_trace,
)

#: The burst profiles the study sweeps, name -> shape (levels are
#: multipliers on the experiment's base qps).
DEFAULT_PROFILES: Tuple[Tuple[str, RateShape], ...] = (
    ("ramp", RampShape(start_level=0.4, end_level=2.0, ramp_s=40.0)),
    (
        "burst",
        SquareWaveShape(
            base_level=0.5, burst_level=2.5, period_s=40.0, burst_start_s=15.0,
            burst_s=10.0,
        ),
    ),
    ("diurnal", DiurnalShape(mean_level=1.0, amplitude=0.6, period_s=40.0)),
)

#: Forecasters swept in the loop (the ``none`` baseline never scales ahead).
DEFAULT_FORECASTERS: Tuple[str, ...] = ("none", "windowed-rate", "holt")

#: Metric columns of the in-the-loop table.
PROFILE_METRICS: Tuple[Tuple[str, object], ...] = (
    ("completed", "num_completed"),
    ("p95_s", "p95_latency"),
    ("forecast_mae", "forecast_mae"),
    ("scale_ahead_lead_s", "scale_ahead_lead_s"),
    ("replica_seconds", "replica_seconds"),
)


def offline_accuracy(
    profiles: Sequence[Tuple[str, RateShape]] = DEFAULT_PROFILES,
    forecasters: Sequence[str] = ("windowed-rate", "ewma", "holt"),
    qps: float = 5.0,
    duration_s: float = 60.0,
    horizon_s: float = 5.0,
) -> List[Dict[str, object]]:
    """Forecast MAE of every forecaster on every profile's deterministic trace.

    One row per profile with a column per forecaster -- the pure-accuracy
    view (no serving system in the loop), scored exactly the way the
    forecaster tests pin.
    """
    rows: List[Dict[str, object]] = []
    for label, shape in profiles:
        trace = deterministic_trace(shape, duration_s=duration_s, qps=qps)
        row: Dict[str, object] = {"profile": label}
        for name in forecasters:
            row[f"{name}_mae"] = replay_score(
                build_forecaster(name), trace, horizon_s=horizon_s
            )
        rows.append(row)
    return rows


@dataclass
class BurstProfileResult:
    """Offline accuracy rows plus the executed forecaster x shape study."""

    accuracy: List[Dict[str, object]]
    result: StudyResult

    def rows(self) -> List[Dict[str, object]]:
        return self.result.tabulate(PROFILE_METRICS)

    def format_accuracy(self) -> str:
        return format_table(
            self.accuracy, "Offline forecast MAE by profile (req/s; lower is better)"
        )

    def format(self) -> str:
        return self.result.format(
            "Predictive autoscaling across burst profiles", PROFILE_METRICS
        )

    def mean_lead_s(self, forecaster: str) -> float:
        """Mean scale-ahead lead across profiles for one forecaster (0 if none)."""
        leads = [
            point.outcome.scale_ahead_lead_s
            for point in self.result.slice(forecaster=forecaster).points
            if point.outcome.scale_ahead_lead_s is not None
        ]
        if not leads:
            return 0.0
        return sum(leads) / len(leads)

    def lead_on(self, profile: str, forecaster: str) -> Optional[float]:
        """Scale-ahead lead of one grid cell (``None`` = never scaled ahead)."""
        cell = self.result.slice(profile=profile, forecaster=forecaster).points
        if not cell:
            raise ValueError(f"no study cell for {profile!r} x {forecaster!r}")
        return cell[0].outcome.scale_ahead_lead_s

    def best_offline(self, profile: str) -> str:
        """The forecaster with the lowest offline MAE on ``profile``."""
        for row in self.accuracy:
            if row["profile"] == profile:
                scored = {
                    key[: -len("_mae")]: value
                    for key, value in row.items()
                    if key.endswith("_mae")
                }
                return min(scored, key=scored.get)
        raise ValueError(f"unknown profile {profile!r}")


def burst_profile_study(
    qps: float = 4.0,
    num_requests: int = 40,
    profiles: Sequence[Tuple[str, RateShape]] = DEFAULT_PROFILES,
    forecasters: Sequence[str] = DEFAULT_FORECASTERS,
    min_replicas: int = 1,
    max_replicas: int = 4,
    warmup_s: float = 4.0,
    horizon_s: float = 8.0,
    task_pool_size: int = 8,
    seed: int = 0,
) -> BurstProfileResult:
    """Sweep ``autoscaler.forecaster`` x ``arrival.shape`` on one elastic pool.

    A chatbot pool under predictive autoscaling serves each traffic
    program; only the forecaster and the shape vary across cells, so MAE,
    lead time, and cost deltas are attributable to the forecaster/profile
    pairing alone.  The offline-accuracy table rides along for the
    no-simulator view of the same grid.
    """
    base = ExperimentSpec(
        agent="chatbot",
        workload="sharegpt",
        arrival=ArrivalSpec(
            process="poisson",
            qps=qps,
            num_requests=num_requests,
            task_pool_size=task_pool_size,
        ),
        autoscaler=AutoscalerSpec(
            mode="predictive",
            forecaster=forecasters[0],
            min_replicas=min_replicas,
            max_replicas=max_replicas,
            check_interval_s=1.0,
            warmup_s=warmup_s,
            horizon_s=horizon_s,
            scale_up_pending_per_replica=3.0,
            scale_down_pending_per_replica=0.5,
            forecaster_bucket_s=2.0,
            forecaster_alpha=0.6,
            forecaster_beta=0.4,
        ),
        max_decode_chunk=8,
        seed=seed,
    )
    study = StudySpec(
        base=base,
        axes=(
            StudyAxis(
                name="profile",
                field="arrival.shape",
                values=tuple(shape for _, shape in profiles),
                labels=tuple(label for label, _ in profiles),
            ),
            StudyAxis(
                name="forecaster",
                field="autoscaler.forecaster",
                values=tuple(forecasters),
            ),
        ),
        name="burst-profiles",
    )
    return BurstProfileResult(
        accuracy=offline_accuracy(profiles, qps=qps),
        result=run_study(study),
    )
