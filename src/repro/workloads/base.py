"""Workload abstractions: tasks, benchmark metadata, and the registry.

A *workload* bundles everything one benchmark needs: a seeded task generator,
the tool environment factory, the agent-facing action policy (which tool call
a competent agent would issue at a given point in a task), and descriptive
metadata used to regenerate the paper's Table II.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.llm.client import LLMClient
from repro.llm.tokenizer import SyntheticTokenizer
from repro.oracle.calibration import BenchmarkProfile, get_benchmark_profile
from repro.sim import Environment
from repro.sim.distributions import RandomStream
from repro.tools.base import ToolAction, ToolSet


@dataclass(frozen=True)
class Task:
    """One benchmark instance an agent is asked to solve."""

    task_id: str
    benchmark: str
    question: str
    user_tokens: int
    difficulty: float
    solution_depth: int
    gold_answer: Any = None
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.difficulty <= 1.0:
            raise ValueError(f"difficulty must be within [0, 1], got {self.difficulty}")
        if self.solution_depth < 1:
            raise ValueError("solution_depth must be >= 1")


@dataclass(frozen=True)
class BenchmarkInfo:
    """Descriptive row of the paper's Table II."""

    name: str
    task_description: str
    tools: str
    agents: Tuple[str, ...]


class Workload:
    """Base class for benchmark workloads."""

    name: str = "workload"
    task_description: str = ""
    tool_description: str = ""
    supported_agents: Tuple[str, ...] = ()

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.stream = RandomStream(seed, f"workload/{self.name}")
        self.profile: BenchmarkProfile = get_benchmark_profile(self.name)

    # -- to be provided by subclasses -----------------------------------------
    def sample_tasks(self, count: int) -> List[Task]:
        raise NotImplementedError

    def build_toolset(
        self,
        env: Environment,
        tokenizer: SyntheticTokenizer,
        llm_client: Optional[LLMClient] = None,
    ) -> ToolSet:
        raise NotImplementedError

    def action_for(self, task: Task, iteration: int, stream: RandomStream) -> ToolAction:
        """The tool call a competent agent issues at ``iteration`` of ``task``."""
        raise NotImplementedError

    # -- shared helpers --------------------------------------------------------
    def supports_agent(self, agent_name: str) -> bool:
        return agent_name.lower() in self.supported_agents

    def info(self) -> BenchmarkInfo:
        return BenchmarkInfo(
            name=self.name,
            task_description=self.task_description,
            tools=self.tool_description,
            agents=self.supported_agents,
        )

    def _sample_difficulty(self, stream: RandomStream) -> float:
        alpha, beta = self.profile.difficulty_beta
        # Beta sample via two gamma draws to stay within RandomStream's API.
        x = stream.lognormal(0.0, 0.4) * alpha
        y = stream.lognormal(0.0, 0.4) * beta
        return max(0.02, min(0.98, x / (x + y)))

    def _sample_solution_depth(self, stream: RandomStream) -> int:
        low, high = self.profile.solution_depth_range
        return stream.integers(low, high + 1)

    def _sample_user_tokens(self, stream: RandomStream) -> int:
        return max(4, round(self.profile.user_tokens.sample(stream)))


_WORKLOAD_FACTORIES: Dict[str, Callable[[int], Workload]] = {}


def register_workload(name: str, factory: Callable[[int], Workload]) -> None:
    """Register a workload factory under ``name`` (lower-case)."""
    _WORKLOAD_FACTORIES[name.lower()] = factory


def create_workload(name: str, seed: int = 0) -> Workload:
    """Instantiate a registered workload."""
    key = name.lower()
    if key not in _WORKLOAD_FACTORIES:
        raise KeyError(f"unknown workload {name!r}; known: {sorted(_WORKLOAD_FACTORIES)}")
    return _WORKLOAD_FACTORIES[key](seed)


def available_workloads() -> List[str]:
    return sorted(_WORKLOAD_FACTORIES)
