"""Benchmark workloads (Table II) plus the ShareGPT chatbot baseline."""

from repro.workloads.base import (
    BenchmarkInfo,
    Task,
    Workload,
    available_workloads,
    create_workload,
    register_workload,
)
from repro.workloads.hotpotqa import HotpotQAWorkload
from repro.workloads.webshop_tasks import WebShopWorkload
from repro.workloads.math_tasks import MathWorkload
from repro.workloads.humaneval import HumanEvalWorkload
from repro.workloads.sharegpt import ShareGPTWorkload

register_workload("hotpotqa", lambda seed=0: HotpotQAWorkload(seed))
register_workload("webshop", lambda seed=0: WebShopWorkload(seed))
register_workload("math", lambda seed=0: MathWorkload(seed))
register_workload("humaneval", lambda seed=0: HumanEvalWorkload(seed))
register_workload("sharegpt", lambda seed=0: ShareGPTWorkload(seed))

AGENTIC_WORKLOADS = ("hotpotqa", "webshop", "math", "humaneval")

__all__ = [
    "AGENTIC_WORKLOADS",
    "BenchmarkInfo",
    "HotpotQAWorkload",
    "HumanEvalWorkload",
    "MathWorkload",
    "ShareGPTWorkload",
    "Task",
    "WebShopWorkload",
    "Workload",
    "available_workloads",
    "create_workload",
    "register_workload",
]
