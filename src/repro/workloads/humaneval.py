"""HumanEval-style programming workload."""

from __future__ import annotations

from typing import List, Optional

from repro.llm.client import LLMClient
from repro.llm.tokenizer import SyntheticTokenizer
from repro.sim import Environment
from repro.sim.distributions import RandomStream
from repro.tools.base import ToolAction, ToolSet
from repro.tools.python_exec import PythonExecutionTool
from repro.workloads.base import Task, Workload


class HumanEvalWorkload(Workload):
    """Program-synthesis tasks validated through self-generated tests.

    Each task is a function specification; agents iterate between writing a
    candidate implementation (LLM call) and running self-generated tests
    through the Python execution tool, which itself uses the LLM (and hence
    the GPU) for test generation -- matching the paper's observation that the
    HumanEval tool phase keeps the GPU busy.
    """

    name = "humaneval"
    task_description = "Programming"
    tool_description = "Executing self-generated test code"
    supported_agents = ("cot", "react", "reflexion", "lats")

    _SPECS = [
        ("rolling_median", "Return the rolling median of a list with window size k."),
        ("balanced_brackets", "Check whether a string of brackets is balanced."),
        ("merge_intervals", "Merge overlapping closed intervals and return the result sorted."),
        ("digit_persistence", "Return the multiplicative persistence of a non-negative integer."),
        ("longest_run", "Return the length of the longest run of equal adjacent items."),
        ("caesar_decode", "Decode a Caesar cipher given the shift value."),
        ("sparse_dot", "Compute the dot product of two sparse vectors given as dicts."),
        ("group_anagrams", "Group a list of words into anagram classes."),
    ]

    def sample_tasks(self, count: int) -> List[Task]:
        stream = self.stream.substream("tasks")
        tasks: List[Task] = []
        for index in range(count):
            name, description = self._SPECS[stream.integers(0, len(self._SPECS))]
            question = (
                f"def {name}(...):\n    \"\"\"{description}\"\"\"\n"
                "Complete the implementation and make the hidden unit tests pass."
            )
            tasks.append(
                Task(
                    task_id=f"humaneval-{self.seed}-{index}",
                    benchmark=self.name,
                    question=question,
                    user_tokens=self._sample_user_tokens(stream),
                    difficulty=self._sample_difficulty(stream),
                    solution_depth=self._sample_solution_depth(stream),
                    gold_answer=name,
                    metadata={"function": name},
                )
            )
        return tasks

    def build_toolset(
        self,
        env: Environment,
        tokenizer: SyntheticTokenizer,
        llm_client: Optional[LLMClient] = None,
    ) -> ToolSet:
        tool = PythonExecutionTool(
            env=env,
            tokenizer=tokenizer,
            latency_sampler=self.profile.tool_latency,
            stream=self.stream.substream("python-exec-tool"),
            llm_client=llm_client,
        )
        return ToolSet([tool])

    def action_for(self, task: Task, iteration: int, stream: RandomStream) -> ToolAction:
        return ToolAction(
            tool="python_exec",
            action="run_tests",
            argument=task.metadata.get("function", "candidate"),
        )
