"""HotpotQA-style multi-hop question answering workload."""

from __future__ import annotations

from typing import List, Optional

from repro.llm.client import LLMClient
from repro.llm.tokenizer import SyntheticTokenizer
from repro.sim import Environment
from repro.sim.distributions import RandomStream
from repro.tools.base import ToolAction, ToolSet
from repro.tools.wikipedia import WikipediaCorpus, WikipediaTool
from repro.workloads.base import Task, Workload


class HotpotQAWorkload(Workload):
    """Multi-hop questions over a synthetic, interlinked Wikipedia corpus.

    Each task is generated from an actual relation chain in the corpus
    (work -> creator -> birthplace, ...), so its ``solution_depth`` equals the
    number of articles an agent has to retrieve, and the Wikipedia tool
    returns the real (synthetic) article text for those retrievals.
    """

    name = "hotpotqa"
    task_description = "Multi-hop question answering"
    tool_description = "Wikipedia APIs (search, lookup keywords)"
    supported_agents = ("cot", "react", "reflexion", "lats", "llmcompiler")

    def __init__(self, seed: int = 0, corpus_size: int = 120):
        super().__init__(seed)
        self.corpus = WikipediaCorpus(self.stream.substream("corpus"), corpus_size)

    # -- task generation ------------------------------------------------------
    def sample_tasks(self, count: int) -> List[Task]:
        stream = self.stream.substream("tasks")
        works = [a for a in self.corpus.articles.values() if a.kind == "work"]
        tasks: List[Task] = []
        for index in range(count):
            work = stream.choice(works)
            creator_name = work.attributes["creator"]
            creator = self.corpus.get(creator_name)
            chain = [work.title, creator_name]
            answer = creator.attributes.get("birthplace", "unknown") if creator else "unknown"
            depth = self._sample_solution_depth(stream)
            if depth >= 3 and creator is not None:
                chain.append(answer)
                place = self.corpus.get(answer)
                answer = place.attributes.get("founded", "unknown") if place else "unknown"
                question = (
                    f"In which year was the settlement founded where the "
                    f"{work.attributes['relation']} of {work.title} was born?"
                )
            else:
                depth = 2
                question = (
                    f"Where was the {work.attributes['relation']} of {work.title} born?"
                )
            tasks.append(
                Task(
                    task_id=f"hotpotqa-{self.seed}-{index}",
                    benchmark=self.name,
                    question=question,
                    user_tokens=self._sample_user_tokens(stream),
                    difficulty=self._sample_difficulty(stream),
                    solution_depth=depth,
                    gold_answer=answer,
                    metadata={"chain": chain},
                )
            )
        return tasks

    # -- environment ------------------------------------------------------------
    def build_toolset(
        self,
        env: Environment,
        tokenizer: SyntheticTokenizer,
        llm_client: Optional[LLMClient] = None,
    ) -> ToolSet:
        tool = WikipediaTool(
            env=env,
            tokenizer=tokenizer,
            latency_sampler=self.profile.tool_latency,
            stream=self.stream.substream("wikipedia-tool"),
            corpus=self.corpus,
        )
        return ToolSet([tool])

    def action_for(self, task: Task, iteration: int, stream: RandomStream) -> ToolAction:
        chain = task.metadata.get("chain", [])
        if chain and iteration < len(chain):
            return ToolAction(tool="wikipedia", action="search", argument=chain[iteration])
        if chain and stream.random() < 0.5:
            return ToolAction(
                tool="wikipedia", action="lookup", argument=str(task.gold_answer)
            )
        argument = chain[-1] if chain else task.question.split()[-1]
        return ToolAction(tool="wikipedia", action="search", argument=argument)
