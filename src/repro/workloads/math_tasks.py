"""MATH-style mathematical problem-solving workload."""

from __future__ import annotations

from typing import List, Optional

from repro.llm.client import LLMClient
from repro.llm.tokenizer import SyntheticTokenizer
from repro.sim import Environment
from repro.sim.distributions import RandomStream
from repro.tools.base import ToolAction, ToolSet
from repro.tools.calculator import CalculatorTool, WolframAlphaTool, evaluate_expression
from repro.workloads.base import Task, Workload


class MathWorkload(Workload):
    """Multi-step arithmetic/algebra word problems with computed gold answers.

    Problems are generated as expression trees whose sub-expressions map to
    reasoning steps; the agent offloads numeric work to the local calculator
    and harder symbolic steps to the (slow) Wolfram Alpha API, matching the
    paper's tool setup for MATH.
    """

    name = "math"
    task_description = "Math problem solving"
    tool_description = "Wolfram Alpha API, Python-based calculator"
    supported_agents = ("cot", "react", "reflexion", "lats")

    _TEMPLATES = [
        "A workshop produces {a} units per day for {b} days, then {c} more units. How many units in total?",
        "Compute the value of ({a} + {b}) * {c} - {d}.",
        "A tank holds {a} liters and drains {b} liters per hour for {c} hours. How much remains?",
        "If a triangle has legs {a} and {b}, what is the square of its hypotenuse plus {c}?",
    ]

    def sample_tasks(self, count: int) -> List[Task]:
        stream = self.stream.substream("tasks")
        tasks: List[Task] = []
        for index in range(count):
            a = stream.integers(3, 60)
            b = stream.integers(2, 30)
            c = stream.integers(2, 25)
            d = stream.integers(1, 40)
            depth = self._sample_solution_depth(stream)
            template_index = stream.integers(0, len(self._TEMPLATES))
            question = self._TEMPLATES[template_index].format(a=a, b=b, c=c, d=d)
            expressions = self._expressions_for(template_index, a, b, c, d)[:depth]
            answer = evaluate_expression(expressions[-1]) if expressions else 0.0
            tasks.append(
                Task(
                    task_id=f"math-{self.seed}-{index}",
                    benchmark=self.name,
                    question=question,
                    user_tokens=self._sample_user_tokens(stream),
                    difficulty=self._sample_difficulty(stream),
                    solution_depth=max(1, len(expressions)),
                    gold_answer=answer,
                    metadata={"expressions": expressions},
                )
            )
        return tasks

    @staticmethod
    def _expressions_for(template_index: int, a: int, b: int, c: int, d: int) -> List[str]:
        if template_index == 0:
            return [f"{a} * {b}", f"{a} * {b} + {c}"]
        if template_index == 1:
            return [f"{a} + {b}", f"({a} + {b}) * {c}", f"({a} + {b}) * {c} - {d}"]
        if template_index == 2:
            return [f"{b} * {c}", f"{a} - {b} * {c}"]
        return [f"{a}^2", f"{b}^2", f"{a}^2 + {b}^2 + {c}"]

    def build_toolset(
        self,
        env: Environment,
        tokenizer: SyntheticTokenizer,
        llm_client: Optional[LLMClient] = None,
    ) -> ToolSet:
        wolfram = WolframAlphaTool(
            env=env,
            tokenizer=tokenizer,
            latency_sampler=self.profile.tool_latency,
            stream=self.stream.substream("wolfram-tool"),
        )
        calculator = CalculatorTool(
            env=env,
            tokenizer=tokenizer,
            latency_sampler=self._calculator_latency(),
            stream=self.stream.substream("calculator-tool"),
        )
        return ToolSet([wolfram, calculator])

    @staticmethod
    def _calculator_latency():
        from repro.sim.distributions import LogNormalSampler

        return LogNormalSampler(0.05, 0.3)

    def action_for(self, task: Task, iteration: int, stream: RandomStream) -> ToolAction:
        expressions = task.metadata.get("expressions", [])
        expression = (
            expressions[min(iteration, len(expressions) - 1)]
            if expressions
            else "1 + 1"
        )
        # Harder sub-steps go to Wolfram Alpha, simple arithmetic stays local.
        use_wolfram = iteration == 0 or task.difficulty > 0.55 or stream.random() < 0.5
        tool = "wolfram" if use_wolfram else "calculator"
        return ToolAction(tool=tool, action="solve", argument=expression)
