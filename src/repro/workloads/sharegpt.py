"""ShareGPT-style single-turn chatbot workload (the non-agentic baseline)."""

from __future__ import annotations

from typing import List, Optional

from repro.llm.client import LLMClient
from repro.llm.tokenizer import SyntheticTokenizer
from repro.sim import Environment
from repro.sim.distributions import RandomStream
from repro.tools.base import ToolAction, ToolSet
from repro.workloads.base import Task, Workload


class ShareGPTWorkload(Workload):
    """Conventional chatbot requests: one prompt, one LLM response, no tools.

    Prompt and response lengths follow heavy-tailed log-normal distributions
    matching public ShareGPT statistics (mean prompt ~290 tokens, mean
    response ~250 tokens), which is all the serving-level comparison needs.
    """

    name = "sharegpt"
    task_description = "Open-ended chatbot conversation (single turn)"
    tool_description = "None (no external tools)"
    supported_agents = ("chatbot",)

    def sample_tasks(self, count: int) -> List[Task]:
        stream = self.stream.substream("tasks")
        tasks: List[Task] = []
        for index in range(count):
            output_tokens = max(8, round(self.profile.cot_output_tokens.sample(stream)))
            tasks.append(
                Task(
                    task_id=f"sharegpt-{self.seed}-{index}",
                    benchmark=self.name,
                    question="(user conversation turn)",
                    user_tokens=self._sample_user_tokens(stream),
                    difficulty=0.5,
                    solution_depth=1,
                    gold_answer=None,
                    metadata={"output_tokens": output_tokens},
                )
            )
        return tasks

    def build_toolset(
        self,
        env: Environment,
        tokenizer: SyntheticTokenizer,
        llm_client: Optional[LLMClient] = None,
    ) -> ToolSet:
        raise NotImplementedError("the chatbot workload does not use tools")

    def action_for(self, task: Task, iteration: int, stream: RandomStream) -> ToolAction:
        raise NotImplementedError("the chatbot workload does not use tools")
