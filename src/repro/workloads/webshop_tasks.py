"""WebShop-style online shopping workload."""

from __future__ import annotations

from typing import List, Optional

from repro.llm.client import LLMClient
from repro.llm.tokenizer import SyntheticTokenizer
from repro.sim import Environment
from repro.sim.distributions import RandomStream
from repro.tools.base import ToolAction, ToolSet
from repro.tools.webshop import ProductCatalog, WebShopTool
from repro.workloads.base import Task, Workload


class WebShopWorkload(Workload):
    """Find-and-buy tasks over a synthetic product catalogue.

    Each task fixes a target product (so a matching item always exists) and a
    set of attribute/price constraints; the agent has to reach it through
    search and click navigation.  ``solution_depth`` is the number of
    navigation actions a competent trajectory needs (search, open result,
    choose options, buy), which is why WebShop requests involve far more
    agent iterations than HotpotQA (paper Fig. 4).
    """

    name = "webshop"
    task_description = "Online shopping"
    tool_description = "Interactive web navigation (search, click)"
    supported_agents = ("react", "reflexion", "lats", "llmcompiler")

    def __init__(self, seed: int = 0, catalog_size: int = 400):
        super().__init__(seed)
        self.catalog = ProductCatalog(self.stream.substream("catalog"), catalog_size)

    def sample_tasks(self, count: int) -> List[Task]:
        stream = self.stream.substream("tasks")
        tasks: List[Task] = []
        for index in range(count):
            target = stream.choice(self.catalog.products)
            requirements = {"category": target.category, "color": target.color}
            if stream.random() < 0.5:
                requirements["material"] = target.material
            max_price = round(target.price * stream.uniform(1.05, 1.4), 2)
            question = (
                f"I need a {target.color} {target.category}"
                + (f" made of {target.material}" if "material" in requirements else "")
                + f", and price lower than {max_price:.2f} dollars."
            )
            tasks.append(
                Task(
                    task_id=f"webshop-{self.seed}-{index}",
                    benchmark=self.name,
                    question=question,
                    user_tokens=self._sample_user_tokens(stream),
                    difficulty=self._sample_difficulty(stream),
                    solution_depth=self._sample_solution_depth(stream),
                    gold_answer=target.product_id,
                    metadata={
                        "requirements": requirements,
                        "max_price": max_price,
                        "target": target.product_id,
                    },
                )
            )
        return tasks

    def build_toolset(
        self,
        env: Environment,
        tokenizer: SyntheticTokenizer,
        llm_client: Optional[LLMClient] = None,
    ) -> ToolSet:
        tool = WebShopTool(
            env=env,
            tokenizer=tokenizer,
            latency_sampler=self.profile.tool_latency,
            stream=self.stream.substream("webshop-tool"),
            catalog=self.catalog,
        )
        return ToolSet([tool])

    def action_for(self, task: Task, iteration: int, stream: RandomStream) -> ToolAction:
        requirements = task.metadata.get("requirements", {})
        target = task.metadata.get("target", "")
        if iteration == 0:
            query = " ".join(str(v) for v in requirements.values())
            return ToolAction(tool="webshop", action="search", argument=query)
        depth = task.solution_depth
        if iteration >= depth - 1:
            return ToolAction(tool="webshop", action="click", argument="buy now")
        if iteration == 1:
            return ToolAction(tool="webshop", action="click", argument=target)
        option = stream.choice(list(requirements.values()) or ["medium"])
        return ToolAction(tool="webshop", action="click", argument=str(option))
