"""Reflexion agent: ReAct trials with verbal self-reflection between trials."""

from __future__ import annotations

from repro.agents.config import AgentCapabilities
from repro.agents.react import ReActAgent
from repro.llm.tokenizer import SegmentKind
from repro.workloads.base import Task


class ReflexionAgent(ReActAgent):
    """Episodic retry with self-evaluation and verbal reflection (Fig. 3c).

    After each ReAct-style trial the agent evaluates its own outcome (an LLM
    call acting as the internal reward signal).  If the evaluation flags a
    failure and trials remain, the agent generates a reflection, stores it in
    long-term memory (a reflection span prepended to the next trial's
    context), and retries the task from scratch.  ``config.max_trials`` is the
    sequential test-time-scaling knob studied in Fig. 16(a).
    """

    name = "reflexion"
    capabilities = AgentCapabilities(reasoning=True, tool_use=True, reflection=True)

    def run(self, task: Task):
        trace = self.new_trace(task)
        oracle = self.make_oracle(task)
        reflection_spans = []

        for trial in range(self.config.max_trials):
            trace.trials = trial + 1
            prompt = self.base_prompt(task)
            for span in reflection_spans:
                prompt.append(span)

            prompt, _answered = yield from self.react_loop(
                trace, task, oracle, prompt, self.config.max_iterations
            )

            answer_correct = oracle.judge_final_answer()
            # Self-evaluation: one LLM call that scores the trajectory.
            evaluation = yield from self.llm_call(trace, prompt, "reflection", oracle)
            prompt.append(evaluation.output_span())
            if not oracle.evaluator_detects_failure(answer_correct):
                break
            if trial == self.config.max_trials - 1:
                break

            # Reflection: abstract the failed trajectory into guidance for the
            # next trial and keep it in long-term memory.
            reflection = yield from self.llm_call(trace, prompt, "reflection", oracle)
            reflection_spans.append(
                # Reflections enter the next prompt as accumulated LLM history.
                reflection.output_span()
            )
            oracle.note_reflection()
            oracle.reset_trial()
            yield from self.overhead(trace)

        return self.finalize(trace, oracle)
