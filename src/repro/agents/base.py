"""Agent core: the shared machinery every agent workflow builds on.

The agent core mirrors the paper's Figure 2 decomposition:

* the *agent core* (this module + the concrete workflow subclasses) performs
  reasoning by issuing LLM calls through the serving engine,
* *memory* is the growing prompt context (LLM-history and tool-history spans)
  plus, for reflective agents, accumulated reflection spans,
* the *plan* is workflow-specific (ReAct's implicit next-step choice, LATS's
  tree, LLMCompiler's DAG of tool tasks), and
* *tools* are invoked through the benchmark's :class:`~repro.tools.base.ToolSet`.

Every agent run produces an :class:`AgentRunResult` holding the full timing
trace (each LLM call's timings, each tool call's interval, framework
overhead) so the characterization layer can regenerate the paper's latency,
token, utilization, and energy breakdowns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.agents.config import AgentCapabilities, AgentConfig
from repro.llm.client import LLMClient
from repro.llm.request import LLMResult
from repro.llm.tokenizer import Prompt, SegmentKind, SyntheticTokenizer, TokenSpan
from repro.oracle.behavior import TaskOracle, make_oracle
from repro.oracle.calibration import (
    get_agent_profile,
    get_benchmark_profile,
    get_model_quality,
)
from repro.sim import Environment
from repro.sim.distributions import RandomStream
from repro.tools.base import ToolAction, ToolCallRecord, ToolResult, ToolSet
from repro.workloads.base import Task, Workload


@dataclass
class AgentRunResult:
    """Complete trace of one agent request (one task served end to end)."""

    agent: str
    benchmark: str
    task_id: str
    config: AgentConfig
    model: str
    start_time: float = 0.0
    end_time: float = 0.0
    llm_calls: List[LLMResult] = field(default_factory=list)
    tool_calls: List[ToolCallRecord] = field(default_factory=list)
    other_time: float = 0.0
    iterations: int = 0
    trials: int = 1
    solved: bool = False
    answer_correct: bool = False
    score: float = 0.0
    metadata: Dict[str, Any] = field(default_factory=dict)

    # -- derived quantities -------------------------------------------------
    @property
    def e2e_latency(self) -> float:
        return max(0.0, self.end_time - self.start_time)

    @property
    def num_llm_calls(self) -> int:
        return len(self.llm_calls)

    @property
    def num_tool_calls(self) -> int:
        return len(self.tool_calls)

    @property
    def total_prompt_tokens(self) -> int:
        return sum(result.prompt_tokens for result in self.llm_calls)

    @property
    def total_output_tokens(self) -> int:
        return sum(result.output_tokens for result in self.llm_calls)

    @property
    def total_tokens(self) -> int:
        return self.total_prompt_tokens + self.total_output_tokens

    def llm_intervals(self) -> List[Tuple[float, float]]:
        """(start, end) intervals of the agent's own LLM calls."""
        return [(r.arrival_time, r.finish_time) for r in self.llm_calls]

    def tool_intervals(self) -> List[Tuple[float, float]]:
        return [(record.start, record.end) for record in self.tool_calls]

    def mean_prompt_tokens_by_kind(self) -> Dict[SegmentKind, float]:
        """Average prompt composition across this request's LLM calls."""
        if not self.llm_calls:
            return {}
        totals: Dict[SegmentKind, float] = {}
        for result in self.llm_calls:
            for kind, count in result.prompt_tokens_by_kind.items():
                totals[kind] = totals.get(kind, 0.0) + count
        return {kind: value / len(self.llm_calls) for kind, value in totals.items()}


class BaseAgent:
    """Common implementation shared by all agent workflows."""

    name = "base"
    capabilities = AgentCapabilities()

    def __init__(
        self,
        *,
        env: Environment,
        client: LLMClient,
        workload: Workload,
        toolset: Optional[ToolSet],
        config: Optional[AgentConfig] = None,
        seed_stream: Optional[RandomStream] = None,
    ):
        self.env = env
        self.client = client
        self.workload = workload
        self.toolset = toolset
        self.config = config or AgentConfig()
        self.seed_stream = seed_stream or RandomStream(0, f"agent/{self.name}")
        self.tokenizer: SyntheticTokenizer = client.tokenizer
        # Extra key/values stamped onto every LLM request this agent issues
        # (e.g. the traffic class a pool-aware cluster routes on).
        self.request_metadata: Dict[str, Any] = {}
        # Multi-turn session support (set by the serving driver between
        # turns; empty = the single-shot default).  ``context_prefix`` is the
        # accumulated conversation (previous turns' prompt + output spans) the
        # next prompt must start with, token for token, so the prefix cache
        # hits on the replica that served the previous turn; ``followup_span``
        # replaces the task's first-turn user span on later turns.
        self.context_prefix: List[TokenSpan] = []
        self.followup_span: Optional[TokenSpan] = None
        # Prompt spans of the most recent LLM call (the conversation state the
        # driver extends with the call's output span to build the next turn).
        self.last_prompt_spans: List[TokenSpan] = []

        self.profile = get_agent_profile(self.name)
        self.benchmark_profile = workload.profile
        self.model_quality = get_model_quality(client.model_name)

        if self.capabilities.tool_use and toolset is None:
            raise ValueError(f"agent {self.name!r} requires a toolset")
        if not workload.supports_agent(self.name):
            raise ValueError(
                f"benchmark {workload.name!r} does not support agent {self.name!r}"
            )

    # -- prompt assembly ------------------------------------------------------
    def base_prompt(self, task: Task) -> Prompt:
        """Instruction + few-shot + user spans for ``task``.

        Instruction and few-shot spans are pure functions of
        (benchmark, agent, example index), so every request of the same agent
        on the same benchmark shares them -- this is the cross-request prefix
        the serving-level prefix cache exploits.

        On a session turn after the first (``context_prefix`` set), the prompt
        is instead the accumulated conversation followed by the follow-up user
        span: instruction and few-shot content is already inside the context,
        and prepending anything else would break the exact token-prefix match
        the cross-turn cache hit depends on.
        """
        prompt = Prompt()
        if self.context_prefix:
            prompt.extend(self.context_prefix)
            if self.followup_span is not None:
                prompt.append(self.followup_span)
            return prompt
        prompt.append(
            self.tokenizer.span(
                SegmentKind.INSTRUCTION,
                f"instruction:{self.workload.name}:{self.name}",
                self.benchmark_profile.instruction_tokens,
            )
        )
        for example_index in range(self.config.num_few_shot):
            prompt.append(
                self.tokenizer.span(
                    SegmentKind.FEW_SHOT,
                    f"fewshot:{self.workload.name}:{self.name}:{example_index}",
                    self.benchmark_profile.few_shot_example_tokens,
                )
            )
        prompt.append(
            self.tokenizer.span(SegmentKind.USER, f"user:{task.task_id}", task.user_tokens)
        )
        return prompt

    def make_oracle(self, task: Task, attempt: int = 0) -> TaskOracle:
        return make_oracle(
            task=task,
            benchmark=self.benchmark_profile,
            agent=self.profile,
            model=self.model_quality,
            num_few_shot=self.config.num_few_shot,
            seed_stream=self.seed_stream,
            attempt=attempt,
        )

    def new_trace(self, task: Task) -> AgentRunResult:
        return AgentRunResult(
            agent=self.name,
            benchmark=self.workload.name,
            task_id=task.task_id,
            config=self.config,
            model=self.client.model_name,
            start_time=self.env.now,
        )

    # -- traced primitive operations -------------------------------------------
    def llm_call(
        self,
        trace: AgentRunResult,
        prompt: Prompt,
        role: str,
        oracle: TaskOracle,
        output_tokens: Optional[int] = None,
    ):
        """Issue one LLM call and record it (``yield from`` inside run())."""
        tokens = output_tokens if output_tokens is not None else oracle.sample_output_tokens(role)
        tokens = min(tokens, self.config.max_output_tokens)
        self.last_prompt_spans = list(prompt.spans)
        result = yield self.client.generate(
            prompt.copy(),
            output_tokens=tokens,
            metadata={
                "agent": self.name,
                "role": role,
                "task": trace.task_id,
                **self.request_metadata,
            },
        )
        trace.llm_calls.append(result)
        return result

    def start_llm_call(
        self,
        trace: AgentRunResult,
        prompt: Prompt,
        role: str,
        oracle: TaskOracle,
        output_tokens: Optional[int] = None,
    ):
        """Submit an LLM call without waiting (returns the completion event).

        Used for parallel calls (LATS children) and plan/tool overlap
        (LLMCompiler).  The caller must record the result via
        :meth:`record_llm_result` once the event fires.
        """
        tokens = output_tokens if output_tokens is not None else oracle.sample_output_tokens(role)
        tokens = min(tokens, self.config.max_output_tokens)
        return self.client.generate(
            prompt.copy(),
            output_tokens=tokens,
            metadata={
                "agent": self.name,
                "role": role,
                "task": trace.task_id,
                **self.request_metadata,
            },
        )

    @staticmethod
    def record_llm_result(trace: AgentRunResult, result: LLMResult) -> LLMResult:
        trace.llm_calls.append(result)
        return result

    def tool_call(self, trace: AgentRunResult, action: ToolAction):
        """Invoke a tool inline and record it (``yield from`` inside run())."""
        start = self.env.now
        result: ToolResult = yield from self.toolset.call(action)
        trace.tool_calls.append(
            ToolCallRecord(
                tool=result.tool,
                action=result.action,
                argument=result.argument,
                start=start,
                end=self.env.now,
                observation_tokens=result.observation_tokens,
                success=result.success,
                used_gpu=result.used_gpu,
            )
        )
        return result

    def tool_call_process(self, trace: AgentRunResult, action: ToolAction):
        """Run a tool call as a separate process (for concurrent tool use)."""
        return self.env.process(self.tool_call(trace, action))

    def overhead(self, trace: AgentRunResult, duration: Optional[float] = None):
        """Framework overhead (parsing, orchestration) between steps."""
        duration = duration if duration is not None else self.profile.iteration_overhead_s
        if duration > 0:
            yield self.env.timeout(duration)
            trace.other_time += duration

    # -- finalisation -------------------------------------------------------------
    def finalize(self, trace: AgentRunResult, oracle: TaskOracle, answer_candidates: int = 1) -> AgentRunResult:
        trace.end_time = self.env.now
        trace.solved = oracle.solved
        trace.answer_correct = oracle.judge_final_answer(answer_candidates)
        trace.score = oracle.score(trace.answer_correct)
        return trace

    # -- workflow entry point -------------------------------------------------------
    def run(self, task: Task):
        """Simulation process solving ``task``; returns an AgentRunResult."""
        raise NotImplementedError

    def run_process(self, task: Task):
        """Convenience wrapper: spawn :meth:`run` as a simulation process."""
        return self.env.process(self.run(task))
