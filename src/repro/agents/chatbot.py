"""Single-turn chatbot runner for the ShareGPT (non-agentic) baseline."""

from __future__ import annotations

from repro.agents.base import BaseAgent
from repro.agents.config import AgentCapabilities
from repro.llm.tokenizer import Prompt, SegmentKind
from repro.workloads.base import Task


class ChatbotAgent(BaseAgent):
    """Conventional LLM service: one prompt in, one response out, no tools.

    Used as the paper's single-turn inference baseline (ShareGPT workload) in
    the serving comparison (Fig. 7, Fig. 11) and the energy analysis
    (Table III).
    """

    name = "chatbot"
    capabilities = AgentCapabilities(reasoning=False)

    def run(self, task: Task):
        trace = self.new_trace(task)
        oracle = self.make_oracle(task)

        prompt = Prompt()
        if self.context_prefix:
            # Later session turn: the prompt is the accumulated conversation
            # followed by the fresh follow-up user span, so its token prefix
            # matches the previous turn's cached blocks exactly.
            prompt.extend(self.context_prefix)
            if self.followup_span is not None:
                prompt.append(self.followup_span)
        else:
            prompt.append(
                self.tokenizer.span(SegmentKind.USER, f"user:{task.task_id}", task.user_tokens)
            )
        output_tokens = int(task.metadata.get("output_tokens", 0)) or None
        yield from self.llm_call(trace, prompt, "answer", oracle, output_tokens=output_tokens)
        trace.iterations = 1
        trace.solved = True
        trace.end_time = self.env.now
        trace.answer_correct = True
        trace.score = 1.0
        return trace
