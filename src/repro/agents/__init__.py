"""AI agent workflows characterised by the paper (Table I).

Five agents cover the design space the paper studies -- CoT (static
reasoning), ReAct (tool use), Reflexion (reflection), LATS (tree search), and
LLMCompiler (structured planning) -- plus the single-turn chatbot runner used
for the ShareGPT baseline.
"""

from repro.agents.base import AgentRunResult, BaseAgent
from repro.agents.chatbot import ChatbotAgent
from repro.agents.config import AgentCapabilities, AgentConfig
from repro.agents.cot import CoTAgent
from repro.agents.lats import LATSAgent
from repro.agents.llmcompiler import LLMCompilerAgent
from repro.agents.react import ReActAgent
from repro.agents.reflexion import ReflexionAgent
from repro.agents.registry import (
    AGENT_CLASSES,
    PAPER_AGENTS,
    available_agents,
    create_agent,
    get_agent_class,
)

__all__ = [
    "AGENT_CLASSES",
    "AgentCapabilities",
    "AgentConfig",
    "AgentRunResult",
    "BaseAgent",
    "ChatbotAgent",
    "CoTAgent",
    "LATSAgent",
    "LLMCompilerAgent",
    "PAPER_AGENTS",
    "ReActAgent",
    "ReflexionAgent",
    "available_agents",
    "create_agent",
    "get_agent_class",
]
