"""Chain-of-Thought agent: single-call static reasoning baseline."""

from __future__ import annotations

from repro.agents.base import BaseAgent
from repro.agents.config import AgentCapabilities
from repro.workloads.base import Task


class CoTAgent(BaseAgent):
    """One LLM inference per request, no external tools (paper Fig. 3a).

    CoT is included as the static-reasoning baseline: all reasoning steps are
    produced inside a single long generation, so its cost profile is a single
    prefill plus a decode-dominated generation.
    """

    name = "cot"
    capabilities = AgentCapabilities(reasoning=True)

    def run(self, task: Task):
        trace = self.new_trace(task)
        oracle = self.make_oracle(task)
        prompt = self.base_prompt(task)

        yield from self.llm_call(trace, prompt, role="cot", oracle=oracle)
        trace.iterations = 1

        # All reasoning happens inside the single long generation: the model
        # gets a couple of internal attempts per required reasoning step (it
        # can restate and re-derive within the chain of thought), but it has
        # no way to retrieve external evidence.
        for _ in range(2 * task.solution_depth):
            oracle.attempt_step()
        yield from self.overhead(trace)
        return self.finalize(trace, oracle)
