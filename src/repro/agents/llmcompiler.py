"""LLMCompiler agent: structured DAG planning with streamed tool execution."""

from __future__ import annotations

from typing import List

from repro.agents.base import BaseAgent
from repro.agents.config import AgentCapabilities
from repro.workloads.base import Task


class LLMCompilerAgent(BaseAgent):
    """Plan-and-execute with asynchronous, overlapped tool calls (Fig. 3e).

    Each planning *wave* is one LLM call that emits a small DAG of tool tasks.
    As the plan for wave ``i+1`` is being generated, the tool tasks of wave
    ``i`` execute concurrently -- this pipelining is the source of the
    LLM/tool overlap slice the paper reports in Fig. 5 (about 18 % of total
    latency).  Independent tool tasks inside a wave also run in parallel.
    A final joiner call fuses the observations into the answer; if the task is
    not yet resolved the agent replans (up to ``config.replan_rounds`` waves).
    """

    name = "llmcompiler"
    capabilities = AgentCapabilities(
        reasoning=True, tool_use=True, structured_planning=True
    )

    def run(self, task: Task):
        trace = self.new_trace(task)
        oracle = self.make_oracle(task)
        prompt = self.base_prompt(task)
        action_stream = self.seed_stream.substream(f"compiler-actions/{task.task_id}")

        pending_tool_processes: List = []
        rounds = 0
        while rounds < self.config.replan_rounds and not oracle.solved:
            rounds += 1
            trace.iterations = rounds

            # Planner call for this wave; the previous wave's tool tasks keep
            # executing while the plan streams out (overlap).
            plan_event = self.start_llm_call(trace, prompt, "plan", oracle)
            wait_events = [plan_event] + pending_tool_processes
            results = yield self.env.all_of(wait_events)
            plan_result = results[0]
            self.record_llm_result(trace, plan_result)
            prompt.append(plan_result.output_span())
            for finished_tool in pending_tool_processes:
                prompt.append(finished_tool.value.observation_span)
            pending_tool_processes = []

            # The planner emits a small DAG of tool tasks; on benchmarks with
            # highly interdependent actions (WebShop) the DAG over-fetches,
            # which is modelled by planning more tasks than progress requires.
            tasks_this_wave = self.config.tasks_per_wave
            if self.workload.name == "webshop":
                tasks_this_wave += 1
            for _ in range(tasks_this_wave):
                action = self.workload.action_for(task, oracle.progress, action_stream)
                pending_tool_processes.append(self.tool_call_process(trace, action))
                outcome = oracle.attempt_step()
                if outcome.solved:
                    break
            yield from self.overhead(trace)

        # Drain the last wave of tool tasks, then join.
        if pending_tool_processes:
            results = yield self.env.all_of(pending_tool_processes)
            for index in sorted(results):
                prompt.append(results[index].observation_span)

        yield from self.llm_call(trace, prompt, "answer", oracle)
        return self.finalize(trace, oracle)
