"""Agent registry and factory."""

from __future__ import annotations

from typing import Dict, Optional, Type

from repro.agents.base import BaseAgent
from repro.agents.chatbot import ChatbotAgent
from repro.agents.config import AgentConfig
from repro.agents.cot import CoTAgent
from repro.agents.lats import LATSAgent
from repro.agents.llmcompiler import LLMCompilerAgent
from repro.agents.react import ReActAgent
from repro.agents.reflexion import ReflexionAgent
from repro.llm.client import LLMClient
from repro.sim import Environment
from repro.sim.distributions import RandomStream
from repro.tools.base import ToolSet
from repro.workloads.base import Workload

AGENT_CLASSES: Dict[str, Type[BaseAgent]] = {
    CoTAgent.name: CoTAgent,
    ReActAgent.name: ReActAgent,
    ReflexionAgent.name: ReflexionAgent,
    LATSAgent.name: LATSAgent,
    LLMCompilerAgent.name: LLMCompilerAgent,
    ChatbotAgent.name: ChatbotAgent,
}

#: the five agent workflows characterised by the paper (Table I order).
PAPER_AGENTS = ("cot", "react", "reflexion", "lats", "llmcompiler")


def available_agents() -> list[str]:
    return sorted(AGENT_CLASSES)


def get_agent_class(name: str) -> Type[BaseAgent]:
    key = name.lower()
    if key not in AGENT_CLASSES:
        raise KeyError(f"unknown agent {name!r}; known: {available_agents()}")
    return AGENT_CLASSES[key]


def create_agent(
    name: str,
    *,
    env: Environment,
    client: LLMClient,
    workload: Workload,
    toolset: Optional[ToolSet] = None,
    config: Optional[AgentConfig] = None,
    seed_stream: Optional[RandomStream] = None,
) -> BaseAgent:
    """Instantiate an agent workflow bound to a workload and serving client."""
    agent_class = get_agent_class(name)
    return agent_class(
        env=env,
        client=client,
        workload=workload,
        toolset=toolset,
        config=config,
        seed_stream=seed_stream,
    )
