"""Agent configuration and capability descriptors."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict


@dataclass(frozen=True)
class AgentCapabilities:
    """Capability matrix row (paper Table I)."""

    reasoning: bool = True
    tool_use: bool = False
    reflection: bool = False
    tree_search: bool = False
    structured_planning: bool = False

    def as_row(self) -> Dict[str, str]:
        """O/X row formatting used by the Table I reproduction."""
        def mark(flag: bool) -> str:
            return "O" if flag else "X"

        return {
            "Reasoning": mark(self.reasoning),
            "Tool Use": mark(self.tool_use),
            "Reflection": mark(self.reflection),
            "Tree Search": mark(self.tree_search),
            "Structured Planning": mark(self.structured_planning),
        }


@dataclass(frozen=True)
class AgentConfig:
    """Test-time scaling and prompting knobs shared by all agents.

    The fields map onto the design-space dimensions the paper sweeps:

    * ``max_iterations`` -- the per-trial reasoning/acting budget (Fig. 14).
    * ``num_few_shot`` -- in-context examples in the prompt (Fig. 15).
    * ``max_trials`` -- Reflexion's sequential-scaling knob: how many times the
      agent may retry the task with accumulated reflections (Fig. 16a).
    * ``max_expansions`` -- LATS's sequential-scaling knob: tree-search
      iterations (Fig. 16b).
    * ``num_children`` -- LATS's parallel-scaling knob: children sampled per
      expansion, each a concurrent LLM call (Fig. 16c).
    * ``replan_rounds`` / ``tasks_per_wave`` -- LLMCompiler plan/execute rounds
      and the number of tool calls emitted per planner wave.
    """

    max_iterations: int = 10
    num_few_shot: int = 2
    max_trials: int = 3
    num_children: int = 5
    max_expansions: int = 10
    max_tree_depth: int = 8
    replan_rounds: int = 3
    tasks_per_wave: int = 3
    max_output_tokens: int = 2048

    def __post_init__(self) -> None:
        for field_name in (
            "max_iterations",
            "max_trials",
            "num_children",
            "max_expansions",
            "max_tree_depth",
            "replan_rounds",
            "tasks_per_wave",
            "max_output_tokens",
        ):
            if getattr(self, field_name) < 1:
                raise ValueError(f"{field_name} must be >= 1")
        if self.num_few_shot < 0:
            raise ValueError("num_few_shot must be >= 0")

    def with_overrides(self, **overrides: Any) -> "AgentConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)

    def describe(self) -> str:
        return (
            f"iters={self.max_iterations} fewshot={self.num_few_shot} "
            f"trials={self.max_trials} children={self.num_children} "
            f"expansions={self.max_expansions}"
        )
