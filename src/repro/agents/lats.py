"""LATS agent: Language Agent Tree Search (Monte-Carlo tree search over
reasoning/acting trajectories), with concurrent LLM and tool execution.

The paper's methodology section notes that the authors optimised the original
LATS implementation to issue the per-child LLM calls and the per-child tool
invocations concurrently; this reproduction does the same (children are
parallel engine requests, tools run as parallel processes), which is what
makes LATS's *parallel scaling* (more children per expansion) reduce latency
while increasing accuracy (Fig. 16c).
"""

from __future__ import annotations

from typing import List

from repro.agents.base import BaseAgent
from repro.agents.config import AgentCapabilities
from repro.workloads.base import Task


class LATSAgent(BaseAgent):
    """Tree search with expansion, evaluation, and reflection (Fig. 3d)."""

    name = "lats"
    capabilities = AgentCapabilities(
        reasoning=True, tool_use=True, reflection=True, tree_search=True
    )

    #: verification of a solved trajectory becomes easier the more candidate
    #: branches each expansion compares; it is rare enough that LATS keeps
    #: exploring well past the first complete trajectory, which is what makes
    #: it the most LLM-call-hungry agent in Fig. 4.
    VERIFICATION_BASE = 0.02
    VERIFICATION_GAIN = 0.16

    def run(self, task: Task):
        trace = self.new_trace(task)
        oracle = self.make_oracle(task)
        prompt = self.base_prompt(task)
        action_stream = self.seed_stream.substream(f"lats-actions/{task.task_id}")
        verify_stream = self.seed_stream.substream(f"lats-verify/{task.task_id}")

        num_children = self.config.num_children
        verified = False
        expansions = 0

        while expansions < self.config.max_expansions:
            expansions += 1
            trace.iterations = expansions

            # --- expansion: sample N children with concurrent LLM calls -----
            child_events = [
                self.start_llm_call(trace, prompt, "thought", oracle)
                for _ in range(num_children)
            ]
            child_results = yield self.env.all_of(child_events)
            ordered_children = [child_results[i] for i in sorted(child_results)]
            for result in ordered_children:
                self.record_llm_result(trace, result)

            # --- act: execute each child's tool action concurrently ---------
            tool_processes = []
            for _ in ordered_children:
                action = self.workload.action_for(task, oracle.progress, action_stream)
                tool_processes.append(self.tool_call_process(trace, action))
            tool_results = yield self.env.all_of(tool_processes)
            ordered_tools = [tool_results[i] for i in sorted(tool_results)]

            # --- evaluate: one value call scoring the children --------------
            evaluation = yield from self.llm_call(trace, prompt, "reflection", oracle)

            # --- backpropagate: extend the best path ------------------------
            oracle.attempt_step(num_candidates=num_children)
            best_index = 0
            prompt = prompt.copy()
            prompt.append(ordered_children[best_index].output_span())
            prompt.append(ordered_tools[best_index].observation_span)
            prompt.append(evaluation.output_span())
            yield from self.overhead(trace)

            # The search keeps exploring until a complete trajectory is both
            # found and verified as terminal by the value function (or the
            # expansion budget runs out).  Wider expansions give the value
            # function better comparisons, so verification lands sooner.
            verification_probability = self.VERIFICATION_BASE + self.VERIFICATION_GAIN * (
                oracle.step_probability(num_candidates=num_children)
            )
            if oracle.solved and verify_stream.random() < verification_probability:
                verified = True
                break

        # Final answer from the best terminal trajectory.  The answer quality
        # benefits from every candidate path the search has explored.
        yield from self.llm_call(trace, prompt, "answer", oracle)
        explored_paths = max(1, expansions * num_children)
        answer_candidates = min(explored_paths, 24)
        trace.metadata["expansions"] = expansions
        trace.metadata["verified"] = verified
        return self.finalize(trace, oracle, answer_candidates=answer_candidates)
