"""ReAct agent: interleaved reasoning and acting (Yao et al., ICLR'23)."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.agents.base import AgentRunResult, BaseAgent
from repro.agents.config import AgentCapabilities
from repro.llm.tokenizer import Prompt
from repro.oracle.behavior import TaskOracle
from repro.workloads.base import Task


class ReActAgent(BaseAgent):
    """Thought -> action -> observation loop (paper Fig. 3b).

    Every iteration issues one LLM call (the thought + structured action) and,
    unless the agent decides to answer, one tool call whose observation is
    appended to the context for the next iteration.  The loop ends when the
    task is solved (the next call emits the final answer) or the iteration
    budget is exhausted.
    """

    name = "react"
    capabilities = AgentCapabilities(reasoning=True, tool_use=True)

    def run(self, task: Task):
        trace = self.new_trace(task)
        oracle = self.make_oracle(task)
        prompt = self.base_prompt(task)

        prompt, _finished = yield from self.react_loop(
            trace, task, oracle, prompt, self.config.max_iterations
        )
        return self.finalize(trace, oracle)

    # The loop is shared with Reflexion (each Reflexion trial is a ReAct episode).
    def react_loop(
        self,
        trace: AgentRunResult,
        task: Task,
        oracle: TaskOracle,
        prompt: Prompt,
        max_iterations: int,
    ):
        """Run one reasoning/acting episode; returns (prompt, answered)."""
        action_stream = self.seed_stream.substream(f"actions/{task.task_id}/{trace.trials}")
        answered = False
        for iteration in range(max_iterations):
            trace.iterations += 1
            if oracle.solved:
                # The task is worked out: this call produces the final answer.
                result = yield from self.llm_call(trace, prompt, "answer", oracle)
                prompt.append(result.output_span())
                answered = True
                break

            result = yield from self.llm_call(trace, prompt, "thought", oracle)
            prompt.append(result.output_span())

            action = self.workload.action_for(task, oracle.progress, action_stream)
            tool_result = yield from self.tool_call(trace, action)
            prompt.append(tool_result.observation_span)

            oracle.attempt_step()
            yield from self.overhead(trace)

        if not answered:
            # Budget exhausted (or solved on the very last iteration): the
            # agent is forced to answer with whatever it has.
            result = yield from self.llm_call(trace, prompt, "answer", oracle)
            prompt.append(result.output_span())
            answered = True
        return prompt, answered
