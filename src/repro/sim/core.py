"""Core discrete-event simulation primitives.

The design follows the classic event-loop architecture:

* :class:`Environment` owns the simulation clock and a priority queue of
  scheduled events.
* :class:`Event` is the base synchronisation primitive.  Events can be
  *succeeded* (optionally with a value) or *failed* (with an exception), and
  callbacks registered on them run when they fire.
* :class:`Process` wraps a generator.  The generator yields events; when a
  yielded event fires the process is resumed with the event's value (or the
  exception is thrown into it).
* :class:`Timeout` is an event that fires after a fixed simulated delay.

Only the features the reproduction needs are implemented, which keeps the
kernel small and easy to reason about, but the semantics intentionally mirror
SimPy so the agent/serving code reads like ordinary SimPy programs.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


_PENDING = object()


class Event:
    """A one-shot synchronisation primitive.

    An event starts *pending*; it can be triggered exactly once, either with
    :meth:`succeed` or :meth:`fail`.  Processes wait on events by yielding
    them.

    Events are the hottest allocation in the simulator, so the class is
    slotted and callback lists are recycled through the environment's pool
    (a processed event hands its emptied list back; the next event reuses
    it instead of allocating).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_scheduled", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        pool = env._callback_pool
        self.callbacks: list[Callable[["Event"], None]] = pool.pop() if pool else []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._scheduled = False
        self._defused = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """Whether the event has been given a value (it may not have fired yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already been executed."""
        return self.callbacks is None  # type: ignore[return-value]

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event has not been triggered yet")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        if self.triggered:
            raise SimulationError("event already triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event (callback helper)."""
        if event.ok:
            self.succeed(event.value)
        else:
            self.fail(event.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at t={self.env.now:.6f}>"


class Timeout(Event):
    """Event that fires automatically after ``delay`` simulated seconds."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)


class _Start:
    """Minimal one-shot stub that kicks off a freshly created process.

    Replaces the old ``Initialize`` Event subclass on the hot path: it only
    carries the five attributes :meth:`Environment.step` touches, with no
    environment back-reference or pending-value machinery.
    """

    __slots__ = ("callbacks", "_ok", "_value", "_scheduled", "_defused")

    def __init__(self, env: "Environment", process: "Process"):
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        self._scheduled = False
        self._defused = False
        env._schedule(self)


class Process(Event):
    """Wraps a generator so it can be driven by the event loop.

    A ``Process`` is itself an event that fires when the generator finishes
    (with its return value) or raises (with the exception), so processes can
    wait for each other simply by yielding them.
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "send"):
            raise SimulationError("Process requires a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        _Start(env, self)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current sim time."""
        if self.triggered:
            return
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks.append(self._resume)
        self.env._schedule(event, priority=0)
        # Detach from whatever the process was waiting on.
        if self._target is not None and not self._target.processed:
            try:
                self._target.callbacks.remove(self._resume)
            except (ValueError, AttributeError):
                pass
            self._target = None

    # -- driving ----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event._defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as exc:
                self._ok = True
                self._value = exc.value
                self.env._schedule(self)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                self.env._schedule(self)
                break

            if not isinstance(next_event, Event):
                raise SimulationError(
                    f"process yielded a non-event: {next_event!r}"
                )
            if next_event.processed:
                # Already fired: resume immediately with its value.
                event = next_event
                continue
            next_event.callbacks.append(self._resume)
            self._target = next_event
            break
        self.env._active_process = None


class ConditionEvent(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("_events", "_pending")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._pending = 0
        for event in self._events:
            if event.processed:
                self._check(event)
            else:
                self._pending += 1
                event.callbacks.append(self._check)
        if not self.triggered and self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - overridden
        raise NotImplementedError

    def _collect(self) -> dict:
        return {
            index: event.value
            for index, event in enumerate(self._events)
            if event.triggered and event.ok
        }

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event.value)
            return
        if self._satisfied():
            self.succeed(self._collect())


class AllOf(ConditionEvent):
    """Fires when all child events have fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return all(event.triggered and event.ok for event in self._events)


class AnyOf(ConditionEvent):
    """Fires as soon as any child event has fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return any(event.triggered and event.ok for event in self._events)


class Environment:
    """Simulation environment: clock plus event queue."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = itertools.count()
        self._active_process: Optional[Process] = None
        self._events_processed = 0
        self._callback_pool: list[list] = []
        self._horizon = float("inf")

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total events popped and executed by :meth:`step` so far."""
        return self._events_processed

    @property
    def run_horizon(self) -> float:
        """The numeric ``until`` of the active :meth:`run` call (``inf`` otherwise).

        Lets cooperating components (e.g. the decode fast-forward planner)
        avoid scheduling internal state changes past the point where the
        caller will observe the simulation.
        """
        return self._horizon

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- factories ----------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def timeout_at(self, when: float, value: Any = None) -> Event:
        """Event that fires at absolute simulated time ``when``.

        Equivalent to ``timeout(when - now)`` but schedules at the exact
        absolute time, avoiding the float round-trip of ``now + (when - now)``
        — required when a precomputed sequence of absolute times must be
        reproduced bit-for-bit.
        """
        if when < self._now:
            raise SimulationError(f"timeout_at lies in the past: {when} < {self._now}")
        event = Event(self)
        event._ok = True
        event._value = value
        event._scheduled = True
        heapq.heappush(self._queue, (when, 1, next(self._eid), event))
        return event

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling -----------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = 1) -> None:
        if event._scheduled:
            return
        event._scheduled = True
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._eid), event)
        )

    def peek(self) -> float:
        """Time of the next scheduled event (``inf`` when the queue is empty)."""
        return self._queue[0][0] if self._queue else float("inf")

    def pending_events(self) -> list[Event]:
        """The currently scheduled events (unordered); for liveness checks."""
        return [event for _, _, _, event in self._queue]

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._queue:
            raise SimulationError("no scheduled events")
        when, _priority, _eid, event = heapq.heappop(self._queue)
        self._now = when
        self._events_processed += 1
        callbacks, event.callbacks = event.callbacks, None  # type: ignore[assignment]
        for callback in callbacks:
            callback(event)
        callbacks.clear()
        self._callback_pool.append(callbacks)
        if not event._ok and not event._defused:
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), a number
        (run until that simulated time), or an :class:`Event` (run until it
        fires, returning its value).
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError("until lies in the past")

        prev_horizon = self._horizon
        self._horizon = stop_time
        try:
            while self._queue:
                if stop_event is not None and stop_event.processed:
                    break
                if self.peek() > stop_time:
                    self._now = stop_time
                    return None
                self.step()
        finally:
            self._horizon = prev_horizon

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError("run() finished before the until-event fired")
            if not stop_event.ok:
                raise stop_event.value
            return stop_event.value
        if stop_time != float("inf"):
            # The queue drained before the numeric horizon: the caller asked
            # for time ``until``, so the clock lands exactly there.
            self._now = stop_time
        return None
