"""Discrete-event simulation kernel used by every other subsystem.

The kernel is a small, dependency-free analogue of SimPy: simulation
*processes* are Python generators that yield :class:`Event` objects
(timeouts, other processes, manual events, resource requests) and are resumed
by the :class:`Environment` when those events fire.  All timing in the
reproduction -- LLM engine steps, tool latencies, request arrivals -- is
expressed in simulated seconds on this kernel, so experiments that would take
hours of GPU time in the paper run in milliseconds of wall-clock time here.
"""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.resources import Resource, Store
from repro.sim.distributions import (
    DeterministicArrivals,
    ExponentialSampler,
    LogNormalSampler,
    PoissonArrivals,
    RandomStream,
    UniformSampler,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "DeterministicArrivals",
    "Environment",
    "Event",
    "ExponentialSampler",
    "Interrupt",
    "LogNormalSampler",
    "PoissonArrivals",
    "Process",
    "RandomStream",
    "Resource",
    "SimulationError",
    "Store",
    "Timeout",
    "UniformSampler",
]
