"""Seeded random streams and the samplers used throughout the reproduction.

Every stochastic quantity in the simulator (tool latencies, task difficulty,
request arrivals, output lengths) is drawn from a named :class:`RandomStream`
derived from a single experiment seed, so every experiment is exactly
reproducible and independent sub-streams do not perturb one another when the
workload mix changes.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np


def _derive_seed(base_seed: int, name: str) -> int:
    """Derive a 64-bit sub-seed from ``base_seed`` and a stream name."""
    digest = hashlib.sha256(f"{base_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RandomStream:
    """A named, seeded random stream backed by ``numpy.random.Generator``."""

    def __init__(self, seed: int, name: str = "root"):
        self.seed = seed
        self.name = name
        self._rng = np.random.default_rng(_derive_seed(seed, name))

    def substream(self, name: str) -> "RandomStream":
        """Create an independent child stream; deterministic given the name."""
        return RandomStream(self.seed, f"{self.name}/{name}")

    # Thin wrappers so callers never touch numpy directly.
    def random(self) -> float:
        return float(self._rng.random())

    def uniform(self, low: float, high: float) -> float:
        return float(self._rng.uniform(low, high))

    def integers(self, low: int, high: int) -> int:
        """Integer in ``[low, high)``."""
        return int(self._rng.integers(low, high))

    def normal(self, mean: float, std: float) -> float:
        return float(self._rng.normal(mean, std))

    def lognormal(self, mean: float, sigma: float) -> float:
        return float(self._rng.lognormal(mean, sigma))

    def exponential(self, scale: float) -> float:
        return float(self._rng.exponential(scale))

    def poisson(self, lam: float) -> int:
        return int(self._rng.poisson(lam))

    def choice(self, options: Sequence, p: Sequence[float] | None = None):
        index = int(self._rng.choice(len(options), p=p))
        return options[index]

    def shuffle(self, items: list) -> list:
        order = self._rng.permutation(len(items))
        return [items[int(i)] for i in order]


@dataclass(frozen=True)
class UniformSampler:
    """Uniform sampler on ``[low, high]``."""

    low: float
    high: float

    def sample(self, stream: RandomStream) -> float:
        return stream.uniform(self.low, self.high)

    @property
    def mean(self) -> float:
        return 0.5 * (self.low + self.high)


@dataclass(frozen=True)
class ExponentialSampler:
    """Exponential sampler with the given mean."""

    mean_value: float

    def sample(self, stream: RandomStream) -> float:
        return stream.exponential(self.mean_value)

    @property
    def mean(self) -> float:
        return self.mean_value


@dataclass(frozen=True)
class LogNormalSampler:
    """Log-normal sampler parameterised by its *arithmetic* mean and coefficient of variation.

    Tool latencies and output lengths in the paper are right-skewed; a
    log-normal parameterised by (mean, cv) keeps calibration constants
    readable (mean latency 1.2 s, cv 0.4) while producing the heavy tails
    that drive the paper's tail-latency findings.
    """

    mean_value: float
    cv: float = 0.3

    def _params(self) -> tuple[float, float]:
        sigma2 = math.log(1.0 + self.cv**2)
        mu = math.log(self.mean_value) - sigma2 / 2.0
        return mu, math.sqrt(sigma2)

    def sample(self, stream: RandomStream) -> float:
        if self.mean_value <= 0:
            return 0.0
        mu, sigma = self._params()
        return stream.lognormal(mu, sigma)

    @property
    def mean(self) -> float:
        return self.mean_value


class PoissonArrivals:
    """Generator of Poisson arrival times at ``rate`` queries per second."""

    def __init__(self, rate_qps: float, stream: RandomStream):
        if rate_qps <= 0:
            raise ValueError("arrival rate must be positive")
        self.rate_qps = rate_qps
        self.stream = stream

    def interarrival_times(self, count: int) -> Iterator[float]:
        """Yield ``count`` exponential inter-arrival gaps."""
        for _ in range(count):
            yield self.stream.exponential(1.0 / self.rate_qps)

    def arrival_times(self, count: int, start: float = 0.0) -> list[float]:
        """Absolute arrival times for ``count`` requests starting at ``start``."""
        times = []
        now = start
        for gap in self.interarrival_times(count):
            now += gap
            times.append(now)
        return times


class DeterministicArrivals:
    """Evenly spaced arrivals (used by closed-loop / sequential experiments)."""

    def __init__(self, rate_qps: float):
        if rate_qps <= 0:
            raise ValueError("arrival rate must be positive")
        self.rate_qps = rate_qps

    def arrival_times(self, count: int, start: float = 0.0) -> list[float]:
        gap = 1.0 / self.rate_qps
        return [start + gap * (i + 1) for i in range(count)]
