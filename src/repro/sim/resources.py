"""Shared resources for simulation processes.

Two primitives cover everything the reproduction needs:

* :class:`Resource` -- a counted resource with FIFO queueing (used to model
  bounded worker pools and tool-concurrency limits).
* :class:`Store` -- an unbounded FIFO queue of items with blocking ``get``
  (used for request queues between the serving front-end and workers).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List

from repro.sim.core import Environment, Event, SimulationError


class Request(Event):
    """Pending acquisition of a :class:`Resource` slot."""

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.resource.release(self)


class Resource:
    """A resource with ``capacity`` slots and FIFO granting."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.users: List[Request] = []
        self.queue: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    def request(self) -> Request:
        """Return an event that fires when a slot is granted."""
        req = Request(self)
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.succeed()
        else:
            self.queue.append(req)
        return req

    def release(self, request: Request) -> None:
        """Release a previously granted slot (no-op for queued requests)."""
        if request in self.users:
            self.users.remove(request)
        elif request in self.queue:
            self.queue.remove(request)
            return
        while self.queue and len(self.users) < self.capacity:
            nxt = self.queue.popleft()
            self.users.append(nxt)
            nxt.succeed()


class Store:
    """Unbounded FIFO store with blocking ``get``."""

    def __init__(self, env: Environment):
        self.env = env
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> None:
        """Add ``item``; wakes the oldest waiting getter, if any."""
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self.items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next available item."""
        event = Event(self.env)
        if self.items:
            event.succeed(self.items.popleft())
        else:
            self._getters.append(event)
        return event
