"""Interval arithmetic helpers for latency-breakdown analysis.

The paper's Figure 5 splits a request's wall-clock time into LLM time, tool
time, LLM+tool overlap (pipelined execution in LLMCompiler), and "other"
framework time.  With concurrent LLM and tool calls the only robust way to do
that is set arithmetic on the calls' time intervals, implemented here.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

Interval = Tuple[float, float]


def merge_intervals(intervals: Iterable[Interval]) -> List[Interval]:
    """Union of intervals as a sorted list of disjoint intervals."""
    cleaned = sorted((min(a, b), max(a, b)) for a, b in intervals if a != b)
    merged: List[Interval] = []
    for start, end in cleaned:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def total_length(intervals: Iterable[Interval]) -> float:
    """Total covered length of a union of intervals."""
    return sum(end - start for start, end in merge_intervals(intervals))


def intersect(a: Sequence[Interval], b: Sequence[Interval]) -> List[Interval]:
    """Intersection of two interval unions."""
    merged_a = merge_intervals(a)
    merged_b = merge_intervals(b)
    result: List[Interval] = []
    i = j = 0
    while i < len(merged_a) and j < len(merged_b):
        start = max(merged_a[i][0], merged_b[j][0])
        end = min(merged_a[i][1], merged_b[j][1])
        if start < end:
            result.append((start, end))
        if merged_a[i][1] < merged_b[j][1]:
            i += 1
        else:
            j += 1
    return result


def clip(intervals: Iterable[Interval], window: Interval) -> List[Interval]:
    """Clip an interval union to ``window``."""
    low, high = window
    clipped = [
        (max(start, low), min(end, high))
        for start, end in intervals
        if end > low and start < high
    ]
    return merge_intervals(clipped)
