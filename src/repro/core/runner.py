"""Single-request characterization runner (paper Section IV-A/IV-B setup).

The paper first characterises agents while serving one request at a time: the
runner reproduces that setup by running the sampled tasks sequentially
through the chosen agent and recording, for every request, the agent trace
plus the engine-side observations over the request's time window (GPU runtime
breakdown, KV-cache memory, energy).

:class:`SingleRequestRunner` is a compatibility shim over the unified
experiment API (:mod:`repro.api`): it translates its arguments into an
``ExperimentSpec`` with a ``single`` arrival process and delegates assembly
and the measurement loop to ``run_experiment``, reproducing the historical
results bit-for-bit at the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.agents import AgentConfig, AgentRunResult
from repro.core.metrics import (
    GpuRuntimeBreakdown,
    LatencyBreakdown,
    LatencyStats,
    TokenBreakdown,
    mean,
)
from repro.llm.energy import PowerState
from repro.workloads.base import Task


@dataclass(frozen=True)
class RequestObservation:
    """One request's agent trace plus engine-side measurements."""

    result: AgentRunResult
    energy_wh: float
    energy_joules_by_state: Dict[PowerState, float]
    gpu: GpuRuntimeBreakdown
    kv_average_bytes: float
    kv_max_bytes: float

    @property
    def latency(self) -> float:
        return self.result.e2e_latency

    @property
    def latency_breakdown(self) -> LatencyBreakdown:
        return LatencyBreakdown.from_result(self.result)

    @property
    def token_breakdown(self) -> TokenBreakdown:
        return TokenBreakdown.from_result(self.result)


@dataclass
class CharacterizationResult:
    """Aggregate of a single-request characterization experiment."""

    agent: str
    benchmark: str
    model: str
    config: AgentConfig
    prefix_caching: bool
    observations: List[RequestObservation] = field(default_factory=list)

    # -- aggregates -----------------------------------------------------------
    @property
    def num_requests(self) -> int:
        return len(self.observations)

    @property
    def latencies(self) -> List[float]:
        return [obs.latency for obs in self.observations]

    @property
    def latency_stats(self) -> LatencyStats:
        return LatencyStats.from_values(self.latencies)

    @property
    def mean_latency(self) -> float:
        return mean(self.latencies)

    @property
    def accuracy(self) -> float:
        if not self.observations:
            return 0.0
        return mean([1.0 if obs.result.answer_correct else 0.0 for obs in self.observations])

    @property
    def mean_score(self) -> float:
        if not self.observations:
            return 0.0
        return mean([obs.result.score for obs in self.observations])

    @property
    def mean_llm_calls(self) -> float:
        return mean([obs.result.num_llm_calls for obs in self.observations])

    @property
    def mean_tool_calls(self) -> float:
        return mean([obs.result.num_tool_calls for obs in self.observations])

    @property
    def mean_energy_wh(self) -> float:
        return mean([obs.energy_wh for obs in self.observations])

    @property
    def mean_total_tokens(self) -> float:
        return mean([obs.result.total_tokens for obs in self.observations])

    @property
    def mean_prefill_time(self) -> float:
        return mean(
            [sum(r.prefill_time for r in obs.result.llm_calls) for obs in self.observations]
        )

    @property
    def mean_decode_time(self) -> float:
        return mean(
            [sum(r.decode_time for r in obs.result.llm_calls) for obs in self.observations]
        )

    @property
    def mean_llm_inference_latency(self) -> float:
        """Average summed LLM-call latency per request (paper Fig. 9's metric)."""
        return mean(
            [sum(r.e2e_latency for r in obs.result.llm_calls) for obs in self.observations]
        )

    @property
    def mean_kv_bytes(self) -> float:
        return mean([obs.kv_average_bytes for obs in self.observations])

    @property
    def max_kv_bytes(self) -> float:
        if not self.observations:
            return 0.0
        return max(obs.kv_max_bytes for obs in self.observations)

    def latency_breakdown(self) -> LatencyBreakdown:
        return LatencyBreakdown.average(obs.latency_breakdown for obs in self.observations)

    def token_breakdown(self) -> TokenBreakdown:
        return TokenBreakdown.average(obs.token_breakdown for obs in self.observations)

    def gpu_breakdown(self) -> GpuRuntimeBreakdown:
        return GpuRuntimeBreakdown.average(obs.gpu for obs in self.observations)


class SingleRequestRunner:
    """Runs (agent, benchmark, config) experiments one request at a time.

    Compatibility shim over :func:`repro.api.run_experiment`.
    """

    def __init__(
        self,
        model: str = "8b",
        enable_prefix_caching: bool = True,
        seed: int = 0,
        max_decode_chunk: int = 1,
    ):
        self.model_name = model
        self.enable_prefix_caching = enable_prefix_caching
        self.seed = seed
        self.max_decode_chunk = max_decode_chunk

    # -- experiment -----------------------------------------------------------------
    def run(
        self,
        agent_name: str,
        benchmark: str,
        config: Optional[AgentConfig] = None,
        num_tasks: int = 20,
        tasks: Optional[List[Task]] = None,
    ) -> CharacterizationResult:
        """Characterise ``agent_name`` on ``benchmark`` over ``num_tasks`` requests."""
        from repro.api.runners import run_experiment
        from repro.api.spec import ArrivalSpec, ExperimentSpec

        spec = ExperimentSpec(
            agent=agent_name,
            workload=benchmark,
            model=self.model_name,
            enable_prefix_caching=self.enable_prefix_caching,
            agent_config=config or AgentConfig(),
            arrival=ArrivalSpec(process="single", num_requests=num_tasks),
            seed=self.seed,
            max_decode_chunk=self.max_decode_chunk,
        )
        return run_experiment(spec, tasks=tasks).characterization
