"""Accuracy-cost trade-off analysis (paper Section V, Fig. 13-16).

A *design point* is one agent configuration evaluated on one benchmark:
its accuracy, its average end-to-end latency (the paper's cost proxy), and
auxiliary costs (tokens, energy).  This module provides cost-efficiency
(accuracy per unit latency), Pareto-frontier extraction, and the selection of
the best-accuracy and best-efficiency points the paper marks in its figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated agent configuration."""

    label: str
    agent: str
    benchmark: str
    accuracy: float
    latency_s: float
    config: Dict[str, object] = field(default_factory=dict)
    total_tokens: float = 0.0
    energy_wh: float = 0.0
    p95_latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError("latency must be non-negative")
        if not 0.0 <= self.accuracy <= 1.0:
            raise ValueError("accuracy must be within [0, 1]")

    @property
    def cost_efficiency(self) -> float:
        """Accuracy per second of end-to-end latency (paper Fig. 13b)."""
        if self.latency_s <= 0:
            return 0.0
        return self.accuracy / self.latency_s

    def efficiency_against(self, cost: float) -> float:
        """Accuracy per unit of an alternative cost metric (tokens, Wh, ...)."""
        if cost <= 0:
            return 0.0
        return self.accuracy / cost


def normalized_efficiency(points: Sequence[DesignPoint]) -> Dict[str, float]:
    """Cost-efficiency of each point normalised to the best point (max = 1.0)."""
    if not points:
        return {}
    efficiencies = {point.label: point.cost_efficiency for point in points}
    best = max(efficiencies.values())
    if best <= 0:
        return {label: 0.0 for label in efficiencies}
    return {label: value / best for label, value in efficiencies.items()}


def pareto_frontier(points: Iterable[DesignPoint]) -> List[DesignPoint]:
    """Points not dominated in (higher accuracy, lower latency)."""
    candidates = sorted(points, key=lambda p: (p.latency_s, -p.accuracy))
    frontier: List[DesignPoint] = []
    best_accuracy = -1.0
    for point in candidates:
        if point.accuracy > best_accuracy:
            frontier.append(point)
            best_accuracy = point.accuracy
    return frontier


def is_dominated(point: DesignPoint, others: Iterable[DesignPoint]) -> bool:
    """Whether another point has >= accuracy and <= latency (strictly better in one)."""
    for other in others:
        if other is point:
            continue
        if (
            other.accuracy >= point.accuracy
            and other.latency_s <= point.latency_s
            and (other.accuracy > point.accuracy or other.latency_s < point.latency_s)
        ):
            return True
    return False


def best_accuracy_point(points: Sequence[DesignPoint]) -> Optional[DesignPoint]:
    """The red-diamond marker of Fig. 14/15: the highest-accuracy configuration."""
    if not points:
        return None
    return max(points, key=lambda p: (p.accuracy, -p.latency_s))


def best_efficiency_point(points: Sequence[DesignPoint]) -> Optional[DesignPoint]:
    """The blue-diamond marker of Fig. 14/15: the best accuracy/latency ratio."""
    if not points:
        return None
    return max(points, key=lambda p: p.cost_efficiency)


def diminishing_returns(points: Sequence[DesignPoint]) -> List[float]:
    """Marginal accuracy gain per additional second along increasing latency.

    The paper's central claim is that this sequence decays rapidly; the bench
    for Fig. 16 asserts exactly that.
    """
    ordered = sorted(points, key=lambda p: p.latency_s)
    marginals: List[float] = []
    for previous, current in zip(ordered, ordered[1:]):
        extra_latency = current.latency_s - previous.latency_s
        extra_accuracy = current.accuracy - previous.accuracy
        if extra_latency <= 0:
            marginals.append(0.0)
        else:
            marginals.append(extra_accuracy / extra_latency)
    return marginals
