"""Datacenter-wide power and energy projection (paper Section VI, Table IV).

Given per-query GPU energy from the serving simulator, these helpers perform
the paper's arithmetic: daily energy at a given traffic level, the sustained
power draw needed to serve it, and comparisons against reference power scales
(hyperscale datacenters, announced AI facilities, the US grid).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

SECONDS_PER_DAY = 86_400.0
HOURS_PER_DAY = 24.0

#: Traffic scenarios used by the paper.
CHATGPT_QUERIES_PER_DAY = 71.4e6       # conservative DAU estimate, 1 query/user
GOOGLE_QUERIES_PER_DAY = 13.7e9        # Google search volume

#: Reference power scales for perspective (watts).
REFERENCE_POWER_W = {
    "hyperscale_datacenter_low": 10e6,
    "hyperscale_datacenter_high": 100e6,
    "xai_colossus": 150e6,
    "meta_hyperion": 5e9,
    "us_grid_average_load": 476.9e9,
    "seattle_daily_energy_gwh": 24.8,   # GWh/day, used for the energy comparison
}


@dataclass(frozen=True)
class PowerProjection:
    """Sustained power needed to serve a traffic level with a given per-query energy."""

    label: str
    energy_wh_per_query: float
    queries_per_day: float

    @property
    def daily_energy_wh(self) -> float:
        return self.energy_wh_per_query * self.queries_per_day

    @property
    def daily_energy_gwh(self) -> float:
        return self.daily_energy_wh / 1e9

    @property
    def power_watts(self) -> float:
        """P = (Wh/query) * (queries/day) / (24 h)."""
        return self.daily_energy_wh / HOURS_PER_DAY

    @property
    def power_megawatts(self) -> float:
        return self.power_watts / 1e6

    @property
    def power_gigawatts(self) -> float:
        return self.power_watts / 1e9

    def relative_to(self, reference_watts: float) -> float:
        if reference_watts <= 0:
            raise ValueError("reference power must be positive")
        return self.power_watts / reference_watts


def project_power(
    label: str, energy_wh_per_query: float, queries_per_day: float
) -> PowerProjection:
    if energy_wh_per_query < 0 or queries_per_day < 0:
        raise ValueError("energy and traffic must be non-negative")
    return PowerProjection(
        label=label,
        energy_wh_per_query=energy_wh_per_query,
        queries_per_day=queries_per_day,
    )


def project_scenarios(
    label: str, energy_wh_per_query: float, scenarios: Dict[str, float] | None = None
) -> Dict[str, PowerProjection]:
    """Project a per-query energy across the paper's traffic scenarios."""
    scenarios = scenarios or {
        "chatgpt_71.4M_per_day": CHATGPT_QUERIES_PER_DAY,
        "google_13.7B_per_day": GOOGLE_QUERIES_PER_DAY,
    }
    return {
        name: project_power(label, energy_wh_per_query, volume)
        for name, volume in scenarios.items()
    }


def gigawatt_threshold_energy_wh(queries_per_day: float = CHATGPT_QUERIES_PER_DAY) -> float:
    """Per-query energy at which a traffic level crosses 1 GW of sustained power.

    The paper observes that once per-query energy exceeds roughly 100 Wh,
    even tens of millions of queries per day become a gigawatt-scale load.
    """
    if queries_per_day <= 0:
        raise ValueError("queries_per_day must be positive")
    return 1e9 * HOURS_PER_DAY / queries_per_day


def format_power(watts: float) -> str:
    """Human-readable power (kW / MW / GW) used by the Table IV printer."""
    if watts >= 1e9:
        return f"{watts / 1e9:.1f} GW"
    if watts >= 1e6:
        return f"{watts / 1e6:.1f} MW"
    if watts >= 1e3:
        return f"{watts / 1e3:.1f} kW"
    return f"{watts:.1f} W"
