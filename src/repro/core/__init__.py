"""Characterization framework: the paper's primary contribution.

This package turns raw simulator traces into the quantities the paper
reports: latency breakdowns, GPU runtime/utilization, token-composition
breakdowns, KV-memory statistics, per-query energy, accuracy-cost Pareto
analysis, and datacenter-wide power projections.
"""

from repro.core.intervals import clip, intersect, merge_intervals, total_length
from repro.core.metrics import (
    GpuRuntimeBreakdown,
    LatencyBreakdown,
    LatencyStats,
    TokenBreakdown,
    mean,
    percentile,
)
from repro.core.pareto import (
    DesignPoint,
    best_accuracy_point,
    best_efficiency_point,
    diminishing_returns,
    is_dominated,
    normalized_efficiency,
    pareto_frontier,
)
from repro.core.datacenter import (
    CHATGPT_QUERIES_PER_DAY,
    GOOGLE_QUERIES_PER_DAY,
    PowerProjection,
    format_power,
    gigawatt_threshold_energy_wh,
    project_power,
    project_scenarios,
)
from repro.core.runner import (
    CharacterizationResult,
    RequestObservation,
    SingleRequestRunner,
)

__all__ = [
    "CHATGPT_QUERIES_PER_DAY",
    "CharacterizationResult",
    "DesignPoint",
    "GOOGLE_QUERIES_PER_DAY",
    "GpuRuntimeBreakdown",
    "LatencyBreakdown",
    "LatencyStats",
    "PowerProjection",
    "RequestObservation",
    "SingleRequestRunner",
    "TokenBreakdown",
    "best_accuracy_point",
    "best_efficiency_point",
    "clip",
    "diminishing_returns",
    "format_power",
    "gigawatt_threshold_energy_wh",
    "intersect",
    "is_dominated",
    "mean",
    "merge_intervals",
    "normalized_efficiency",
    "pareto_frontier",
    "percentile",
    "project_power",
    "project_scenarios",
    "total_length",
]
