"""Request-level metrics mirroring the paper's characterization dimensions."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.agents.base import AgentRunResult
from repro.core.intervals import intersect, merge_intervals, total_length
from repro.llm.tokenizer import SegmentKind


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (q in [0, 100]); 0.0 for empty input."""
    data = sorted(values)
    if not data:
        return 0.0
    if len(data) == 1:
        return float(data[0])
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile q must be within [0, 100]")
    rank = (q / 100.0) * (len(data) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(data[int(rank)])
    fraction = rank - low
    return float(data[low] * (1 - fraction) + data[high] * fraction)


def mean(values: Sequence[float]) -> float:
    data = list(values)
    return sum(data) / len(data) if data else 0.0


@dataclass(frozen=True)
class LatencyBreakdown:
    """Wall-clock decomposition of one agent request (paper Fig. 5)."""

    llm_time: float
    tool_time: float
    overlap_time: float
    other_time: float
    total: float

    @property
    def fractions(self) -> Dict[str, float]:
        if self.total <= 0:
            return {"llm": 0.0, "tool": 0.0, "overlap": 0.0, "other": 0.0}
        return {
            "llm": self.llm_time / self.total,
            "tool": self.tool_time / self.total,
            "overlap": self.overlap_time / self.total,
            "other": self.other_time / self.total,
        }

    @classmethod
    def from_result(cls, result: AgentRunResult) -> "LatencyBreakdown":
        window = (result.start_time, result.end_time)
        llm_union = merge_intervals(result.llm_intervals())
        tool_union = merge_intervals(result.tool_intervals())
        overlap = total_length(intersect(llm_union, tool_union))
        llm_total = total_length(llm_union)
        tool_total = total_length(tool_union)
        covered = total_length(merge_intervals(list(llm_union) + list(tool_union)))
        total = max(0.0, window[1] - window[0])
        other = max(0.0, total - covered)
        return cls(
            llm_time=max(0.0, llm_total - overlap),
            tool_time=max(0.0, tool_total - overlap),
            overlap_time=overlap,
            other_time=other,
            total=total,
        )

    @classmethod
    def average(cls, breakdowns: Iterable["LatencyBreakdown"]) -> "LatencyBreakdown":
        items = list(breakdowns)
        if not items:
            return cls(0.0, 0.0, 0.0, 0.0, 0.0)
        return cls(
            llm_time=mean([b.llm_time for b in items]),
            tool_time=mean([b.tool_time for b in items]),
            overlap_time=mean([b.overlap_time for b in items]),
            other_time=mean([b.other_time for b in items]),
            total=mean([b.total for b in items]),
        )


@dataclass(frozen=True)
class TokenBreakdown:
    """Average prompt/output composition of a request's LLM calls (Fig. 8)."""

    instruction: float
    few_shot: float
    user: float
    llm_history: float
    tool_history: float
    output: float

    @property
    def input_total(self) -> float:
        return (
            self.instruction + self.few_shot + self.user + self.llm_history + self.tool_history
        )

    @property
    def total(self) -> float:
        return self.input_total + self.output

    def as_dict(self) -> Dict[str, float]:
        return {
            "instruction": self.instruction,
            "few_shot": self.few_shot,
            "user": self.user,
            "llm_history": self.llm_history,
            "tool_history": self.tool_history,
            "output": self.output,
        }

    @classmethod
    def from_result(cls, result: AgentRunResult) -> "TokenBreakdown":
        if not result.llm_calls:
            return cls(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        by_kind = result.mean_prompt_tokens_by_kind()
        output = mean([call.output_tokens for call in result.llm_calls])
        return cls(
            instruction=by_kind.get(SegmentKind.INSTRUCTION, 0.0),
            few_shot=by_kind.get(SegmentKind.FEW_SHOT, 0.0),
            user=by_kind.get(SegmentKind.USER, 0.0),
            llm_history=by_kind.get(SegmentKind.LLM_HISTORY, 0.0),
            tool_history=by_kind.get(SegmentKind.TOOL_HISTORY, 0.0),
            output=output,
        )

    @classmethod
    def average(cls, breakdowns: Iterable["TokenBreakdown"]) -> "TokenBreakdown":
        items = list(breakdowns)
        if not items:
            return cls(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return cls(
            instruction=mean([b.instruction for b in items]),
            few_shot=mean([b.few_shot for b in items]),
            user=mean([b.user for b in items]),
            llm_history=mean([b.llm_history for b in items]),
            tool_history=mean([b.tool_history for b in items]),
            output=mean([b.output for b in items]),
        )


@dataclass(frozen=True)
class GpuRuntimeBreakdown:
    """GPU time split into prefill / decode / idle within a window (Fig. 6).

    ``mixed`` is the time spent in chunked-prefill steps that co-schedule
    prompt chunks with decode tokens; it is zero unless an engine runs with
    ``prefill_chunk_tokens`` set, and counts as active (not idle) time.
    """

    prefill: float
    decode: float
    idle: float
    mixed: float = 0.0

    @property
    def total(self) -> float:
        return self.prefill + self.decode + self.mixed + self.idle

    @property
    def utilization(self) -> float:
        """Fraction of the window the GPU was actively computing."""
        if self.total <= 0:
            return 0.0
        return (self.prefill + self.decode + self.mixed) / self.total

    @property
    def fractions(self) -> Dict[str, float]:
        if self.total <= 0:
            return {"prefill": 0.0, "decode": 0.0, "mixed": 0.0, "idle": 0.0}
        return {
            "prefill": self.prefill / self.total,
            "decode": self.decode / self.total,
            "mixed": self.mixed / self.total,
            "idle": self.idle / self.total,
        }

    @classmethod
    def from_engine_window(cls, breakdown: Dict[str, float]) -> "GpuRuntimeBreakdown":
        return cls(
            prefill=breakdown.get("prefill", 0.0),
            decode=breakdown.get("decode", 0.0),
            idle=breakdown.get("idle", 0.0),
            mixed=breakdown.get("mixed", 0.0),
        )

    @classmethod
    def average(cls, items: Iterable["GpuRuntimeBreakdown"]) -> "GpuRuntimeBreakdown":
        collected = list(items)
        if not collected:
            return cls(0.0, 0.0, 0.0)
        return cls(
            prefill=mean([b.prefill for b in collected]),
            decode=mean([b.decode for b in collected]),
            idle=mean([b.idle for b in collected]),
            mixed=mean([b.mixed for b in collected]),
        )


@dataclass(frozen=True)
class PoolStats:
    """Engine-level metrics for one replica pool over a measured window."""

    name: str
    num_replicas: int            # replicas ever provisioned (incl. drained)
    active_replicas: int         # replicas taking traffic at window close
    routed_counts: List[int] = field(default_factory=list)
    spilled_in: int = 0
    spilled_out: int = 0
    replica_seconds: float = 0.0
    energy_wh: float = 0.0
    # Hardware cost accounting: the pool's replica-hour price (GPU on-demand
    # price x TP degree) and the USD its measured replica-seconds cost.
    cost_per_hour: float = 0.0
    cost_usd: float = 0.0
    gpu: str = ""
    completed_llm_requests: int = 0
    llm_p95_latency_s: float = 0.0
    llm_throughput_qps: float = 0.0
    preemptions: int = 0
    prefix_cache_hit_rate: float = 0.0
    # Door-level admission accounting attributed to this pool.
    rejected_requests: int = 0
    shed_tokens: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "pool": self.name,
            "replicas": self.num_replicas,
            "active": self.active_replicas,
            "routed": sum(self.routed_counts),
            "spilled_in": self.spilled_in,
            "spilled_out": self.spilled_out,
            "replica_seconds": self.replica_seconds,
            "energy_wh": self.energy_wh,
            "cost_per_hour": self.cost_per_hour,
            "cost_usd": self.cost_usd,
            "gpu": self.gpu,
            "llm_requests": self.completed_llm_requests,
            "llm_p95_s": self.llm_p95_latency_s,
            "llm_qps": self.llm_throughput_qps,
            "preemptions": self.preemptions,
            "prefix_hit_rate": self.prefix_cache_hit_rate,
            "rejected": self.rejected_requests,
            "shed_tokens": self.shed_tokens,
        }


@dataclass(frozen=True)
class TrafficClassStats:
    """Request-level metrics for one traffic class in a workload mixture.

    ``offered`` / ``rejected`` / ``shed_tokens`` carry the door-level
    admission accounting.  Door counts cover the *whole run* (arrivals are
    counted when they reach the door, before the warm-up boundary is even
    known), while ``num_completed`` and the latency/SLO metrics cover only
    the measured (post-warm-up) window -- so with a warm-up configured,
    ``offered - rejected`` exceeds ``num_completed`` by the warm-up count.
    ``slo_attainment`` is the fraction of measured completions whose
    end-to-end latency met the class's declared p95 SLO (``None`` when the
    class completed nothing or declares no SLO).
    """

    label: str
    num_completed: int
    mean_latency_s: float
    p95_latency_s: float
    throughput_qps: float
    accuracy: float
    offered: int = 0
    rejected: int = 0
    shed_tokens: float = 0.0
    slo_p95_s: Optional[float] = None
    slo_attainment: Optional[float] = None

    @property
    def rejection_rate(self) -> float:
        if self.offered == 0:
            return 0.0
        return self.rejected / self.offered

    def as_dict(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "class": self.label,
            "completed": self.num_completed,
            "mean_latency_s": self.mean_latency_s,
            "p95_latency_s": self.p95_latency_s,
            "throughput_qps": self.throughput_qps,
            "accuracy": self.accuracy,
            "offered": self.offered,
            "rejected": self.rejected,
            "rejection_rate": self.rejection_rate,
        }
        if self.slo_p95_s is not None:
            row["slo_p95_s"] = self.slo_p95_s
            row["slo_attainment"] = self.slo_attainment
        return row


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics over a set of request latencies."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "LatencyStats":
        data = list(values)
        return cls(
            count=len(data),
            mean=mean(data),
            p50=percentile(data, 50),
            p95=percentile(data, 95),
            p99=percentile(data, 99),
            maximum=max(data) if data else 0.0,
        )
