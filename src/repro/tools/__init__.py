"""Simulated tool environments used by the agentic benchmarks.

Each benchmark in the paper pairs agents with external tools (Table II):
Wikipedia search/lookup for HotpotQA, interactive web navigation for WebShop,
Wolfram Alpha / a Python calculator for MATH, and self-generated test
execution for HumanEval.  The reproductions implement the same interaction
surface over synthetic content, with latency models calibrated to the paper
(Wikipedia ~1.2 s per call, WebShop ~20 ms, HumanEval's test tool keeps the
GPU busy through an internal LLM call).
"""

from repro.tools.base import BaseTool, ToolAction, ToolCallRecord, ToolResult, ToolSet
from repro.tools.wikipedia import WikipediaCorpus, WikipediaTool
from repro.tools.webshop import ProductCatalog, WebShopTool
from repro.tools.calculator import CalculatorTool, WolframAlphaTool, evaluate_expression
from repro.tools.python_exec import PythonExecutionTool

__all__ = [
    "BaseTool",
    "CalculatorTool",
    "ProductCatalog",
    "PythonExecutionTool",
    "ToolAction",
    "ToolCallRecord",
    "ToolResult",
    "ToolSet",
    "WebShopTool",
    "WikipediaCorpus",
    "WikipediaTool",
    "WolframAlphaTool",
    "evaluate_expression",
]
