"""Tool abstractions shared by all simulated tool environments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional

from repro.llm.tokenizer import SegmentKind, SyntheticTokenizer, TokenSpan
from repro.sim import Environment
from repro.sim.distributions import LogNormalSampler, RandomStream


@dataclass(frozen=True)
class ToolAction:
    """A structured tool invocation command emitted by the agent core."""

    tool: str
    action: str
    argument: str = ""

    def __str__(self) -> str:
        return f"{self.action}[{self.argument}]"


@dataclass(frozen=True)
class ToolResult:
    """Outcome of a tool invocation."""

    tool: str
    action: str
    argument: str
    observation_text: str
    observation_tokens: int
    observation_span: TokenSpan
    latency: float
    success: bool
    used_gpu: bool = False
    data: Any = None


@dataclass(frozen=True)
class ToolCallRecord:
    """Timing record of one tool call, kept in the agent trace."""

    tool: str
    action: str
    argument: str
    start: float
    end: float
    observation_tokens: int
    success: bool
    used_gpu: bool = False

    @property
    def latency(self) -> float:
        return self.end - self.start


class BaseTool:
    """Common machinery for simulated tools.

    Concrete tools implement :meth:`_execute`, returning the observation text
    and optional extra data; the base class samples the call latency, advances
    simulated time, and converts the observation into a tool-history token
    span for the agent's next prompt.
    """

    name = "tool"
    uses_gpu = False

    def __init__(
        self,
        env: Environment,
        tokenizer: SyntheticTokenizer,
        latency_sampler: LogNormalSampler,
        stream: RandomStream,
    ):
        self.env = env
        self.tokenizer = tokenizer
        self.latency_sampler = latency_sampler
        self.stream = stream
        self.call_count = 0

    # -- subclass hook ------------------------------------------------------
    def _execute(self, action: ToolAction) -> tuple[str, bool, Any]:
        """Return ``(observation_text, success, data)`` for an action."""
        raise NotImplementedError

    def _sample_latency(self, action: ToolAction) -> float:
        return max(0.0, self.latency_sampler.sample(self.stream))

    # -- invocation -----------------------------------------------------------
    def invoke(self, action: ToolAction):
        """Simulation process performing one tool call; returns a ToolResult."""
        self.call_count += 1
        start = self.env.now
        observation_text, success, data = self._execute(action)
        latency = self._sample_latency(action)
        if latency > 0:
            yield self.env.timeout(latency)
        span = self.tokenizer.text_span(SegmentKind.TOOL_HISTORY, observation_text)
        return ToolResult(
            tool=self.name,
            action=action.action,
            argument=action.argument,
            observation_text=observation_text,
            observation_tokens=len(span),
            observation_span=span,
            latency=self.env.now - start,
            success=success,
            used_gpu=self.uses_gpu,
            data=data,
        )


class ToolSet:
    """The collection of tools available to an agent for one benchmark."""

    def __init__(self, tools: Iterable[BaseTool]):
        self._tools: Dict[str, BaseTool] = {tool.name: tool for tool in tools}
        if not self._tools:
            raise ValueError("a ToolSet needs at least one tool")

    def __contains__(self, name: str) -> bool:
        return name in self._tools

    def __iter__(self):
        return iter(self._tools.values())

    def __len__(self) -> int:
        return len(self._tools)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._tools)

    def get(self, name: str) -> BaseTool:
        if name not in self._tools:
            raise KeyError(f"unknown tool {name!r}; available: {self.names}")
        return self._tools[name]

    @property
    def primary(self) -> BaseTool:
        """The benchmark's main tool (first registered)."""
        return next(iter(self._tools.values()))

    def call(self, action: ToolAction):
        """Dispatch ``action`` to the owning tool.

        Returns the tool's invocation generator; agents either drive it
        inline (``result = yield from tools.call(action)``) or wrap it in a
        process for concurrent execution (``env.process(tools.call(action))``).
        """
        return self.get(action.tool).invoke(action)
