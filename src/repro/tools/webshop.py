"""Synthetic WebShop environment.

WebShop tasks ask the agent to navigate a shopping site (search, click result,
pick options, buy) to find an item satisfying attribute and price constraints.
The paper hosts the site locally, so tool calls are cheap (~20 ms) but
observations (result pages, product pages) are large, which is what drives the
long tool-history token growth seen in Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.distributions import LogNormalSampler, RandomStream
from repro.tools.base import BaseTool, ToolAction

CATEGORIES = ["jacket", "desk lamp", "backpack", "headphones", "kettle", "sneakers",
              "notebook", "monitor", "blanket", "water bottle"]
COLORS = ["black", "navy", "olive", "crimson", "slate", "ivory", "amber", "teal"]
SIZES = ["small", "medium", "large", "x-large"]
MATERIALS = ["cotton", "aluminium", "leather", "recycled nylon", "bamboo", "steel"]


@dataclass(frozen=True)
class Product:
    """One catalogue item."""

    product_id: str
    category: str
    color: str
    size: str
    material: str
    price: float

    @property
    def title(self) -> str:
        return f"{self.color} {self.material} {self.category} ({self.size})"

    def matches(self, requirements: Dict[str, str], max_price: Optional[float]) -> bool:
        for key, value in requirements.items():
            if getattr(self, key, None) != value:
                return False
        if max_price is not None and self.price > max_price:
            return False
        return True


class ProductCatalog:
    """Seeded product catalogue with keyword search."""

    def __init__(self, stream: RandomStream, num_products: int = 400):
        if num_products < 20:
            raise ValueError("catalogue needs at least 20 products")
        self.products: List[Product] = []
        for index in range(num_products):
            self.products.append(
                Product(
                    product_id=f"B{index:06d}",
                    category=stream.choice(CATEGORIES),
                    color=stream.choice(COLORS),
                    size=stream.choice(SIZES),
                    material=stream.choice(MATERIALS),
                    price=round(stream.uniform(8.0, 220.0), 2),
                )
            )
        self._by_id = {product.product_id: product for product in self.products}

    def __len__(self) -> int:
        return len(self.products)

    def get(self, product_id: str) -> Optional[Product]:
        return self._by_id.get(product_id)

    def search(self, query: str, limit: int = 10) -> List[Product]:
        terms = [term for term in query.lower().split() if term]
        scored: List[tuple[int, Product]] = []
        for product in self.products:
            haystack = f"{product.title} {product.material} {product.category}".lower()
            score = sum(1 for term in terms if term in haystack)
            if score:
                scored.append((score, product))
        scored.sort(key=lambda pair: (-pair[0], pair[1].price))
        return [product for _, product in scored[:limit]]

    def find_matching(
        self, requirements: Dict[str, str], max_price: Optional[float]
    ) -> List[Product]:
        return [p for p in self.products if p.matches(requirements, max_price)]


class WebShopTool(BaseTool):
    """Search/click navigation over a :class:`ProductCatalog`."""

    name = "webshop"

    def __init__(self, env, tokenizer, latency_sampler: LogNormalSampler, stream: RandomStream, catalog: ProductCatalog):
        super().__init__(env, tokenizer, latency_sampler, stream)
        self.catalog = catalog
        self.current_results: List[Product] = []
        self.current_product: Optional[Product] = None
        self.purchased: Optional[Product] = None
        self.selected_options: Dict[str, str] = {}

    def reset_session(self) -> None:
        self.current_results = []
        self.current_product = None
        self.purchased = None
        self.selected_options = {}

    def _result_page(self) -> str:
        lines = ["Search results page 1 of 3. [Back to Search] [Next >]"]
        for product in self.current_results:
            lines.append(
                f"[{product.product_id}] {product.title} — ${product.price:.2f} "
                f"material {product.material}, ships in {2 + len(product.category) % 5} days"
            )
        return " \n".join(lines)

    def _product_page(self, product: Product) -> str:
        return (
            f"{product.title}. Price ${product.price:.2f}. "
            f"Options: color [{', '.join(COLORS[:4])}], size [{', '.join(SIZES)}]. "
            f"Description: a {product.material} {product.category} in {product.color}, "
            "with reinforced stitching, a two-year warranty, and free returns within 30 days. "
            "[Buy Now] [Back to Search] [< Prev]"
        )

    def _execute(self, action: ToolAction):
        if action.action == "search":
            self.current_results = self.catalog.search(action.argument)
            if not self.current_results:
                return "No results found. [Back to Search]", False, []
            return self._result_page(), True, self.current_results
        if action.action == "click":
            target = action.argument
            product = self.catalog.get(target)
            if product is not None:
                self.current_product = product
                return self._product_page(product), True, product
            if target.lower() in ("buy now", "buy"):
                if self.current_product is None:
                    return "Nothing selected to buy. [Back to Search]", False, None
                self.purchased = self.current_product
                return (
                    f"Thank you for your purchase of {self.current_product.title}!",
                    True,
                    self.current_product,
                )
            # Option click (colour/size choice) on the current product page.
            if self.current_product is not None:
                self.selected_options[target] = target
                return (
                    f"Selected option '{target}' for {self.current_product.title}. "
                    + self._product_page(self.current_product),
                    True,
                    target,
                )
            return f"Invalid click target {target}. [Back to Search]", False, None
        return f"Invalid action {action.action}.", False, None
