"""Simulated Python execution tool for the HumanEval benchmark.

In the paper the agent validates its generated code by *generating test code
with the LLM* and executing it in a sandbox, so the "tool" phase keeps the GPU
busy (Fig. 6 shows minimal GPU idle time for HumanEval despite long tool
latencies).  The reproduction mirrors this: every invocation issues an
internal LLM call (test generation) through the serving engine and then
spends sandbox time executing the tests.  The internal LLM call is tagged so
agent-level metrics do not count it as an agent reasoning call.
"""

from __future__ import annotations

from typing import Optional

from repro.llm.client import LLMClient
from repro.llm.tokenizer import Prompt, SegmentKind
from repro.sim.distributions import LogNormalSampler, RandomStream
from repro.tools.base import BaseTool, ToolAction, ToolResult


class PythonExecutionTool(BaseTool):
    """Runs self-generated unit tests against the agent's candidate solution."""

    name = "python_exec"
    uses_gpu = True

    def __init__(
        self,
        env,
        tokenizer,
        latency_sampler: LogNormalSampler,
        stream: RandomStream,
        llm_client: Optional[LLMClient] = None,
        sandbox_overhead_s: float = 0.6,
        test_generation_tokens: int = 160,
    ):
        super().__init__(env, tokenizer, latency_sampler, stream)
        self.llm_client = llm_client
        self.sandbox_overhead_s = sandbox_overhead_s
        self.test_generation_tokens = test_generation_tokens

    def _execute(self, action: ToolAction):
        passed = self.stream.random() < 0.8
        if passed:
            text = (
                f"Executed generated tests for {action.argument or 'candidate solution'}: "
                "5 passed, 0 failed in 0.41s."
            )
        else:
            text = (
                f"Executed generated tests for {action.argument or 'candidate solution'}: "
                "3 passed, 2 failed. AssertionError: expected 7, got 5 (line 14)."
            )
        return text, passed, passed

    def invoke(self, action: ToolAction):
        """Override: test generation goes through the LLM engine (GPU busy)."""
        self.call_count += 1
        start = self.env.now
        observation_text, success, data = self._execute(action)

        if self.llm_client is not None:
            prompt = Prompt()
            prompt.append(
                self.tokenizer.span(
                    SegmentKind.INSTRUCTION, "python-exec-testgen-instruction", 120
                )
            )
            prompt.append(
                self.tokenizer.span(
                    SegmentKind.USER,
                    f"python-exec-testgen-{action.argument}-{self.call_count}",
                    180,
                )
            )
            yield self.llm_client.generate(
                prompt,
                output_tokens=self.test_generation_tokens,
                metadata={"role": "tool_internal", "tool": self.name},
            )

        sandbox_time = max(0.05, self.latency_sampler.sample(self.stream) * 0.3)
        yield self.env.timeout(self.sandbox_overhead_s + sandbox_time)

        span = self.tokenizer.text_span(SegmentKind.TOOL_HISTORY, observation_text)
        return ToolResult(
            tool=self.name,
            action=action.action,
            argument=action.argument,
            observation_text=observation_text,
            observation_tokens=len(span),
            observation_span=span,
            latency=self.env.now - start,
            success=success,
            used_gpu=True,
            data=data,
        )
