"""Calculator tools for the MATH benchmark.

The paper gives MATH agents two tools: the Wolfram Alpha API for complex
queries (a remote call, seconds of latency) and a local Python-based
calculator for simple numeric work (milliseconds).  The reproduction
implements a real arithmetic expression evaluator (recursive-descent parser,
no ``eval``) used by both tools; the Wolfram variant adds remote-API latency
and accepts symbolic queries that the local calculator rejects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.sim.distributions import LogNormalSampler, RandomStream
from repro.tools.base import BaseTool, ToolAction


class ExpressionError(ValueError):
    """Raised when an expression cannot be parsed or evaluated."""


_FUNCTIONS = {
    "sqrt": math.sqrt,
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "log": math.log,
    "exp": math.exp,
    "abs": abs,
    "floor": math.floor,
    "ceil": math.ceil,
}

_CONSTANTS = {"pi": math.pi, "e": math.e}


class _Parser:
    """Recursive-descent parser for arithmetic expressions.

    Grammar::

        expr    := term (('+' | '-') term)*
        term    := factor (('*' | '/' | '%') factor)*
        factor  := unary ('^' factor)?
        unary   := ('+' | '-') unary | atom
        atom    := NUMBER | NAME '(' expr ')' | NAME | '(' expr ')'
    """

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def parse(self) -> float:
        value = self._expr()
        self._skip_ws()
        if self.pos != len(self.text):
            raise ExpressionError(f"unexpected input at position {self.pos}: {self.text[self.pos:]!r}")
        return value

    # -- helpers ------------------------------------------------------------
    def _skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def _peek(self) -> str:
        self._skip_ws()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def _consume(self, char: str) -> None:
        if self._peek() != char:
            raise ExpressionError(f"expected {char!r} at position {self.pos}")
        self.pos += 1

    # -- grammar --------------------------------------------------------------
    def _expr(self) -> float:
        value = self._term()
        while True:
            op = self._peek()
            if op == "+":
                self.pos += 1
                value += self._term()
            elif op == "-":
                self.pos += 1
                value -= self._term()
            else:
                return value

    def _term(self) -> float:
        value = self._factor()
        while True:
            op = self._peek()
            if op == "*":
                self.pos += 1
                value *= self._factor()
            elif op == "/":
                self.pos += 1
                divisor = self._factor()
                if divisor == 0:
                    raise ExpressionError("division by zero")
                value /= divisor
            elif op == "%":
                self.pos += 1
                divisor = self._factor()
                if divisor == 0:
                    raise ExpressionError("modulo by zero")
                value %= divisor
            else:
                return value

    def _factor(self) -> float:
        base = self._unary()
        if self._peek() == "^":
            self.pos += 1
            exponent = self._factor()
            try:
                return float(base**exponent)
            except OverflowError as exc:
                raise ExpressionError("exponentiation overflow") from exc
        return base

    def _unary(self) -> float:
        op = self._peek()
        if op == "+":
            self.pos += 1
            return self._unary()
        if op == "-":
            self.pos += 1
            return -self._unary()
        return self._atom()

    def _atom(self) -> float:
        self._skip_ws()
        if self.pos >= len(self.text):
            raise ExpressionError("unexpected end of expression")
        char = self.text[self.pos]
        if char == "(":
            self.pos += 1
            value = self._expr()
            self._consume(")")
            return value
        if char.isdigit() or char == ".":
            return self._number()
        if char.isalpha():
            return self._name()
        raise ExpressionError(f"unexpected character {char!r} at position {self.pos}")

    def _number(self) -> float:
        start = self.pos
        while self.pos < len(self.text) and (self.text[self.pos].isdigit() or self.text[self.pos] == "."):
            self.pos += 1
        try:
            return float(self.text[start : self.pos])
        except ValueError as exc:
            raise ExpressionError(f"invalid number {self.text[start:self.pos]!r}") from exc

    def _name(self) -> float:
        start = self.pos
        while self.pos < len(self.text) and (self.text[self.pos].isalnum() or self.text[self.pos] == "_"):
            self.pos += 1
        name = self.text[start : self.pos].lower()
        if name in _CONSTANTS:
            return _CONSTANTS[name]
        if name in _FUNCTIONS:
            self._consume("(")
            argument = self._expr()
            self._consume(")")
            try:
                return float(_FUNCTIONS[name](argument))
            except (ValueError, OverflowError) as exc:
                raise ExpressionError(f"cannot evaluate {name}({argument})") from exc
        raise ExpressionError(f"unknown identifier {name!r}")


def evaluate_expression(expression: str) -> float:
    """Safely evaluate an arithmetic expression string."""
    if not expression or not expression.strip():
        raise ExpressionError("empty expression")
    return _Parser(expression).parse()


class CalculatorTool(BaseTool):
    """Local Python-based calculator (fast, numeric only)."""

    name = "calculator"

    def _execute(self, action: ToolAction):
        try:
            value = evaluate_expression(action.argument)
        except ExpressionError as exc:
            return f"Calculator error: {exc}", False, None
        text = f"Result: {value:.10g}"
        return text, True, value


class WolframAlphaTool(BaseTool):
    """Remote symbolic solver (slow, handles richer queries)."""

    name = "wolfram"

    def _execute(self, action: ToolAction):
        argument = action.argument.strip()
        try:
            value = evaluate_expression(argument)
            text = (
                f"Wolfram Alpha result for '{argument}': exact value {value:.10g}; "
                f"alternative forms available; computation time 1.2 s."
            )
            return text, True, value
        except ExpressionError:
            # Symbolic / non-numeric query: return a plausible structured answer.
            text = (
                f"Wolfram Alpha interpreted '{argument}' as a symbolic query and "
                "returned a simplified closed form with step-by-step solution."
            )
            return text, True, None
