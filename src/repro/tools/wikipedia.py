"""Synthetic Wikipedia environment for the HotpotQA benchmark.

The paper equips agents with the live Wikipedia API (search + keyword lookup)
whose calls average about 1.2 seconds.  The substitute builds a seeded corpus
of interlinked articles: entities have attributes and relations to other
entities, so multi-hop questions ("Where was the director of X born?") have a
ground-truth reasoning chain through the corpus.  Search returns the matching
article's opening paragraph (a few hundred tokens, like the real API), and
lookup returns the sentence containing a keyword.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.distributions import LogNormalSampler, RandomStream
from repro.tools.base import BaseTool, ToolAction

_FIRST_NAMES = [
    "Arlen", "Briva", "Cadell", "Dorine", "Elsat", "Farrow", "Gemina", "Haldor",
    "Iselle", "Jorvik", "Kestra", "Lunder", "Morwen", "Nerith", "Oswin", "Pavela",
]
_PLACE_ROOTS = [
    "Vael", "Thorn", "Quill", "Brack", "Maris", "Olden", "Crest", "Fenn",
    "Garris", "Hollow", "Ivers", "Juno", "Karst", "Lorim", "Moss", "Nord",
]
_PROFESSIONS = [
    "director", "novelist", "architect", "composer", "botanist", "aviator",
    "historian", "sculptor", "physicist", "cartographer",
]
_RELATIONS = ["founder", "director", "author", "composer", "designer", "discoverer"]


@dataclass
class WikiArticle:
    """One synthetic encyclopedia article."""

    title: str
    kind: str                      # "person" | "place" | "work"
    summary: str
    sentences: List[str]
    links: List[str] = field(default_factory=list)
    attributes: Dict[str, str] = field(default_factory=dict)

    @property
    def text(self) -> str:
        return " ".join([self.summary] + self.sentences)


class WikipediaCorpus:
    """A seeded corpus of people, places and works with multi-hop relations."""

    def __init__(self, stream: RandomStream, num_entities: int = 120):
        if num_entities < 12:
            raise ValueError("corpus needs at least 12 entities")
        self.articles: Dict[str, WikiArticle] = {}
        self._build(stream, num_entities)

    # -- construction -----------------------------------------------------
    def _build(self, stream: RandomStream, num_entities: int) -> None:
        num_places = max(4, num_entities // 4)
        num_people = max(4, num_entities // 2)
        num_works = max(4, num_entities - num_places - num_people)

        places = []
        for index in range(num_places):
            name = f"{stream.choice(_PLACE_ROOTS)}{stream.choice(['ton', 'burgh', 'mere', 'stad'])} {index}"
            places.append(name)
            self.articles[name] = WikiArticle(
                title=name,
                kind="place",
                summary=(
                    f"{name} is a settlement noted for its {stream.choice(['harbour', 'observatory', 'archives', 'foundry'])} "
                    f"and a population of {stream.integers(2, 900)} thousand residents."
                ),
                sentences=[
                    f"The regional council of {name} was established in {1700 + stream.integers(0, 300)}.",
                    f"{name} hosts an annual festival devoted to {stream.choice(_PROFESSIONS)}s.",
                ],
                attributes={"founded": str(1700 + stream.integers(0, 300))},
            )

        people = []
        for index in range(num_people):
            name = f"{stream.choice(_FIRST_NAMES)} {stream.choice(_PLACE_ROOTS)}sen {index}"
            birthplace = stream.choice(places)
            profession = stream.choice(_PROFESSIONS)
            people.append(name)
            self.articles[name] = WikiArticle(
                title=name,
                kind="person",
                summary=(
                    f"{name} is a {profession} born in {birthplace} in {1850 + stream.integers(0, 140)}."
                ),
                sentences=[
                    f"{name} studied at the institute of {stream.choice(places)} before gaining recognition.",
                    f"Critics describe the style of {name} as {stream.choice(['austere', 'lyrical', 'meticulous', 'exuberant'])}.",
                ],
                links=[birthplace],
                attributes={"birthplace": birthplace, "profession": profession},
            )

        for index in range(num_works):
            creator = stream.choice(people)
            relation = stream.choice(_RELATIONS)
            name = f"The {stream.choice(['Silent', 'Gilded', 'Northern', 'Hollow', 'Verdant'])} {stream.choice(['Archive', 'Voyage', 'Meridian', 'Orchard', 'Signal'])} {index}"
            self.articles[name] = WikiArticle(
                title=name,
                kind="work",
                summary=(
                    f"{name} is a celebrated work whose {relation} is {creator}, "
                    f"first presented in {1900 + stream.integers(0, 120)}."
                ),
                sentences=[
                    f"{name} received the {stream.choice(['Aster', 'Meridian', 'Boreal'])} prize.",
                    f"Scholars connect {name} with themes of {stream.choice(['memory', 'migration', 'industry', 'tides'])}.",
                ],
                links=[creator],
                attributes={"creator": creator, "relation": relation},
            )

    # -- queries ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.articles)

    def titles(self) -> List[str]:
        return list(self.articles)

    def get(self, title: str) -> Optional[WikiArticle]:
        return self.articles.get(title)

    def search(self, query: str) -> Tuple[Optional[WikiArticle], List[str]]:
        """Exact-title match first, then substring match; also returns similar titles."""
        if query in self.articles:
            return self.articles[query], []
        query_lower = query.lower()
        matches = [
            title for title in self.articles if query_lower and query_lower in title.lower()
        ]
        if matches:
            return self.articles[matches[0]], matches[1:6]
        return None, [title for title in list(self.articles)[:5]]

    def lookup(self, title: str, keyword: str) -> Optional[str]:
        article = self.get(title)
        if article is None:
            return None
        keyword_lower = keyword.lower()
        for sentence in [article.summary] + article.sentences:
            if keyword_lower in sentence.lower():
                return sentence
        return None


class WikipediaTool(BaseTool):
    """Search/lookup interface over a :class:`WikipediaCorpus`."""

    name = "wikipedia"

    def __init__(self, env, tokenizer, latency_sampler: LogNormalSampler, stream: RandomStream, corpus: WikipediaCorpus):
        super().__init__(env, tokenizer, latency_sampler, stream)
        self.corpus = corpus
        self._last_article: Optional[WikiArticle] = None

    def _execute(self, action: ToolAction):
        if action.action == "search":
            article, similar = self.corpus.search(action.argument)
            if article is None:
                text = (
                    f"Could not find {action.argument}. Similar: "
                    + ", ".join(similar)
                )
                return text, False, None
            self._last_article = article
            return article.text, True, article
        if action.action == "lookup":
            title = self._last_article.title if self._last_article else ""
            sentence = self.corpus.lookup(title, action.argument)
            if sentence is None:
                return f"No result found for lookup[{action.argument}].", False, None
            return sentence, True, sentence
        return f"Invalid action {action.action}.", False, None
