"""Accuracy model: how agent design choices translate into success probability.

The model is intentionally simple and mechanistic so the paper's qualitative
findings *emerge* instead of being hard-coded:

* Each task needs ``solution_depth`` successful reasoning steps.  Every agent
  iteration attempts one step; the per-step success probability depends on
  the benchmark, agent, backend model, few-shot prompting, accumulated
  reflections, and (for tree search) the number of parallel candidates.
* Once all steps are made, the final answer is correct with a probability that
  again depends on benchmark/agent/model and the number of answer candidates
  considered.

These two probabilities produce the paper's observed shapes: accuracy rises
with iteration budget but saturates; few-shot examples improve accuracy *and*
shorten trajectories; reflection retries give diminishing gains; parallel
candidates raise accuracy while reducing sequential depth; larger models reach
their asymptote with less test-time compute.
"""

from __future__ import annotations

import math

from repro.oracle.calibration import (
    AgentProfile,
    BenchmarkProfile,
    ModelQuality,
)


def clamp(value: float, low: float = 0.0, high: float = 1.0) -> float:
    return max(low, min(high, value))


def few_shot_gain(num_few_shot: int) -> float:
    """Additive step-probability gain from in-context examples.

    Gains saturate after a handful of examples and slowly turn negative as
    very long prompts push the model outside its optimal processing range
    (the paper's Fig. 15 observation).
    """
    if num_few_shot <= 0:
        return -0.08
    saturating = 0.14 * (1.0 - math.exp(-num_few_shot / 1.6))
    overload = 0.02 * max(0, num_few_shot - 4)
    return saturating - overload


def reflection_gain(reflection_round: int) -> float:
    """Additive step-probability gain from accumulated verbal reflections."""
    if reflection_round <= 0:
        return 0.0
    return min(0.22, 0.07 * math.sqrt(reflection_round) * 1.6)


def parallel_candidate_boost(
    probability: float, num_candidates: int, exponent: float = 0.62
) -> float:
    """Best-of-N improvement with sub-linear effective candidate count.

    Candidates are correlated (same model, same context), so doubling the
    branching factor does not double the number of independent tries.  The
    ``exponent`` controls how quickly extra candidates decorrelate; answer
    selection uses a smaller exponent than step exploration because final
    answers drawn from the same search tree are highly correlated.
    """
    if num_candidates <= 1:
        return probability
    effective = num_candidates**exponent
    return 1.0 - (1.0 - probability) ** effective


def step_success_probability(
    benchmark: BenchmarkProfile,
    agent: AgentProfile,
    model: ModelQuality,
    difficulty: float,
    num_few_shot: int,
    reflection_round: int = 0,
    num_candidates: int = 1,
) -> float:
    """Probability that one agent iteration makes progress on the task."""
    base = benchmark.base_step_prob
    base *= agent.step_factor_for(benchmark.name)
    base *= model.step_quality
    base += few_shot_gain(num_few_shot)
    base += reflection_gain(reflection_round)
    base *= 1.0 - 0.55 * clamp(difficulty)
    base = parallel_candidate_boost(clamp(base, 0.02, 0.97), num_candidates)
    return clamp(base, 0.02, 0.97)


def answer_success_probability(
    benchmark: BenchmarkProfile,
    agent: AgentProfile,
    model: ModelQuality,
    difficulty: float,
    solved: bool,
    num_candidates: int = 1,
) -> float:
    """Probability that the final answer is correct."""
    if not solved:
        return clamp(benchmark.guess_prob * model.answer_quality, 0.0, 0.3)
    base = benchmark.base_answer_prob
    base *= agent.answer_factor_for(benchmark.name)
    base *= model.answer_quality
    base *= 1.0 - 0.45 * clamp(difficulty)
    base = parallel_candidate_boost(clamp(base, 0.02, 0.98), num_candidates, exponent=0.35)
    return clamp(base, 0.0, agent.answer_asymptote)
