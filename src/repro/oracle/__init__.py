"""Synthetic LLM behaviour and accuracy models.

Because no real LLM is available offline, agent decisions (how many reasoning
steps a task needs, how long each generated message is, whether the final
answer is correct) are produced by a seeded statistical model calibrated to
the workload statistics reported in the paper.  The oracle never fabricates
latencies or energy -- those come from the serving simulator -- it only
supplies the *workload shape* a real model would have produced.
"""

from repro.oracle.calibration import (
    AgentProfile,
    BenchmarkProfile,
    ModelQuality,
    AGENT_PROFILES,
    BENCHMARK_PROFILES,
    MODEL_QUALITY,
    get_agent_profile,
    get_benchmark_profile,
    get_model_quality,
)
from repro.oracle.accuracy import (
    answer_success_probability,
    few_shot_gain,
    parallel_candidate_boost,
    reflection_gain,
    step_success_probability,
)
from repro.oracle.behavior import StepOutcome, TaskOracle, make_oracle

__all__ = [
    "AGENT_PROFILES",
    "AgentProfile",
    "BENCHMARK_PROFILES",
    "BenchmarkProfile",
    "MODEL_QUALITY",
    "ModelQuality",
    "StepOutcome",
    "TaskOracle",
    "answer_success_probability",
    "few_shot_gain",
    "get_agent_profile",
    "get_benchmark_profile",
    "get_model_quality",
    "make_oracle",
    "parallel_candidate_boost",
    "reflection_gain",
    "step_success_probability",
]
