"""Calibration constants for the behaviour oracle.

Every assumed number in the reproduction lives here so it can be audited
against the paper.  The calibration targets are the paper's reported workload
statistics:

* Figure 4 -- LLM/tool invocation counts per request and agent.
* Figure 5 -- tool latencies (Wikipedia ~1.2 s, WebShop ~20 ms) and
  end-to-end latency ranges.
* Figure 8 -- token counts per prompt segment and output lengths.
* Figures 13-17 / Table III -- accuracy levels per agent, benchmark, and
  backend model size.

The *mechanistic* quantities (prefill/decode latency, KV memory, energy,
queueing) are **not** calibrated; they come from the serving simulator's
hardware model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.sim.distributions import LogNormalSampler, UniformSampler


@dataclass(frozen=True)
class BenchmarkProfile:
    """Per-benchmark workload shape used by the behaviour oracle."""

    name: str
    tool_name: str
    # Reasoning difficulty model.
    base_step_prob: float          # chance one good reasoning step makes progress
    base_answer_prob: float        # chance the final answer is right once solved
    guess_prob: float              # chance of a lucky answer without solving
    solution_depth_range: Tuple[int, int]
    difficulty_beta: Tuple[float, float]
    # Prompt shape (token counts).
    instruction_tokens: int
    few_shot_example_tokens: int
    user_tokens: LogNormalSampler
    # Per-call output lengths by role.
    thought_tokens: LogNormalSampler      # ReAct-style reasoning + action
    answer_tokens: LogNormalSampler       # final answer call
    cot_output_tokens: LogNormalSampler   # single-shot CoT output
    reflection_tokens: LogNormalSampler   # reflection / evaluation outputs
    plan_tokens: LogNormalSampler         # LLMCompiler planner output
    # Tool behaviour.
    tool_observation_tokens: LogNormalSampler
    tool_latency: LogNormalSampler
    tool_uses_gpu: bool = False
    # WebShop-style partial credit for unsolved-but-plausible outcomes.
    partial_score: float = 0.0


@dataclass(frozen=True)
class AgentProfile:
    """Per-agent modifiers applied on top of a benchmark profile."""

    name: str
    step_factor: float = 1.0          # multiplies the per-step success prob
    answer_factor: float = 1.0        # multiplies the final-answer success prob
    answer_asymptote: float = 0.95    # upper bound on achievable accuracy
    iteration_overhead_s: float = 0.05   # framework "other" time per iteration
    # Per-benchmark overrides, keyed by benchmark name.
    step_factor_overrides: Dict[str, float] = field(default_factory=dict)
    answer_factor_overrides: Dict[str, float] = field(default_factory=dict)

    def step_factor_for(self, benchmark: str) -> float:
        return self.step_factor_overrides.get(benchmark, self.step_factor)

    def answer_factor_for(self, benchmark: str) -> float:
        return self.answer_factor_overrides.get(benchmark, self.answer_factor)


@dataclass(frozen=True)
class ModelQuality:
    """Reasoning-quality multipliers of a backend model."""

    model_name: str
    step_quality: float
    answer_quality: float


# ---------------------------------------------------------------------------
# Benchmark profiles (Table II workloads + the ShareGPT chatbot baseline).
# ---------------------------------------------------------------------------

BENCHMARK_PROFILES: Dict[str, BenchmarkProfile] = {
    "hotpotqa": BenchmarkProfile(
        name="hotpotqa",
        tool_name="wikipedia",
        base_step_prob=0.52,
        base_answer_prob=0.48,
        guess_prob=0.05,
        solution_depth_range=(2, 3),
        difficulty_beta=(2.0, 2.4),
        instruction_tokens=190,
        few_shot_example_tokens=160,
        user_tokens=LogNormalSampler(55.0, 0.35),
        thought_tokens=LogNormalSampler(62.0, 0.35),
        answer_tokens=LogNormalSampler(28.0, 0.3),
        cot_output_tokens=LogNormalSampler(260.0, 0.4),
        reflection_tokens=LogNormalSampler(120.0, 0.3),
        plan_tokens=LogNormalSampler(160.0, 0.3),
        tool_observation_tokens=LogNormalSampler(280.0, 0.5),
        tool_latency=LogNormalSampler(1.2, 0.45),
    ),
    "webshop": BenchmarkProfile(
        name="webshop",
        tool_name="webshop",
        base_step_prob=0.42,
        base_answer_prob=0.62,
        guess_prob=0.10,
        solution_depth_range=(4, 7),
        difficulty_beta=(2.2, 2.0),
        instruction_tokens=210,
        few_shot_example_tokens=230,
        user_tokens=LogNormalSampler(48.0, 0.3),
        thought_tokens=LogNormalSampler(34.0, 0.35),
        answer_tokens=LogNormalSampler(16.0, 0.25),
        cot_output_tokens=LogNormalSampler(220.0, 0.4),
        reflection_tokens=LogNormalSampler(110.0, 0.3),
        plan_tokens=LogNormalSampler(180.0, 0.3),
        tool_observation_tokens=LogNormalSampler(430.0, 0.5),
        tool_latency=LogNormalSampler(0.02, 0.35),
        partial_score=0.35,
    ),
    "math": BenchmarkProfile(
        name="math",
        tool_name="calculator",
        base_step_prob=0.46,
        base_answer_prob=0.45,
        guess_prob=0.04,
        solution_depth_range=(2, 4),
        difficulty_beta=(2.0, 2.0),
        instruction_tokens=160,
        few_shot_example_tokens=210,
        user_tokens=LogNormalSampler(95.0, 0.4),
        thought_tokens=LogNormalSampler(150.0, 0.4),
        answer_tokens=LogNormalSampler(45.0, 0.3),
        cot_output_tokens=LogNormalSampler(420.0, 0.4),
        reflection_tokens=LogNormalSampler(130.0, 0.3),
        plan_tokens=LogNormalSampler(150.0, 0.3),
        tool_observation_tokens=LogNormalSampler(70.0, 0.4),
        tool_latency=LogNormalSampler(1.4, 0.5),
    ),
    "humaneval": BenchmarkProfile(
        name="humaneval",
        tool_name="python_exec",
        base_step_prob=0.56,
        base_answer_prob=0.62,
        guess_prob=0.08,
        solution_depth_range=(1, 2),
        difficulty_beta=(1.8, 2.2),
        instruction_tokens=130,
        few_shot_example_tokens=190,
        user_tokens=LogNormalSampler(150.0, 0.4),
        thought_tokens=LogNormalSampler(210.0, 0.4),
        answer_tokens=LogNormalSampler(160.0, 0.35),
        cot_output_tokens=LogNormalSampler(330.0, 0.4),
        reflection_tokens=LogNormalSampler(140.0, 0.3),
        plan_tokens=LogNormalSampler(150.0, 0.3),
        tool_observation_tokens=LogNormalSampler(110.0, 0.4),
        tool_latency=LogNormalSampler(2.6, 0.4),
        tool_uses_gpu=True,
    ),
    # Non-agentic chatbot workload: a single LLM call per request.
    "sharegpt": BenchmarkProfile(
        name="sharegpt",
        tool_name="",
        base_step_prob=1.0,
        base_answer_prob=1.0,
        guess_prob=1.0,
        solution_depth_range=(1, 1),
        difficulty_beta=(2.0, 2.0),
        instruction_tokens=0,
        few_shot_example_tokens=0,
        user_tokens=LogNormalSampler(290.0, 0.9),
        thought_tokens=LogNormalSampler(250.0, 0.7),
        answer_tokens=LogNormalSampler(250.0, 0.7),
        cot_output_tokens=LogNormalSampler(250.0, 0.7),
        reflection_tokens=LogNormalSampler(80.0, 0.3),
        plan_tokens=LogNormalSampler(80.0, 0.3),
        tool_observation_tokens=LogNormalSampler(1.0, 0.1),
        tool_latency=LogNormalSampler(0.001, 0.1),
    ),
}


# ---------------------------------------------------------------------------
# Agent profiles (Table I agents).
# ---------------------------------------------------------------------------

AGENT_PROFILES: Dict[str, AgentProfile] = {
    "cot": AgentProfile(
        name="cot",
        step_factor=0.85,
        answer_factor=0.75,
        answer_asymptote=0.70,
        iteration_overhead_s=0.02,
    ),
    "react": AgentProfile(
        name="react",
        step_factor=1.0,
        answer_factor=1.0,
        answer_asymptote=0.82,
        iteration_overhead_s=0.05,
    ),
    "reflexion": AgentProfile(
        name="reflexion",
        step_factor=1.0,
        answer_factor=1.05,
        answer_asymptote=0.88,
        iteration_overhead_s=0.06,
    ),
    "lats": AgentProfile(
        name="lats",
        step_factor=1.05,
        answer_factor=1.15,
        answer_asymptote=0.84,
        iteration_overhead_s=0.08,
        answer_factor_overrides={"hotpotqa": 1.35},
    ),
    "chatbot": AgentProfile(
        name="chatbot",
        step_factor=1.0,
        answer_factor=1.0,
        answer_asymptote=1.0,
        iteration_overhead_s=0.0,
    ),
    "llmcompiler": AgentProfile(
        name="llmcompiler",
        step_factor=1.05,
        answer_factor=1.1,
        answer_asymptote=0.85,
        iteration_overhead_s=0.04,
        # DAG-style planning mis-fires on highly interdependent web navigation.
        step_factor_overrides={"webshop": 0.62},
        answer_factor_overrides={"webshop": 0.75},
    ),
}


# ---------------------------------------------------------------------------
# Backend model quality (Llama-3.1 family).
# ---------------------------------------------------------------------------

MODEL_QUALITY: Dict[str, ModelQuality] = {
    "llama-3.1-8b-instruct": ModelQuality(
        model_name="llama-3.1-8b-instruct", step_quality=1.0, answer_quality=1.0
    ),
    "llama-3.1-70b-instruct": ModelQuality(
        model_name="llama-3.1-70b-instruct", step_quality=1.32, answer_quality=1.42
    ),
}


def get_benchmark_profile(name: str) -> BenchmarkProfile:
    key = name.lower()
    if key not in BENCHMARK_PROFILES:
        raise KeyError(f"unknown benchmark: {name!r} (known: {sorted(BENCHMARK_PROFILES)})")
    return BENCHMARK_PROFILES[key]


def get_agent_profile(name: str) -> AgentProfile:
    key = name.lower()
    if key not in AGENT_PROFILES:
        raise KeyError(f"unknown agent: {name!r} (known: {sorted(AGENT_PROFILES)})")
    return AGENT_PROFILES[key]


def get_model_quality(model_name: str) -> ModelQuality:
    key = model_name.lower()
    if key in MODEL_QUALITY:
        return MODEL_QUALITY[key]
    if "8b" in key:
        return MODEL_QUALITY["llama-3.1-8b-instruct"]
    if "70b" in key:
        return MODEL_QUALITY["llama-3.1-70b-instruct"]
    raise KeyError(f"unknown backend model: {model_name!r}")
