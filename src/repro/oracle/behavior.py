"""Per-task behaviour oracle driving agent trajectories.

Each agent run owns one :class:`TaskOracle`, seeded from the experiment seed,
the task id, and the agent configuration, so repeated runs of the same
experiment are bit-identical while different tasks/agents/configs explore
different trajectories.

The oracle exposes exactly the decisions a real LLM would have made that the
cost analysis depends on:

* whether an iteration made reasoning progress (:meth:`attempt_step`),
* how many tokens each generated message has (:meth:`sample_output_tokens`),
* how large/slow each tool observation is,
* whether the final answer is correct (:meth:`judge_final_answer`), and
* whether a self-evaluation step notices a wrong answer
  (:meth:`evaluator_detects_failure`), which is what gates Reflexion retries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.oracle.accuracy import (
    answer_success_probability,
    step_success_probability,
)
from repro.oracle.calibration import (
    AgentProfile,
    BenchmarkProfile,
    ModelQuality,
)
from repro.sim.distributions import RandomStream


@dataclass(frozen=True)
class StepOutcome:
    """Result of one reasoning/acting iteration."""

    progressed: bool
    solved: bool
    progress: int
    solution_depth: int


class TaskOracle:
    """Stateful decision model for a single agent attempt at a single task."""

    #: output-length roles understood by :meth:`sample_output_tokens`.
    ROLES = ("thought", "answer", "cot", "reflection", "plan")

    def __init__(
        self,
        *,
        difficulty: float,
        solution_depth: int,
        benchmark: BenchmarkProfile,
        agent: AgentProfile,
        model: ModelQuality,
        num_few_shot: int,
        stream: RandomStream,
    ):
        if solution_depth < 1:
            raise ValueError("solution_depth must be >= 1")
        self.difficulty = max(0.0, min(1.0, difficulty))
        self.solution_depth = solution_depth
        self.benchmark = benchmark
        self.agent = agent
        self.model = model
        self.num_few_shot = num_few_shot
        self.stream = stream

        self.progress = 0
        self.reflection_round = 0
        self.steps_attempted = 0
        self.trials_started = 1
        # Latent per-task answer aptitude: whether this agent/model can answer
        # this task correctly is a property of the task, not an independent
        # coin flip per attempt -- retrying the same question does not help
        # unless the success *probability* itself improves (more reflections,
        # more candidate paths, a larger model).
        self._answer_latent = self.stream.random()

    # -- state -------------------------------------------------------------
    @property
    def solved(self) -> bool:
        return self.progress >= self.solution_depth

    def step_probability(self, num_candidates: int = 1) -> float:
        return step_success_probability(
            benchmark=self.benchmark,
            agent=self.agent,
            model=self.model,
            difficulty=self.difficulty,
            num_few_shot=self.num_few_shot,
            reflection_round=self.reflection_round,
            num_candidates=num_candidates,
        )

    def answer_probability(self, num_candidates: int = 1) -> float:
        return answer_success_probability(
            benchmark=self.benchmark,
            agent=self.agent,
            model=self.model,
            difficulty=self.difficulty,
            solved=self.solved,
            num_candidates=num_candidates,
        )

    # -- trajectory decisions ------------------------------------------------
    def attempt_step(self, num_candidates: int = 1) -> StepOutcome:
        """One reasoning/acting iteration; may advance task progress."""
        self.steps_attempted += 1
        progressed = self.stream.random() < self.step_probability(num_candidates)
        if progressed and not self.solved:
            self.progress += 1
        return StepOutcome(
            progressed=progressed,
            solved=self.solved,
            progress=self.progress,
            solution_depth=self.solution_depth,
        )

    def judge_final_answer(self, num_candidates: int = 1) -> bool:
        """Whether the produced final answer is actually correct."""
        return self._answer_latent < self.answer_probability(num_candidates)

    def evaluator_detects_failure(self, answer_correct: bool) -> bool:
        """Whether a self-evaluation (internal reward) flags the attempt as failed.

        Wrong answers are detected often but not always; correct answers are
        occasionally second-guessed, which is why reflective agents sometimes
        spend compute even when they were already right.
        """
        if answer_correct:
            return self.stream.random() < 0.08
        return self.stream.random() < 0.92

    def note_reflection(self) -> None:
        """Record a completed reflection (raises later step probabilities)."""
        self.reflection_round += 1

    def reset_trial(self) -> None:
        """Start a fresh Reflexion-style trial on the same task."""
        self.progress = 0
        self.trials_started += 1

    def score(self, answer_correct: bool) -> float:
        """Task score: exact-match for most benchmarks, partial credit on WebShop."""
        if answer_correct:
            return 1.0
        if self.solved:
            return self.benchmark.partial_score
        return 0.0

    # -- workload-shape samples -----------------------------------------------
    def sample_output_tokens(self, role: str) -> int:
        samplers = {
            "thought": self.benchmark.thought_tokens,
            "answer": self.benchmark.answer_tokens,
            "cot": self.benchmark.cot_output_tokens,
            "reflection": self.benchmark.reflection_tokens,
            "plan": self.benchmark.plan_tokens,
        }
        if role not in samplers:
            raise KeyError(f"unknown output role: {role!r} (known: {self.ROLES})")
        return max(1, round(samplers[role].sample(self.stream)))

    def sample_user_tokens(self) -> int:
        return max(1, round(self.benchmark.user_tokens.sample(self.stream)))

    def sample_tool_observation_tokens(self) -> int:
        return max(1, round(self.benchmark.tool_observation_tokens.sample(self.stream)))

    def sample_tool_latency(self) -> float:
        return max(0.0, self.benchmark.tool_latency.sample(self.stream))


def make_oracle(
    *,
    task,
    benchmark: BenchmarkProfile,
    agent: AgentProfile,
    model: ModelQuality,
    num_few_shot: int,
    seed_stream: RandomStream,
    attempt: int = 0,
) -> TaskOracle:
    """Build a :class:`TaskOracle` for ``task`` (anything with ``task_id``,
    ``difficulty`` and ``solution_depth`` attributes)."""
    stream = seed_stream.substream(
        f"oracle/{benchmark.name}/{agent.name}/{task.task_id}/{attempt}"
    )
    return TaskOracle(
        difficulty=task.difficulty,
        solution_depth=task.solution_depth,
        benchmark=benchmark,
        agent=agent,
        model=model,
        num_few_shot=num_few_shot,
        stream=stream,
    )
