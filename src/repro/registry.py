"""Case-insensitive name -> class registries for pluggable policies.

Shared by the scheduler-policy registry (:mod:`repro.llm.scheduler`) and the
router-policy registry (:mod:`repro.serving.cluster`); future policy families
(admission control, autoscaling) should reuse it rather than growing another
hand-rolled dict.
"""

from __future__ import annotations

from typing import Dict, List, Type, TypeVar

PolicyClass = TypeVar("PolicyClass", bound=type)


class PolicyRegistry:
    """Registers policy classes by their ``name`` attribute, case-insensitively."""

    def __init__(self, kind: str):
        self.kind = kind
        self.policies: Dict[str, type] = {}

    def register(self, policy_class: PolicyClass) -> PolicyClass:
        """Register ``policy_class`` under its ``name`` (usable as a decorator)."""
        self.policies[policy_class.name.lower()] = policy_class
        return policy_class

    def available(self) -> List[str]:
        return sorted(self.policies)

    def __contains__(self, name: str) -> bool:
        return isinstance(name, str) and name.lower() in self.policies

    def create(self, name: str):
        """Instantiate a registered policy by (case-insensitive) name."""
        key = name.lower()
        if key not in self.policies:
            raise ValueError(
                f"unknown {self.kind} {name!r}; known: {self.available()}"
            )
        return self.policies[key]()
