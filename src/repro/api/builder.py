"""System assembly: one place that turns a spec into runnable machinery.

:class:`SystemBuilder` owns every wiring decision the legacy entry points
(``SingleRequestRunner._build``, ``AgentServer.__init__``, ``run_at_qps``)
used to duplicate: environment creation, replica-pool and cluster
construction, client binding, workload instantiation (including the weighted
traffic-class mixture), autoscaler attachment, toolset assembly, and agent
creation with the experiment-scoped random streams.  The stream namespaces
intentionally match the legacy ones (``runner/...`` for single-request
characterization, ``serving/...`` for serving runs) so a one-replica FCFS
spec reproduces the legacy results bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.agents import create_agent
from repro.agents.base import BaseAgent
from repro.api.spec import AdmissionSpec, ExperimentSpec, PoolSpec, WeightedWorkload
from repro.llm import EngineConfig, LLMClient, SchedulerConfig
from repro.llm.models import get_model
from repro.llm.predictor import DecodeLengthPredictor
from repro.serving.admission import (
    AdmissionController,
    AdmissionPolicy,
    ClusterLoadProbe,
    build_admission_policy,
)
from repro.serving.autoscaler import Autoscaler
from repro.serving.cluster import Cluster, ReplicaPool
from repro.serving.forecast import build_forecaster
from repro.sim import Environment, RandomStream
from repro.tools.base import ToolSet
from repro.workloads import create_workload
from repro.workloads.base import Workload


@dataclass
class TrafficClassRuntime:
    """One traffic class of the mixture, bound to live machinery.

    ``shape`` is the class's own rate modulation (``None`` = steady): the
    load generator superposes each shaped class as its own arrival process.
    ``tenants`` is the class's own user population (``None`` = inherit the
    arrival-level tenant spec, or untenanted).  ``sessions`` is the class's
    own multi-turn conversation shape (``None`` = inherit the arrival-level
    session spec, or single-shot).
    """

    label: str
    agent: str
    workload: Workload
    weight: float
    agent_config: object  # AgentConfig
    needs_tools: bool = True
    shape: object = None  # Optional[RateShape]
    tenants: object = None  # Optional[TenantSpec]
    sessions: object = None  # Optional[SessionSpec]


@dataclass
class System:
    """Fully assembled experiment machinery, ready to be driven.

    ``workload`` is the legacy single workload; it is ``None`` for mixture
    specs, whose per-class workloads live in ``traffic``.
    """

    spec: ExperimentSpec
    env: Environment
    cluster: Cluster
    client: LLMClient
    workload: Optional[Workload]
    stream: RandomStream
    traffic: Dict[str, TrafficClassRuntime] = field(default_factory=dict)
    autoscaler: Optional[Autoscaler] = None
    admission: Optional[AdmissionController] = None

    def build_toolset(self) -> Optional[ToolSet]:
        """Fresh toolset bound to this system (``None`` for tool-less agents)."""
        if not self.spec.needs_tools:
            return None
        return self.workload.build_toolset(self.env, self.client.tokenizer, self.client)

    def create_agent(
        self,
        seed_stream: RandomStream,
        toolset: Optional[ToolSet] = None,
        build_toolset: bool = True,
    ) -> BaseAgent:
        """Instantiate the spec's agent bound to this system."""
        if toolset is None and build_toolset:
            toolset = self.build_toolset()
        return create_agent(
            self.spec.agent,
            env=self.env,
            client=self.client,
            workload=self.workload,
            toolset=toolset,
            config=self.spec.agent_config,
            seed_stream=seed_stream,
        )

    def create_class_agent(self, label: str, seed_stream: RandomStream) -> BaseAgent:
        """Instantiate the agent of traffic class ``label`` bound to its workload.

        The agent stamps its traffic class onto every LLM request it issues,
        which is what pool-aware cluster routing classifies on.
        """
        runtime = self.traffic[label]
        toolset = None
        if runtime.needs_tools:
            toolset = runtime.workload.build_toolset(
                self.env, self.client.tokenizer, self.client
            )
        agent = create_agent(
            runtime.agent,
            env=self.env,
            client=self.client,
            workload=runtime.workload,
            toolset=toolset,
            config=runtime.agent_config,
            seed_stream=seed_stream,
        )
        agent.request_metadata["traffic_class"] = label
        return agent


class SystemBuilder:
    """Builds a :class:`System` from an :class:`ExperimentSpec`."""

    def __init__(self, spec: ExperimentSpec):
        self.spec = spec

    def engine_config(self, pool: Optional[PoolSpec] = None) -> EngineConfig:
        """Engine configuration for one pool (or the legacy default pool)."""
        spec = self.spec
        model = pool.model if pool is not None else spec.model
        scheduler_policy = pool.scheduler if pool is not None else spec.scheduler
        prefix_caching = spec.enable_prefix_caching
        if pool is not None and pool.enable_prefix_caching is not None:
            prefix_caching = pool.enable_prefix_caching
        max_decode_chunk = spec.max_decode_chunk
        if pool is not None and pool.max_decode_chunk is not None:
            max_decode_chunk = pool.max_decode_chunk
        scheduler_kwargs = {}
        if spec.max_num_seqs is not None:
            scheduler_kwargs["max_num_seqs"] = spec.max_num_seqs
        kv_cache_fraction = spec.kv_cache_fraction
        if pool is not None and pool.kv_cache_fraction is not None:
            kv_cache_fraction = pool.kv_cache_fraction
        prefill_chunk_tokens = spec.prefill_chunk_tokens
        if pool is not None and pool.prefill_chunk_tokens is not None:
            prefill_chunk_tokens = pool.prefill_chunk_tokens
        speculative = spec.speculative
        if pool is not None and pool.speculative is not None:
            speculative = pool.speculative
        hardware = spec.hardware
        if pool is not None and pool.hardware is not None:
            hardware = pool.hardware
        return EngineConfig(
            model=get_model(model),
            enable_prefix_caching=prefix_caching,
            scheduler=SchedulerConfig(
                policy=scheduler_policy,
                predictor_error=spec.predictor_error,
                predictor_seed=spec.seed,
                **scheduler_kwargs,
            ),
            max_decode_chunk=max_decode_chunk,
            decode_fast_forward=spec.decode_fast_forward,
            kv_cache_fraction=kv_cache_fraction,
            prefill_chunk_tokens=prefill_chunk_tokens,
            speculative=speculative,
            # None keeps EngineConfig.resolved_cluster() on cluster_for_model,
            # the golden-pinned legacy hardware.
            cluster=hardware.resolve() if hardware is not None else None,
        )

    def stream_name(self) -> str:
        """Experiment-scoped random-stream namespace (legacy-compatible)."""
        if self.spec.arrival.process == "single":
            return f"runner/{self.spec.agent}/{self.spec.workload}"
        return f"serving/{self.spec.agent}/{self.spec.workload}"

    def build_cluster(self, env: Environment) -> Cluster:
        """Assemble the replica fleet: explicit pools, or the legacy default."""
        spec = self.spec
        predictor = DecodeLengthPredictor(spec.predictor_error, seed=spec.seed)
        if spec.pools:
            pools = [
                ReplicaPool(
                    env,
                    self.engine_config(pool),
                    name=pool.name,
                    num_replicas=pool.replicas,
                    router=pool.router,
                    traffic_classes=pool.traffic_classes,
                    max_predicted_decode=pool.max_predicted_decode,
                    accepts_spill=pool.accepts_spill,
                )
                for pool in spec.pools
            ]
            return Cluster(
                env,
                pools=pools,
                predictor=predictor,
                classification=spec.pool_classification,
                class_slos=dict(spec.measurement.class_slos),
                default_slo=spec.measurement.slo_p95_s,
            )
        return Cluster(
            env,
            self.engine_config(),
            num_replicas=spec.replicas,
            router=spec.router,
            predictor=predictor,
        )

    def build_traffic(self) -> Dict[str, TrafficClassRuntime]:
        """Instantiate the workload of every traffic class in the mixture."""
        spec = self.spec
        traffic: Dict[str, TrafficClassRuntime] = {}
        for mix in spec.workloads:
            traffic[mix.name] = TrafficClassRuntime(
                label=mix.name,
                agent=mix.agent,
                workload=create_workload(mix.workload, seed=spec.seed),
                weight=mix.weight,
                agent_config=mix.agent_config or spec.agent_config,
                needs_tools=mix.needs_tools,
                shape=mix.shape,
                tenants=mix.tenants,
                sessions=mix.sessions,
            )
        return traffic

    def admission_spec(self) -> AdmissionSpec:
        """The effective admission spec (legacy fields mapped onto the registry).

        ``admission=None`` preserves the historical door behaviour exactly:
        the enforced concurrency gate when ``max_concurrency`` is set,
        otherwise the open door.
        """
        if self.spec.admission is not None:
            return self.spec.admission
        if self.spec.max_concurrency is not None:
            return AdmissionSpec(
                policy="concurrency", max_concurrency=self.spec.max_concurrency
            )
        return AdmissionSpec()

    def _admission_policy(
        self, sub: AdmissionSpec, probe: ClusterLoadProbe
    ) -> AdmissionPolicy:
        """One policy instance from one (sub-)spec, with inherited defaults."""
        slo = sub.slo_p95_s
        if slo is None and sub.policy.lower() == "slo-shed":
            slo = self.spec.measurement.slo_for(sub.protect_class or None)
        # A cooperative gate projects at the autoscaler's forecast horizon,
        # so both controllers reason about the same look-ahead window.
        horizon_s = 10.0
        if self.spec.autoscaler is not None:
            horizon_s = self.spec.autoscaler.horizon_s
        return build_admission_policy(
            sub.policy,
            max_concurrency=(
                sub.max_concurrency
                if sub.max_concurrency is not None
                else self.spec.max_concurrency
            ),
            rate_qps=sub.rate_qps,
            burst=sub.burst,
            overload_action=sub.overload_action,
            slo_p95_s=slo,
            window_s=sub.window_s,
            enter_factor=sub.enter_factor,
            exit_factor=sub.exit_factor,
            protect_class=sub.protect_class or None,
            load_probe=probe,
            cooperative=sub.cooperative,
            horizon_s=horizon_s,
            user_rpm=sub.user_rpm,
            app_rpm=sub.app_rpm,
            kv_threshold=sub.kv_threshold,
            queue_threshold=sub.queue_threshold,
        )

    def build_admission(self, cluster: Cluster) -> AdmissionController:
        """Assemble the door controller: per-class policies + pool attribution.

        Each traffic class with an override gets its own policy instance (so
        bucket and hysteresis state are per class); rejections are attributed
        to the pool that claims the class (the default pool otherwise).
        Policies read the cluster's enqueued backlog through the shared
        :class:`ClusterLoadProbe`, so door decisions see fleet load before
        any work is enqueued.
        """
        spec = self.admission_spec()
        probe = ClusterLoadProbe(cluster)
        class_policies = {
            label: self._admission_policy(sub, probe)
            for label, sub in spec.per_class
        }
        class_pools: Dict[str, ReplicaPool] = {}
        for pool in cluster.pools.values():
            for traffic_class in pool.traffic_classes:
                class_pools.setdefault(traffic_class, pool)
        return AdmissionController(
            default_policy=self._admission_policy(spec, probe),
            class_policies=class_policies,
            class_pools=class_pools,
            default_pool=cluster.default_pool,
        )

    def build_autoscaler(self, env: Environment, cluster: Cluster) -> Optional[Autoscaler]:
        """The spec's autoscaler wired to its target pool (``None`` if unset)."""
        scaling = self.spec.autoscaler
        if scaling is None:
            return None
        pool = cluster.pool(scaling.pool) if scaling.pool else cluster.default_pool
        # Predictive mode needs a forecaster fed by the arrival timeline (the
        # serving driver feeds it) and the cluster's shared decode predictor
        # for backlog pricing; reactive mode takes neither, keeping the
        # golden-pinned legacy behaviour untouched.
        forecaster = None
        if scaling.mode == "predictive":
            forecaster = build_forecaster(
                scaling.forecaster,
                window_s=scaling.forecaster_window_s,
                bucket_s=scaling.forecaster_bucket_s,
                alpha=scaling.forecaster_alpha,
                beta=scaling.forecaster_beta,
            )
        return Autoscaler(
            env,
            pool,
            min_replicas=scaling.min_replicas,
            max_replicas=scaling.max_replicas,
            check_interval_s=scaling.check_interval_s,
            warmup_s=scaling.warmup_s,
            cooldown_s=scaling.cooldown_s,
            scale_up_pending_per_replica=scaling.scale_up_pending_per_replica,
            scale_down_pending_per_replica=scaling.scale_down_pending_per_replica,
            p95_slo_s=scaling.p95_slo_s,
            p95_window_s=scaling.p95_window_s,
            mode=scaling.mode,
            forecaster=forecaster,
            horizon_s=scaling.horizon_s,
            predictor=cluster.predictor,
        )

    def build(self) -> System:
        """Assemble environment, cluster, client, workloads, and streams."""
        spec = self.spec
        env = Environment()
        cluster = self.build_cluster(env)
        client = LLMClient(env, cluster)
        # Mixture specs serve only their traffic classes; the legacy single
        # workload would be dead weight (hotpotqa builds a synthetic corpus).
        workload = (
            create_workload(spec.workload, seed=spec.seed) if not spec.workloads else None
        )
        stream = RandomStream(spec.seed, self.stream_name())
        traffic = self.build_traffic()
        autoscaler = self.build_autoscaler(env, cluster)
        admission = self.build_admission(cluster)
        return System(
            spec=spec,
            env=env,
            cluster=cluster,
            client=client,
            workload=workload,
            stream=stream,
            traffic=traffic,
            autoscaler=autoscaler,
            admission=admission,
        )
