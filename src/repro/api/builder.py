"""System assembly: one place that turns a spec into runnable machinery.

:class:`SystemBuilder` owns every wiring decision the legacy entry points
(``SingleRequestRunner._build``, ``AgentServer.__init__``, ``run_at_qps``)
used to duplicate: environment creation, engine-cluster construction, client
binding, workload instantiation, toolset assembly, and agent creation with
the experiment-scoped random streams.  The stream namespaces intentionally
match the legacy ones (``runner/...`` for single-request characterization,
``serving/...`` for serving runs) so a one-replica FCFS spec reproduces the
legacy results bit-for-bit at the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.agents import create_agent
from repro.agents.base import BaseAgent
from repro.api.spec import ExperimentSpec
from repro.llm import EngineConfig, LLMClient, SchedulerConfig
from repro.llm.models import get_model
from repro.serving.cluster import Cluster
from repro.sim import Environment, RandomStream
from repro.tools.base import ToolSet
from repro.workloads import create_workload
from repro.workloads.base import Workload


@dataclass
class System:
    """Fully assembled experiment machinery, ready to be driven."""

    spec: ExperimentSpec
    env: Environment
    cluster: Cluster
    client: LLMClient
    workload: Workload
    stream: RandomStream

    def build_toolset(self) -> Optional[ToolSet]:
        """Fresh toolset bound to this system (``None`` for tool-less agents)."""
        if not self.spec.needs_tools:
            return None
        return self.workload.build_toolset(self.env, self.client.tokenizer, self.client)

    def create_agent(
        self,
        seed_stream: RandomStream,
        toolset: Optional[ToolSet] = None,
        build_toolset: bool = True,
    ) -> BaseAgent:
        """Instantiate the spec's agent bound to this system."""
        if toolset is None and build_toolset:
            toolset = self.build_toolset()
        return create_agent(
            self.spec.agent,
            env=self.env,
            client=self.client,
            workload=self.workload,
            toolset=toolset,
            config=self.spec.agent_config,
            seed_stream=seed_stream,
        )


class SystemBuilder:
    """Builds a :class:`System` from an :class:`ExperimentSpec`."""

    def __init__(self, spec: ExperimentSpec):
        self.spec = spec

    def engine_config(self) -> EngineConfig:
        """Per-replica engine configuration derived from the spec."""
        return EngineConfig(
            model=get_model(self.spec.model),
            enable_prefix_caching=self.spec.enable_prefix_caching,
            scheduler=SchedulerConfig(policy=self.spec.scheduler),
            max_decode_chunk=self.spec.max_decode_chunk,
        )

    def stream_name(self) -> str:
        """Experiment-scoped random-stream namespace (legacy-compatible)."""
        if self.spec.arrival.process == "single":
            return f"runner/{self.spec.agent}/{self.spec.workload}"
        return f"serving/{self.spec.agent}/{self.spec.workload}"

    def build(self) -> System:
        """Assemble environment, cluster, client, workload, and streams."""
        spec = self.spec
        env = Environment()
        cluster = Cluster(
            env,
            self.engine_config(),
            num_replicas=spec.replicas,
            router=spec.router,
        )
        client = LLMClient(env, cluster)
        workload = create_workload(spec.workload, seed=spec.seed)
        stream = RandomStream(spec.seed, self.stream_name())
        return System(
            spec=spec,
            env=env,
            cluster=cluster,
            client=client,
            workload=workload,
            stream=stream,
        )
