"""Declarative experiment specification: the single front door's vocabulary.

An :class:`ExperimentSpec` captures everything needed to reproduce an
experiment -- model, replica count, scheduler and router policies, agent,
workload, arrival process, seed, and measurement window -- as one frozen,
validated, serialisable value.  Construction is the only place validation
happens; everything downstream (:class:`~repro.api.builder.SystemBuilder`,
the runners) can assume a well-formed spec.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

from repro.agents import AgentConfig
from repro.agents.registry import AGENT_CLASSES, available_agents
from repro.llm.models import get_model
from repro.llm.scheduler import SCHEDULER_POLICIES, available_scheduler_policies
from repro.serving.cluster import ROUTER_POLICIES, available_router_policies
from repro.workloads import available_workloads

#: Arrival processes understood by the experiment runners.
ARRIVAL_PROCESSES: Tuple[str, ...] = ("single", "poisson", "uniform", "sequential")


@dataclass(frozen=True)
class ArrivalSpec:
    """How requests reach the system.

    * ``single`` -- one request at a time, back to back (the paper's
      characterization setup; Section IV-A/IV-B).
    * ``poisson`` -- open-loop Poisson arrivals at ``qps`` (Section IV-C).
    * ``uniform`` -- open-loop deterministic arrivals at ``qps``.
    * ``sequential`` -- closed-loop: all requests queued at t=0, served one
      at a time (the paper's sequential serving baseline).
    """

    process: str = "single"
    qps: Optional[float] = None
    num_requests: int = 20
    task_pool_size: int = 48

    def __post_init__(self) -> None:
        if self.process not in ARRIVAL_PROCESSES:
            raise ValueError(
                f"unknown arrival process {self.process!r}; known: {list(ARRIVAL_PROCESSES)}"
            )
        if self.num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        if self.task_pool_size < 1:
            raise ValueError("task_pool_size must be >= 1")
        if self.process in ("poisson", "uniform"):
            if self.qps is None or self.qps <= 0:
                raise ValueError(f"{self.process} arrivals require qps > 0")
        elif self.qps is not None:
            raise ValueError(f"{self.process} arrivals do not take a qps")


@dataclass(frozen=True)
class MeasurementSpec:
    """What part of the run contributes to reported metrics.

    ``warmup_requests`` earliest-*completing* requests are excluded from the
    serving metrics, mimicking the warm-up window real serving measurements
    discard: the measured window (duration, energy, GPU runtime, KV stats)
    opens at the instant the last warm-up request completes, and the
    latency/accuracy distributions and request counts cover only the
    remaining requests.  The default measures everything, which is what the
    paper's single-engine experiments do.
    """

    warmup_requests: int = 0

    def __post_init__(self) -> None:
        if self.warmup_requests < 0:
            raise ValueError("warmup_requests must be >= 0")


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment, fully described.

    ``ExperimentSpec(replicas=1, scheduler="fcfs")`` driven through
    :func:`repro.api.run_experiment` reproduces the legacy
    ``SingleRequestRunner`` / ``run_at_qps`` results bit-for-bit at the same
    seed; raising ``replicas`` and switching ``scheduler`` / ``router``
    policies explores the multi-replica design space on the same workloads.
    """

    agent: str = "react"
    workload: str = "hotpotqa"
    model: str = "8b"
    replicas: int = 1
    scheduler: str = "fcfs"
    router: str = "round-robin"
    enable_prefix_caching: bool = True
    agent_config: AgentConfig = field(default_factory=AgentConfig)
    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)
    measurement: MeasurementSpec = field(default_factory=MeasurementSpec)
    seed: int = 0
    max_decode_chunk: int = 1
    max_concurrency: Optional[int] = None

    def __post_init__(self) -> None:
        if self.agent.lower() not in AGENT_CLASSES:
            raise ValueError(f"unknown agent {self.agent!r}; known: {available_agents()}")
        if self.workload.lower() not in available_workloads():
            raise ValueError(
                f"unknown workload {self.workload!r}; known: {available_workloads()}"
            )
        try:
            get_model(self.model)
        except KeyError as error:
            raise ValueError(str(error)) from None
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.scheduler.lower() not in SCHEDULER_POLICIES:
            raise ValueError(
                f"unknown scheduler policy {self.scheduler!r}; "
                f"known: {available_scheduler_policies()}"
            )
        if self.router.lower() not in ROUTER_POLICIES:
            raise ValueError(
                f"unknown router policy {self.router!r}; "
                f"known: {available_router_policies()}"
            )
        if self.max_decode_chunk < 1:
            raise ValueError("max_decode_chunk must be >= 1")
        if self.max_concurrency is not None and self.max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1 (or None for unlimited)")
        if self.measurement.warmup_requests >= self.arrival.num_requests:
            raise ValueError(
                "measurement.warmup_requests must be smaller than "
                "arrival.num_requests (the measured window would be empty)"
            )

    # -- derived -------------------------------------------------------------
    @property
    def needs_tools(self) -> bool:
        return self.agent.lower() not in ("cot", "chatbot")

    def with_overrides(self, **overrides: Any) -> "ExperimentSpec":
        """Copy with fields replaced (validation reruns on construction)."""
        return replace(self, **overrides)

    def at_qps(self, qps: float, **arrival_overrides: Any) -> "ExperimentSpec":
        """Copy targeting open-loop Poisson arrivals at ``qps``."""
        arrival = replace(self.arrival, process="poisson", qps=qps, **arrival_overrides)
        return replace(self, arrival=arrival)

    # -- serialisation --------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-ready); inverse of :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        data = dict(payload)
        if isinstance(data.get("agent_config"), dict):
            data["agent_config"] = AgentConfig(**data["agent_config"])
        if isinstance(data.get("arrival"), dict):
            data["arrival"] = ArrivalSpec(**data["arrival"])
        if isinstance(data.get("measurement"), dict):
            data["measurement"] = MeasurementSpec(**data["measurement"])
        return cls(**data)
