"""Declarative experiment specification: the single front door's vocabulary.

An :class:`ExperimentSpec` captures everything needed to reproduce an
experiment -- model, replica pools, scheduler and router policies, agent,
workload mixture, autoscaling, arrival process, seed, and measurement window
-- as one frozen, validated, serialisable value.  Construction is the only
place validation happens; everything downstream
(:class:`~repro.api.builder.SystemBuilder`, the runners) can assume a
well-formed spec.

Fleet vocabulary (the paper's Table IV datacenter scenario):

* :class:`PoolSpec` -- one named replica pool with its own model, size,
  scheduler, router, and the traffic it prefers (explicit traffic classes
  and/or a predicted-decode-length bound),
* :class:`WeightedWorkload` -- one traffic class of a workload mixture: an
  (agent, workload) pair with a sampling weight,
* :class:`AutoscalerSpec` -- elastic sizing of one pool from load signals
  (queue depth, rolling p95) with warm-up cost and cooldown.

Single-pool, single-workload specs (the default fields) are unchanged and
reproduce the legacy results bit-for-bit.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

from repro.agents import AgentConfig
from repro.agents.registry import AGENT_CLASSES, available_agents
from repro.llm.models import get_model
from repro.llm.scheduler import SCHEDULER_POLICIES, available_scheduler_policies
from repro.serving.cluster import ROUTER_POLICIES, available_router_policies
from repro.workloads import available_workloads

#: Arrival processes understood by the experiment runners.
ARRIVAL_PROCESSES: Tuple[str, ...] = ("single", "poisson", "uniform", "sequential")

#: Agents that run without a toolset.
TOOLLESS_AGENTS: Tuple[str, ...] = ("cot", "chatbot")


@dataclass(frozen=True)
class ArrivalSpec:
    """How requests reach the system.

    * ``single`` -- one request at a time, back to back (the paper's
      characterization setup; Section IV-A/IV-B).
    * ``poisson`` -- open-loop Poisson arrivals at ``qps`` (Section IV-C).
    * ``uniform`` -- open-loop deterministic arrivals at ``qps``.
    * ``sequential`` -- closed-loop: all requests queued at t=0, served one
      at a time (the paper's sequential serving baseline).
    """

    process: str = "single"
    qps: Optional[float] = None
    num_requests: int = 20
    task_pool_size: int = 48

    def __post_init__(self) -> None:
        if self.process not in ARRIVAL_PROCESSES:
            raise ValueError(
                f"unknown arrival process {self.process!r}; known: {list(ARRIVAL_PROCESSES)}"
            )
        if self.num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        if self.task_pool_size < 1:
            raise ValueError("task_pool_size must be >= 1")
        if self.process in ("poisson", "uniform"):
            if self.qps is None or self.qps <= 0:
                raise ValueError(f"{self.process} arrivals require qps > 0")
        elif self.qps is not None:
            raise ValueError(f"{self.process} arrivals do not take a qps")


@dataclass(frozen=True)
class MeasurementSpec:
    """What part of the run contributes to reported metrics.

    ``warmup_requests`` earliest-*completing* requests are excluded from the
    serving metrics, mimicking the warm-up window real serving measurements
    discard: the measured window (duration, energy, GPU runtime, KV stats)
    opens at the instant the last warm-up request completes, and the
    latency/accuracy distributions and request counts cover only the
    remaining requests.  The default measures everything, which is what the
    paper's single-engine experiments do.
    """

    warmup_requests: int = 0

    def __post_init__(self) -> None:
        if self.warmup_requests < 0:
            raise ValueError("warmup_requests must be >= 0")


@dataclass(frozen=True)
class PoolSpec:
    """One named replica pool of a heterogeneous fleet.

    ``traffic_classes`` names the :class:`WeightedWorkload` labels this pool
    prefers; ``max_predicted_decode`` additionally (or instead) claims every
    request whose predicted decode length fits the bound.  ``None`` for
    ``enable_prefix_caching`` / ``max_decode_chunk`` inherits the experiment
    defaults.
    """

    name: str
    model: str = "8b"
    replicas: int = 1
    scheduler: str = "fcfs"
    router: str = "round-robin"
    traffic_classes: Tuple[str, ...] = ()
    max_predicted_decode: Optional[int] = None
    accepts_spill: bool = True
    enable_prefix_caching: Optional[bool] = None
    max_decode_chunk: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("pool name must be non-empty")
        if self.replicas < 1:
            raise ValueError(f"pool {self.name!r}: replicas must be >= 1")
        try:
            get_model(self.model)
        except KeyError as error:
            raise ValueError(str(error)) from None
        if self.scheduler.lower() not in SCHEDULER_POLICIES:
            raise ValueError(
                f"pool {self.name!r}: unknown scheduler policy {self.scheduler!r}; "
                f"known: {available_scheduler_policies()}"
            )
        if self.router.lower() not in ROUTER_POLICIES:
            raise ValueError(
                f"pool {self.name!r}: unknown router policy {self.router!r}; "
                f"known: {available_router_policies()}"
            )
        if self.max_predicted_decode is not None and self.max_predicted_decode < 1:
            raise ValueError(f"pool {self.name!r}: max_predicted_decode must be >= 1")
        if self.max_decode_chunk is not None and self.max_decode_chunk < 1:
            raise ValueError(f"pool {self.name!r}: max_decode_chunk must be >= 1")
        if not isinstance(self.traffic_classes, tuple):
            object.__setattr__(self, "traffic_classes", tuple(self.traffic_classes))


@dataclass(frozen=True)
class WeightedWorkload:
    """One traffic class of a workload mixture: an (agent, workload) pair.

    ``name`` labels the class (defaults to the workload name); the mixture
    load generator tags every sampled request with it, and pools claim
    classes through :attr:`PoolSpec.traffic_classes`.  ``agent_config=None``
    inherits the experiment-level agent config.
    """

    agent: str = "react"
    workload: str = "hotpotqa"
    weight: float = 1.0
    name: str = ""
    agent_config: Optional[AgentConfig] = None

    def __post_init__(self) -> None:
        if not self.name:
            object.__setattr__(self, "name", self.workload)
        if self.agent.lower() not in AGENT_CLASSES:
            raise ValueError(f"unknown agent {self.agent!r}; known: {available_agents()}")
        if self.workload.lower() not in available_workloads():
            raise ValueError(
                f"unknown workload {self.workload!r}; known: {available_workloads()}"
            )
        if self.weight <= 0:
            raise ValueError(f"traffic class {self.name!r}: weight must be > 0")

    @property
    def needs_tools(self) -> bool:
        return self.agent.lower() not in TOOLLESS_AGENTS


@dataclass(frozen=True)
class AutoscalerSpec:
    """Elastic sizing of one pool from load signals.

    ``pool=""`` targets the default (first) pool.  Scale-up triggers when
    pending requests per provisioned replica exceed
    ``scale_up_pending_per_replica`` or the rolling p95 of LLM latencies
    violates ``p95_slo_s`` (when set); scale-down when the queue falls below
    ``scale_down_pending_per_replica`` with no SLO pressure.  New replicas
    pay for capacity immediately but take traffic only after ``warmup_s``.
    """

    pool: str = ""
    min_replicas: int = 1
    max_replicas: int = 4
    check_interval_s: float = 2.0
    warmup_s: float = 5.0
    cooldown_s: float = 0.0
    scale_up_pending_per_replica: float = 4.0
    scale_down_pending_per_replica: float = 1.0
    p95_slo_s: Optional[float] = None
    p95_window_s: float = 30.0

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ValueError("autoscaler min_replicas must be >= 1")
        if self.max_replicas < self.min_replicas:
            raise ValueError("autoscaler max_replicas must be >= min_replicas")
        if self.check_interval_s <= 0:
            raise ValueError("autoscaler check_interval_s must be > 0")
        if self.warmup_s < 0 or self.cooldown_s < 0:
            raise ValueError("autoscaler warm-up/cooldown must be >= 0")
        if self.scale_down_pending_per_replica >= self.scale_up_pending_per_replica:
            raise ValueError(
                "autoscaler scale-down threshold must be below the scale-up threshold"
            )
        if self.p95_slo_s is not None and self.p95_slo_s <= 0:
            raise ValueError("autoscaler p95_slo_s must be > 0 (or None)")
        if self.p95_window_s <= 0:
            raise ValueError("autoscaler p95_window_s must be > 0")


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment, fully described.

    ``ExperimentSpec(replicas=1, scheduler="fcfs")`` driven through
    :func:`repro.api.run_experiment` reproduces the legacy
    ``SingleRequestRunner`` / ``run_at_qps`` results bit-for-bit at the same
    seed; raising ``replicas`` and switching ``scheduler`` / ``router``
    policies explores the multi-replica design space on the same workloads.
    """

    agent: str = "react"
    workload: str = "hotpotqa"
    model: str = "8b"
    replicas: int = 1
    scheduler: str = "fcfs"
    router: str = "round-robin"
    enable_prefix_caching: bool = True
    agent_config: AgentConfig = field(default_factory=AgentConfig)
    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)
    measurement: MeasurementSpec = field(default_factory=MeasurementSpec)
    seed: int = 0
    max_decode_chunk: int = 1
    max_concurrency: Optional[int] = None
    # -- fleet extensions (empty/None = legacy single-pool behaviour) --------
    pools: Tuple[PoolSpec, ...] = ()
    workloads: Tuple[WeightedWorkload, ...] = ()
    autoscaler: Optional[AutoscalerSpec] = None
    # Relative error of the decode-length predictor used by SJF scheduling
    # and decode-length pool classification (0.0 = perfect oracle).
    predictor_error: float = 0.0

    def __post_init__(self) -> None:
        if self.agent.lower() not in AGENT_CLASSES:
            raise ValueError(f"unknown agent {self.agent!r}; known: {available_agents()}")
        if self.workload.lower() not in available_workloads():
            raise ValueError(
                f"unknown workload {self.workload!r}; known: {available_workloads()}"
            )
        try:
            get_model(self.model)
        except KeyError as error:
            raise ValueError(str(error)) from None
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.scheduler.lower() not in SCHEDULER_POLICIES:
            raise ValueError(
                f"unknown scheduler policy {self.scheduler!r}; "
                f"known: {available_scheduler_policies()}"
            )
        if self.router.lower() not in ROUTER_POLICIES:
            raise ValueError(
                f"unknown router policy {self.router!r}; "
                f"known: {available_router_policies()}"
            )
        if self.max_decode_chunk < 1:
            raise ValueError("max_decode_chunk must be >= 1")
        if self.max_concurrency is not None and self.max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1 (or None for unlimited)")
        if self.measurement.warmup_requests >= self.arrival.num_requests:
            raise ValueError(
                "measurement.warmup_requests must be smaller than "
                "arrival.num_requests (the measured window would be empty)"
            )
        if self.predictor_error < 0:
            raise ValueError("predictor_error must be >= 0")
        self._validate_fleet()

    def _validate_fleet(self) -> None:
        if not isinstance(self.pools, tuple):
            object.__setattr__(self, "pools", tuple(self.pools))
        if not isinstance(self.workloads, tuple):
            object.__setattr__(self, "workloads", tuple(self.workloads))
        pool_names = [pool.name for pool in self.pools]
        if len(set(pool_names)) != len(pool_names):
            raise ValueError(f"duplicate pool names: {pool_names}")
        class_labels = [mix.name for mix in self.workloads]
        if len(set(class_labels)) != len(class_labels):
            raise ValueError(f"duplicate traffic-class labels: {class_labels}")
        if self.workloads:
            if self.arrival.process not in ("poisson", "uniform"):
                raise ValueError(
                    "workload mixtures require an open-loop arrival process "
                    "(poisson or uniform)"
                )
            known = {label.lower() for label in class_labels}
            for pool in self.pools:
                for traffic_class in pool.traffic_classes:
                    if traffic_class.lower() not in known:
                        raise ValueError(
                            f"pool {pool.name!r} claims unknown traffic class "
                            f"{traffic_class!r}; mixture classes: {sorted(known)}"
                        )
        if self.autoscaler is not None:
            if self.arrival.process == "single":
                raise ValueError(
                    "autoscaling requires a serving arrival process, not 'single'"
                )
            if self.autoscaler.pool and self.autoscaler.pool not in pool_names:
                raise ValueError(
                    f"autoscaler targets unknown pool {self.autoscaler.pool!r}; "
                    f"known: {pool_names or ['default']}"
                )

    # -- derived -------------------------------------------------------------
    @property
    def needs_tools(self) -> bool:
        if self.workloads:
            return any(mix.needs_tools for mix in self.workloads)
        return self.agent.lower() not in TOOLLESS_AGENTS

    def with_overrides(self, **overrides: Any) -> "ExperimentSpec":
        """Copy with fields replaced (validation reruns on construction)."""
        return replace(self, **overrides)

    def at_qps(self, qps: float, **arrival_overrides: Any) -> "ExperimentSpec":
        """Copy targeting open-loop Poisson arrivals at ``qps``."""
        arrival = replace(self.arrival, process="poisson", qps=qps, **arrival_overrides)
        return replace(self, arrival=arrival)

    # -- serialisation --------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-ready); inverse of :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        data = dict(payload)
        if isinstance(data.get("agent_config"), dict):
            data["agent_config"] = AgentConfig(**data["agent_config"])
        if isinstance(data.get("arrival"), dict):
            data["arrival"] = ArrivalSpec(**data["arrival"])
        if isinstance(data.get("measurement"), dict):
            data["measurement"] = MeasurementSpec(**data["measurement"])
        if data.get("pools"):
            data["pools"] = tuple(
                PoolSpec(**dict(pool, traffic_classes=tuple(pool.get("traffic_classes", ()))))
                if isinstance(pool, dict)
                else pool
                for pool in data["pools"]
            )
        if data.get("workloads"):
            mixes = []
            for mix in data["workloads"]:
                if isinstance(mix, dict):
                    mix = dict(mix)
                    if isinstance(mix.get("agent_config"), dict):
                        mix["agent_config"] = AgentConfig(**mix["agent_config"])
                    mix = WeightedWorkload(**mix)
                mixes.append(mix)
            data["workloads"] = tuple(mixes)
        if isinstance(data.get("autoscaler"), dict):
            data["autoscaler"] = AutoscalerSpec(**data["autoscaler"])
        return cls(**data)
