"""Declarative experiment specification: the single front door's vocabulary.

An :class:`ExperimentSpec` captures everything needed to reproduce an
experiment -- model, replica pools, scheduler and router policies, agent,
workload mixture, autoscaling, arrival process, seed, and measurement window
-- as one frozen, validated, serialisable value.  Construction is the only
place validation happens; everything downstream
(:class:`~repro.api.builder.SystemBuilder`, the runners) can assume a
well-formed spec.

Fleet vocabulary (the paper's Table IV datacenter scenario):

* :class:`PoolSpec` -- one named replica pool with its own model, size,
  scheduler, router, and the traffic it prefers (explicit traffic classes
  and/or a predicted-decode-length bound),
* :class:`WeightedWorkload` -- one traffic class of a workload mixture: an
  (agent, workload) pair with a sampling weight,
* :class:`AutoscalerSpec` -- elastic sizing of one pool from load signals
  (queue depth, rolling p95) with warm-up cost and cooldown.

Single-pool, single-workload specs (the default fields) are unchanged and
reproduce the legacy results bit-for-bit.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

from repro.agents import AgentConfig
from repro.agents.registry import AGENT_CLASSES, available_agents
from repro.llm.hardware import HardwareSpec
from repro.llm.models import get_model
from repro.llm.scheduler import SCHEDULER_POLICIES, available_scheduler_policies
from repro.llm.speculative import SpeculativeSpec
from repro.serving.admission import (
    ADMISSION_POLICIES,
    available_admission_policies,
)
from repro.serving.forecast import FORECASTERS, available_forecasters
from repro.serving.cluster import ROUTER_POLICIES, available_router_policies
from repro.serving.sessions import SessionSpec
from repro.serving.shapes import RateShape, build_shape, shape_from_dict
from repro.serving.tenants import TenantSpec
from repro.workloads import available_workloads

#: Arrival processes understood by the experiment runners.
ARRIVAL_PROCESSES: Tuple[str, ...] = ("single", "poisson", "uniform", "sequential")

#: Agents that run without a toolset.
TOOLLESS_AGENTS: Tuple[str, ...] = ("cot", "chatbot")


@dataclass(frozen=True)
class ArrivalSpec:
    """How requests reach the system: a traffic program, not just a rate.

    * ``single`` -- one request at a time, back to back (the paper's
      characterization setup; Section IV-A/IV-B).
    * ``poisson`` -- open-loop Poisson arrivals at ``qps`` (Section IV-C).
    * ``uniform`` -- open-loop deterministic arrivals at ``qps``.
    * ``sequential`` -- closed-loop: all requests queued at t=0, served one
      at a time (the paper's sequential serving baseline).

    Open-loop processes optionally carry a ``shape``: a
    :class:`~repro.serving.shapes.RateShape` modulating the base rate over
    time (the effective rate at ``t`` is ``qps * shape.level(t)``) --
    ``constant`` | ``ramp`` | ``square-wave`` | ``diurnal`` | ``trace`` |
    ``piecewise``, from the :mod:`repro.serving.shapes` registry.  A bare
    shape name is shorthand for the shape with default parameters, and a
    dict form (``{"kind": "ramp", ...}``) is accepted for deserialization.
    ``shape=None`` (and the identity ``ConstantShape(1.0)``) reproduces the
    legacy constant-rate arrivals bit-for-bit.

    ``duration_s`` switches the plan from count semantics (exactly
    ``num_requests`` arrivals) to span semantics: every arrival inside
    ``[0, duration_s]``, with ``num_requests`` as a safety cap.

    ``tenants`` optionally attaches a
    :class:`~repro.serving.tenants.TenantSpec`: every arrival is labelled
    with a tenant drawn from a Zipf-skewed user population (a dict form is
    accepted for deserialization).  ``tenants=None`` reproduces the
    untenanted plans bit-for-bit.

    ``sessions`` optionally attaches a
    :class:`~repro.serving.sessions.SessionSpec`: every planned arrival
    becomes the *first turn* of a multi-turn conversation whose later turns
    share a growing prefix and re-enter the cluster closed-loop after a
    think-time gap (a dict form is accepted for deserialization).
    ``sessions=None`` reproduces the single-shot model bit-for-bit.
    """

    process: str = "single"
    qps: Optional[float] = None
    num_requests: int = 20
    task_pool_size: int = 48
    shape: Optional[RateShape] = None
    duration_s: Optional[float] = None
    tenants: Optional[TenantSpec] = None
    sessions: Optional[SessionSpec] = None

    def __post_init__(self) -> None:
        if self.process not in ARRIVAL_PROCESSES:
            raise ValueError(
                f"unknown arrival process {self.process!r}; known: {list(ARRIVAL_PROCESSES)}"
            )
        if self.num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        if self.task_pool_size < 1:
            raise ValueError("task_pool_size must be >= 1")
        if self.process in ("poisson", "uniform"):
            if self.qps is None or self.qps <= 0:
                raise ValueError(f"{self.process} arrivals require qps > 0")
        elif self.qps is not None:
            raise ValueError(f"{self.process} arrivals do not take a qps")
        if isinstance(self.shape, str):
            object.__setattr__(self, "shape", build_shape(self.shape))
        elif isinstance(self.shape, dict):
            object.__setattr__(self, "shape", shape_from_dict(self.shape))
        if self.shape is not None:
            if self.process not in ("poisson", "uniform"):
                raise ValueError(
                    f"{self.process} arrivals do not take a rate shape "
                    "(shapes modulate open-loop processes)"
                )
            if not isinstance(self.shape, RateShape):
                raise ValueError(
                    f"arrival shape must be a RateShape (or a registered shape "
                    f"name / dict), got {self.shape!r}"
                )
            if self.shape.max_level <= 0:
                raise ValueError("arrival shape never reaches a positive rate")
        if self.duration_s is not None:
            if self.process not in ("poisson", "uniform"):
                raise ValueError(
                    f"{self.process} arrivals do not take a duration_s"
                )
            if self.duration_s <= 0:
                raise ValueError("arrival duration_s must be > 0 (or None)")
        if isinstance(self.tenants, dict):
            object.__setattr__(self, "tenants", TenantSpec.from_dict(self.tenants))
        if self.tenants is not None:
            if self.process not in ("poisson", "uniform"):
                raise ValueError(
                    f"{self.process} arrivals do not take a tenant population "
                    "(tenants label open-loop arrivals)"
                )
            if not isinstance(self.tenants, TenantSpec):
                raise ValueError(
                    f"arrival tenants must be a TenantSpec (or a dict form), "
                    f"got {self.tenants!r}"
                )
        if isinstance(self.sessions, dict):
            object.__setattr__(self, "sessions", SessionSpec.from_dict(self.sessions))
        if self.sessions is not None:
            if self.process not in ("poisson", "uniform"):
                raise ValueError(
                    f"{self.process} arrivals do not take sessions "
                    "(sessions re-enter an open-loop serving system)"
                )
            if not isinstance(self.sessions, SessionSpec):
                raise ValueError(
                    f"arrival sessions must be a SessionSpec (or a dict form), "
                    f"got {self.sessions!r}"
                )

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ArrivalSpec":
        """Rebuild from a plain-dict form (inverse of ``dataclasses.asdict``)."""
        data = dict(payload)
        if isinstance(data.get("shape"), dict):
            data["shape"] = shape_from_dict(data["shape"])
        if isinstance(data.get("tenants"), dict):
            data["tenants"] = TenantSpec.from_dict(data["tenants"])
        if isinstance(data.get("sessions"), dict):
            data["sessions"] = SessionSpec.from_dict(data["sessions"])
        return cls(**data)


@dataclass(frozen=True)
class MeasurementSpec:
    """What part of the run contributes to reported metrics, and the SLOs.

    ``warmup_requests`` earliest-*completing* requests are excluded from the
    reported metrics, mimicking the warm-up window real serving measurements
    discard: for serving runs the measured window (duration, energy, GPU
    runtime, KV stats) opens at the instant the last warm-up request
    completes, and the latency/accuracy distributions and request counts
    cover only the remaining requests; characterization runs drop the first
    ``warmup_requests`` observations.  The default measures everything, which
    is what the paper's single-engine experiments do.

    ``slo_p95_s`` declares the experiment's end-to-end p95 latency SLO, and
    ``class_slos`` overrides it per traffic class (``(("chat", 2.5), ...)``).
    Declared SLOs are what serving results report *SLO attainment* against
    (the fraction of measured requests whose latency met their class's SLO),
    and what the ``slo-shed`` admission policy protects when its spec does
    not carry an explicit target.
    """

    warmup_requests: int = 0
    slo_p95_s: Optional[float] = None
    class_slos: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.warmup_requests < 0:
            raise ValueError("warmup_requests must be >= 0")
        if self.slo_p95_s is not None and self.slo_p95_s <= 0:
            raise ValueError("slo_p95_s must be > 0 (or None)")
        if not isinstance(self.class_slos, tuple) or any(
            not isinstance(entry, tuple) for entry in self.class_slos
        ):
            object.__setattr__(
                self, "class_slos", tuple(tuple(entry) for entry in self.class_slos)
            )
        labels = [label for label, _ in self.class_slos]
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate class_slos labels: {labels}")
        for label, slo in self.class_slos:
            if not label:
                raise ValueError("class_slos labels must be non-empty")
            if slo <= 0:
                raise ValueError(f"class_slos[{label!r}] must be > 0")

    def slo_for(self, traffic_class: Optional[str]) -> Optional[float]:
        """The p95 SLO governing ``traffic_class`` (class override, then default)."""
        if traffic_class is not None:
            for label, slo in self.class_slos:
                if label == traffic_class:
                    return slo
        return self.slo_p95_s


@dataclass(frozen=True)
class AdmissionSpec:
    """Which admission policy guards the serving door, per traffic class.

    ``policy`` names a policy from the :mod:`repro.serving.admission`
    registry (``unlimited`` | ``concurrency`` | ``token-bucket`` |
    ``slo-shed``); the remaining fields parameterise it:

    * ``concurrency`` -- ``max_concurrency`` in-flight requests (``None``
      inherits :attr:`ExperimentSpec.max_concurrency`).  Golden-pinned to
      reproduce the legacy enforced door gate bit-for-bit.
    * ``token-bucket`` -- ``rate_qps`` + ``burst`` tokens; over-rate requests
      are delayed until the bucket refills (``overload_action="delay"``, the
      default) or shed (``"reject"``).
    * ``slo-shed`` -- deadline-aware shedding with hysteresis
      (``enter_factor`` / ``exit_factor`` around the SLO): work is shed while
      the projected p95 (rolling ``window_s`` of completed latencies plus the
      predicted-decode-token backlog drain time) violates ``slo_p95_s``.
      ``slo_p95_s=None`` inherits the SLO :class:`MeasurementSpec` declares
      for ``protect_class``; ``protect_class`` names the traffic class whose
      latency the gate protects (the shedding applies to whatever classes
      route to this policy).  ``cooperative=True`` couples the gate to the
      experiment's autoscaler: the SLO projection is taken at the
      autoscaler's forecast horizon with in-flight scale-ups credited, so
      work is shed only when warm replicas cannot land in time (and
      un-shed as they arrive).  Requires an :class:`AutoscalerSpec` on the
      experiment.
    * ``oit-throttle`` -- interaction-aware per-tenant throttling: rolling
      per-user (``user_rpm``) and per-app (``app_rpm``) request-per-minute
      windows over ``window_s`` that bite only while the cluster is under
      pressure (KV utilisation >= ``kv_threshold`` or pending work per
      active replica >= ``queue_threshold``), and never sever an
      in-progress interaction (tenants with in-flight requests are always
      admitted).  Requires tenanted arrivals; ``overload_action`` picks
      reject (default) or delay.

    ``per_class`` overrides the policy per traffic class:
    ``(("agent", AdmissionSpec(policy="slo-shed", protect_class="chat")),)``
    sheds agent load whenever chat's SLO projection degrades, while chat
    itself stays on the default policy.  Overrides cannot nest further.
    """

    policy: str = "unlimited"
    max_concurrency: Optional[int] = None
    rate_qps: Optional[float] = None
    burst: int = 1
    overload_action: str = ""
    slo_p95_s: Optional[float] = None
    protect_class: str = ""
    window_s: float = 30.0
    enter_factor: float = 1.0
    exit_factor: float = 0.8
    cooperative: bool = False
    user_rpm: Optional[float] = None
    app_rpm: Optional[float] = None
    kv_threshold: float = 0.85
    queue_threshold: float = 4.0
    per_class: Tuple[Tuple[str, "AdmissionSpec"], ...] = ()

    def __post_init__(self) -> None:
        if self.policy.lower() not in ADMISSION_POLICIES:
            raise ValueError(
                f"unknown admission policy {self.policy!r}; "
                f"known: {available_admission_policies()}"
            )
        if self.cooperative and self.policy.lower() != "slo-shed":
            raise ValueError(
                "cooperative admission is an slo-shed option "
                f"(policy is {self.policy!r})"
            )
        if self.max_concurrency is not None and self.max_concurrency < 1:
            raise ValueError("admission max_concurrency must be >= 1 (or None)")
        if self.policy.lower() == "token-bucket":
            if self.rate_qps is None or self.rate_qps <= 0:
                raise ValueError("token-bucket admission requires rate_qps > 0")
        elif self.rate_qps is not None:
            raise ValueError(f"admission policy {self.policy!r} does not take rate_qps")
        if self.burst < 1:
            raise ValueError("admission burst must be >= 1")
        if self.overload_action not in ("", "delay", "reject"):
            raise ValueError(
                "admission overload_action must be '', 'delay', or 'reject'"
            )
        if self.slo_p95_s is not None and self.slo_p95_s <= 0:
            raise ValueError("admission slo_p95_s must be > 0 (or None)")
        if self.window_s <= 0:
            raise ValueError("admission window_s must be > 0")
        if self.user_rpm is not None and self.user_rpm <= 0:
            raise ValueError("admission user_rpm must be > 0 (or None)")
        if self.app_rpm is not None and self.app_rpm <= 0:
            raise ValueError("admission app_rpm must be > 0 (or None)")
        if (self.user_rpm is not None or self.app_rpm is not None) and (
            self.policy.lower() != "oit-throttle"
        ):
            raise ValueError(
                f"admission policy {self.policy!r} does not take user_rpm/app_rpm"
            )
        if not 0 < self.kv_threshold <= 1:
            raise ValueError("admission kv_threshold must be in (0, 1]")
        if self.queue_threshold <= 0:
            raise ValueError("admission queue_threshold must be > 0")
        if not 0 < self.exit_factor <= self.enter_factor:
            raise ValueError("admission needs 0 < exit_factor <= enter_factor")
        if not isinstance(self.per_class, tuple) or any(
            not isinstance(entry, tuple) for entry in self.per_class
        ):
            object.__setattr__(
                self, "per_class", tuple(tuple(entry) for entry in self.per_class)
            )
        labels = [label for label, _ in self.per_class]
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate per_class admission labels: {labels}")
        for label, override in self.per_class:
            if not label:
                raise ValueError("per_class admission labels must be non-empty")
            if not isinstance(override, AdmissionSpec):
                raise ValueError(
                    f"per_class admission for {label!r} must be an AdmissionSpec"
                )
            if override.per_class:
                raise ValueError("per_class admission overrides cannot nest")

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "AdmissionSpec":
        """Rebuild from a plain-dict form (inverse of ``dataclasses.asdict``)."""
        data = dict(payload)
        if data.get("per_class"):
            data["per_class"] = tuple(
                (label, override if isinstance(override, AdmissionSpec)
                 else cls.from_dict(override))
                for label, override in data["per_class"]
            )
        return cls(**data)


@dataclass(frozen=True)
class PoolSpec:
    """One named replica pool of a heterogeneous fleet.

    ``traffic_classes`` names the :class:`WeightedWorkload` labels this pool
    prefers; ``max_predicted_decode`` additionally (or instead) claims every
    request whose predicted decode length fits the bound.  ``None`` for
    ``enable_prefix_caching`` / ``max_decode_chunk`` / ``kv_cache_fraction``
    inherits the experiment defaults.

    ``hardware`` gives this pool its own GPU generation and tensor-parallel
    degree (a :class:`~repro.llm.hardware.HardwareSpec`; a bare catalog GPU
    name or a dict form is accepted as shorthand), so pools in one fleet can
    run different perf/energy/cost curves and KV budgets.  ``None`` (and
    :attr:`ExperimentSpec.hardware` unset) keeps the model's
    :func:`~repro.llm.hardware.cluster_for_model` default bit-for-bit.
    """

    name: str
    model: str = "8b"
    replicas: int = 1
    scheduler: str = "fcfs"
    router: str = "round-robin"
    traffic_classes: Tuple[str, ...] = ()
    max_predicted_decode: Optional[int] = None
    accepts_spill: bool = True
    enable_prefix_caching: Optional[bool] = None
    max_decode_chunk: Optional[int] = None
    kv_cache_fraction: Optional[float] = None
    # Chunked-prefill budget and speculative-decoding model for this pool's
    # engines (None = inherit the experiment defaults; dict forms accepted
    # for ``speculative``).
    prefill_chunk_tokens: Optional[int] = None
    speculative: Optional[SpeculativeSpec] = None
    # GPU generation / TP degree for this pool's engines (None = inherit the
    # experiment default, which itself defaults to cluster_for_model).
    hardware: Optional[HardwareSpec] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("pool name must be non-empty")
        if self.replicas < 1:
            raise ValueError(f"pool {self.name!r}: replicas must be >= 1")
        try:
            get_model(self.model)
        except KeyError as error:
            raise ValueError(str(error)) from None
        if self.scheduler.lower() not in SCHEDULER_POLICIES:
            raise ValueError(
                f"pool {self.name!r}: unknown scheduler policy {self.scheduler!r}; "
                f"known: {available_scheduler_policies()}"
            )
        if self.router.lower() not in ROUTER_POLICIES:
            raise ValueError(
                f"pool {self.name!r}: unknown router policy {self.router!r}; "
                f"known: {available_router_policies()}"
            )
        if self.max_predicted_decode is not None and self.max_predicted_decode < 1:
            raise ValueError(f"pool {self.name!r}: max_predicted_decode must be >= 1")
        if self.max_decode_chunk is not None and self.max_decode_chunk < 1:
            raise ValueError(f"pool {self.name!r}: max_decode_chunk must be >= 1")
        if self.kv_cache_fraction is not None and not 0 < self.kv_cache_fraction <= 1:
            raise ValueError(
                f"pool {self.name!r}: kv_cache_fraction must be in (0, 1] (or None)"
            )
        if self.prefill_chunk_tokens is not None and self.prefill_chunk_tokens < 1:
            raise ValueError(
                f"pool {self.name!r}: prefill_chunk_tokens must be >= 1 (or None)"
            )
        if isinstance(self.speculative, dict):
            object.__setattr__(
                self, "speculative", SpeculativeSpec.from_dict(self.speculative)
            )
        if self.speculative is not None and not isinstance(
            self.speculative, SpeculativeSpec
        ):
            raise ValueError(
                f"pool {self.name!r}: speculative must be a SpeculativeSpec "
                f"(or a dict form), got {self.speculative!r}"
            )
        if isinstance(self.hardware, str):
            object.__setattr__(self, "hardware", HardwareSpec(gpu=self.hardware))
        elif isinstance(self.hardware, dict):
            object.__setattr__(self, "hardware", HardwareSpec.from_dict(self.hardware))
        if self.hardware is not None:
            if not isinstance(self.hardware, HardwareSpec):
                raise ValueError(
                    f"pool {self.name!r}: hardware must be a HardwareSpec "
                    f"(or a catalog GPU name / dict form), got {self.hardware!r}"
                )
            try:
                self.hardware.resolve().kv_cache_bytes(get_model(self.model))
            except ValueError as error:
                raise ValueError(f"pool {self.name!r}: {error}") from None
        if not isinstance(self.traffic_classes, tuple):
            object.__setattr__(self, "traffic_classes", tuple(self.traffic_classes))


@dataclass(frozen=True)
class WeightedWorkload:
    """One traffic class of a workload mixture: an (agent, workload) pair.

    ``name`` labels the class (defaults to the workload name); the mixture
    load generator tags every sampled request with it, and pools claim
    classes through :attr:`PoolSpec.traffic_classes`.  ``agent_config=None``
    inherits the experiment-level agent config.

    ``shape`` optionally gives this class its own
    :class:`~repro.serving.shapes.RateShape` (bare names and dict forms are
    accepted like :attr:`ArrivalSpec.shape`): the class arrives at
    ``qps * normalized_weight * arrival_shape.level(t) * shape.level(t)``,
    so one class can burst while the others stay steady -- the Table IV
    scenario of agent spikes over a constant chat floor.

    ``tenants`` optionally gives this class its own
    :class:`~repro.serving.tenants.TenantSpec` user population (overriding
    the :attr:`ArrivalSpec.tenants` default for this class); dict forms are
    accepted like shapes.

    ``sessions`` optionally gives this class its own
    :class:`~repro.serving.sessions.SessionSpec` conversation shape
    (overriding the :attr:`ArrivalSpec.sessions` default for this class);
    dict forms are accepted like shapes.  A chat class can run multi-turn
    conversations while a batch class stays single-shot.
    """

    agent: str = "react"
    workload: str = "hotpotqa"
    weight: float = 1.0
    name: str = ""
    agent_config: Optional[AgentConfig] = None
    shape: Optional[RateShape] = None
    tenants: Optional[TenantSpec] = None
    sessions: Optional[SessionSpec] = None

    def __post_init__(self) -> None:
        if not self.name:
            object.__setattr__(self, "name", self.workload)
        if self.agent.lower() not in AGENT_CLASSES:
            raise ValueError(f"unknown agent {self.agent!r}; known: {available_agents()}")
        if self.workload.lower() not in available_workloads():
            raise ValueError(
                f"unknown workload {self.workload!r}; known: {available_workloads()}"
            )
        if self.weight <= 0:
            raise ValueError(f"traffic class {self.name!r}: weight must be > 0")
        if isinstance(self.shape, str):
            object.__setattr__(self, "shape", build_shape(self.shape))
        elif isinstance(self.shape, dict):
            object.__setattr__(self, "shape", shape_from_dict(self.shape))
        if self.shape is not None and not isinstance(self.shape, RateShape):
            raise ValueError(
                f"traffic class {self.name!r}: shape must be a RateShape "
                f"(or a registered shape name / dict), got {self.shape!r}"
            )
        if self.shape is not None and self.shape.max_level <= 0:
            raise ValueError(
                f"traffic class {self.name!r}: shape never reaches a positive rate"
            )
        if isinstance(self.tenants, dict):
            object.__setattr__(self, "tenants", TenantSpec.from_dict(self.tenants))
        if self.tenants is not None and not isinstance(self.tenants, TenantSpec):
            raise ValueError(
                f"traffic class {self.name!r}: tenants must be a TenantSpec "
                f"(or a dict form), got {self.tenants!r}"
            )
        if isinstance(self.sessions, dict):
            object.__setattr__(self, "sessions", SessionSpec.from_dict(self.sessions))
        if self.sessions is not None and not isinstance(self.sessions, SessionSpec):
            raise ValueError(
                f"traffic class {self.name!r}: sessions must be a SessionSpec "
                f"(or a dict form), got {self.sessions!r}"
            )

    @property
    def needs_tools(self) -> bool:
        """Whether this class's agent needs the tool runtime (see ``TOOLLESS_AGENTS``)."""
        return self.agent.lower() not in TOOLLESS_AGENTS


@dataclass(frozen=True)
class AutoscalerSpec:
    """Elastic sizing of one pool from load signals.

    ``pool=""`` targets the default (first) pool.  In the default
    ``mode="reactive"`` (the historical behaviour, golden-pinned), scale-up
    triggers when pending requests per provisioned replica exceed
    ``scale_up_pending_per_replica`` or the rolling p95 of LLM latencies
    violates ``p95_slo_s`` (when set); scale-down when the queue falls below
    ``scale_down_pending_per_replica`` with no SLO pressure.  New replicas
    pay for capacity immediately but take traffic only after ``warmup_s``.

    ``mode="predictive"`` scales *ahead* of demand instead: an arrival
    ``forecaster`` (:mod:`repro.serving.forecast` registry: ``none`` |
    ``windowed-rate`` | ``ewma`` | ``holt``) projects the arrival rate over
    the next ``horizon_s``, the controller converts it into a decode-token
    demand (times the mean decode length of recent requests, plus the
    predictor-estimated backlog), and provisions the replicas needed to
    clear it -- so warm-up cost is paid before the burst lands, not during
    it.  ``forecaster_*`` parameterise the forecaster (window for
    ``windowed-rate``; bucket/alpha[/beta] for the smoothers); parameters a
    forecaster does not take are ignored.
    """

    pool: str = ""
    min_replicas: int = 1
    max_replicas: int = 4
    check_interval_s: float = 2.0
    warmup_s: float = 5.0
    cooldown_s: float = 0.0
    scale_up_pending_per_replica: float = 4.0
    scale_down_pending_per_replica: float = 1.0
    p95_slo_s: Optional[float] = None
    p95_window_s: float = 30.0
    mode: str = "reactive"
    forecaster: str = "windowed-rate"
    horizon_s: float = 10.0
    forecaster_window_s: float = 10.0
    forecaster_bucket_s: float = 2.0
    forecaster_alpha: float = 0.5
    forecaster_beta: float = 0.3

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ValueError("autoscaler min_replicas must be >= 1")
        if self.max_replicas < self.min_replicas:
            raise ValueError("autoscaler max_replicas must be >= min_replicas")
        if self.check_interval_s <= 0:
            raise ValueError("autoscaler check_interval_s must be > 0")
        if self.warmup_s < 0 or self.cooldown_s < 0:
            raise ValueError("autoscaler warm-up/cooldown must be >= 0")
        if self.scale_down_pending_per_replica >= self.scale_up_pending_per_replica:
            raise ValueError(
                "autoscaler scale-down threshold must be below the scale-up threshold"
            )
        if self.p95_slo_s is not None and self.p95_slo_s <= 0:
            raise ValueError("autoscaler p95_slo_s must be > 0 (or None)")
        if self.p95_window_s <= 0:
            raise ValueError("autoscaler p95_window_s must be > 0")
        if self.mode not in ("reactive", "predictive"):
            raise ValueError(
                f"unknown autoscaler mode {self.mode!r}; "
                "known: ['reactive', 'predictive']"
            )
        if self.forecaster.lower() not in FORECASTERS:
            raise ValueError(
                f"unknown arrival forecaster {self.forecaster!r}; "
                f"known: {available_forecasters()}"
            )
        if self.horizon_s <= 0:
            raise ValueError("autoscaler horizon_s must be > 0")
        if self.forecaster_window_s <= 0 or self.forecaster_bucket_s <= 0:
            raise ValueError("forecaster window/bucket must be > 0")
        if not 0 < self.forecaster_alpha <= 1 or not 0 < self.forecaster_beta <= 1:
            raise ValueError("forecaster alpha/beta must be in (0, 1]")


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment, fully described.

    ``ExperimentSpec(replicas=1, scheduler="fcfs")`` driven through
    :func:`repro.api.run_experiment` reproduces the legacy
    ``SingleRequestRunner`` / ``run_at_qps`` results bit-for-bit at the same
    seed; raising ``replicas`` and switching ``scheduler`` / ``router``
    policies explores the multi-replica design space on the same workloads.
    """

    agent: str = "react"
    workload: str = "hotpotqa"
    model: str = "8b"
    replicas: int = 1
    scheduler: str = "fcfs"
    router: str = "round-robin"
    enable_prefix_caching: bool = True
    agent_config: AgentConfig = field(default_factory=AgentConfig)
    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)
    measurement: MeasurementSpec = field(default_factory=MeasurementSpec)
    seed: int = 0
    max_decode_chunk: int = 1
    # Fast-forward uninterrupted decode stretches in one simulated event
    # (bit-for-bit identical results; see EngineConfig.decode_fast_forward).
    # Disable to force the reference one-event-per-token path.
    decode_fast_forward: bool = True
    max_concurrency: Optional[int] = None
    # Admission policy guarding the serving door (None = the legacy
    # behaviour: unlimited, or the enforced concurrency gate when
    # max_concurrency is set).  A bare policy name is accepted as shorthand
    # for AdmissionSpec(policy=name).
    admission: Optional[AdmissionSpec] = None
    # -- fleet extensions (empty/None = legacy single-pool behaviour) --------
    pools: Tuple[PoolSpec, ...] = ()
    workloads: Tuple[WeightedWorkload, ...] = ()
    autoscaler: Optional[AutoscalerSpec] = None
    # Relative error of the decode-length predictor used by SJF scheduling
    # and decode-length pool classification (0.0 = perfect oracle).
    predictor_error: float = 0.0
    # Engine batch-size cap (vLLM's max_num_seqs; None = engine default).
    # Lowering it forces requests to contend at the scheduler's admission
    # door, which is where admission-order policies (priority, sjf, vtc)
    # actually differ from fcfs.
    max_num_seqs: Optional[int] = None
    # Fraction of the hardware-derived KV block budget each replica gets
    # (1.0 = the full budget, the legacy behaviour).  Shrinking it models a
    # smaller prefix-cache working set: warm conversation prefixes are
    # evicted sooner, which is the capacity axis of the sessions study.
    kv_cache_fraction: float = 1.0
    # Chunked prefill: per-step budget of prompt tokens each engine computes,
    # co-scheduled with decode tokens in one mixed roofline step.  None (the
    # default) keeps atomic prefill -- bit-for-bit the legacy behaviour.
    prefill_chunk_tokens: Optional[int] = None
    # Speculative decoding acceptance model (dict forms accepted); None (the
    # default) disables it -- bit-for-bit the legacy behaviour.
    speculative: Optional[SpeculativeSpec] = None
    # Default hardware for every pool's engines (a HardwareSpec; bare catalog
    # GPU names and dict forms accepted; PoolSpec.hardware overrides it per
    # pool).  None (the default) keeps cluster_for_model -- bit-for-bit the
    # legacy behaviour.
    hardware: Optional[HardwareSpec] = None
    # How the cluster picks a pool for each request: "static" (the legacy
    # traffic-class / predicted-decode classification) or "cost-aware" (the
    # cheapest pool whose predicted decode still meets the request's class
    # SLO; classes without a declared SLO fall back to static).
    pool_classification: str = "static"

    def __post_init__(self) -> None:
        if self.agent.lower() not in AGENT_CLASSES:
            raise ValueError(f"unknown agent {self.agent!r}; known: {available_agents()}")
        if self.workload.lower() not in available_workloads():
            raise ValueError(
                f"unknown workload {self.workload!r}; known: {available_workloads()}"
            )
        try:
            get_model(self.model)
        except KeyError as error:
            raise ValueError(str(error)) from None
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.scheduler.lower() not in SCHEDULER_POLICIES:
            raise ValueError(
                f"unknown scheduler policy {self.scheduler!r}; "
                f"known: {available_scheduler_policies()}"
            )
        if self.router.lower() not in ROUTER_POLICIES:
            raise ValueError(
                f"unknown router policy {self.router!r}; "
                f"known: {available_router_policies()}"
            )
        if self.max_decode_chunk < 1:
            raise ValueError("max_decode_chunk must be >= 1")
        if self.max_concurrency is not None and self.max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1 (or None for unlimited)")
        if self.measurement.warmup_requests >= self.arrival.num_requests:
            raise ValueError(
                f"measurement.warmup_requests must be smaller than "
                f"arrival.num_requests ({self.measurement.warmup_requests} >= "
                f"{self.arrival.num_requests}: the measured window would be empty)"
            )
        if self.predictor_error < 0:
            raise ValueError("predictor_error must be >= 0")
        if self.max_num_seqs is not None and self.max_num_seqs < 1:
            raise ValueError("max_num_seqs must be >= 1 (or None for the default)")
        if not 0 < self.kv_cache_fraction <= 1:
            raise ValueError("kv_cache_fraction must be in (0, 1]")
        if self.prefill_chunk_tokens is not None and self.prefill_chunk_tokens < 1:
            raise ValueError("prefill_chunk_tokens must be >= 1 (or None)")
        if isinstance(self.speculative, dict):
            object.__setattr__(
                self, "speculative", SpeculativeSpec.from_dict(self.speculative)
            )
        if self.speculative is not None and not isinstance(
            self.speculative, SpeculativeSpec
        ):
            raise ValueError(
                f"speculative must be a SpeculativeSpec (or a dict form), "
                f"got {self.speculative!r}"
            )
        if self.max_decode_chunk > 1 and (
            self.prefill_chunk_tokens is not None or self.speculative is not None
        ):
            # Same incoherence EngineConfig.__post_init__ rejects; fail at
            # spec construction with the experiment-level field names.
            raise ValueError(
                "prefill_chunk_tokens / speculative are incompatible with "
                "max_decode_chunk > 1 (approximate decode chunking); "
                "use decode_fast_forward for speed instead"
            )
        if isinstance(self.hardware, str):
            object.__setattr__(self, "hardware", HardwareSpec(gpu=self.hardware))
        elif isinstance(self.hardware, dict):
            object.__setattr__(self, "hardware", HardwareSpec.from_dict(self.hardware))
        if self.hardware is not None:
            if not isinstance(self.hardware, HardwareSpec):
                raise ValueError(
                    f"hardware must be a HardwareSpec (or a catalog GPU name / "
                    f"dict form), got {self.hardware!r}"
                )
            # Pools carrying their own model validate their own fit; the
            # experiment default must at least fit the experiment model.
            self.hardware.resolve().kv_cache_bytes(get_model(self.model))
        if self.pool_classification not in ("static", "cost-aware"):
            raise ValueError(
                f"unknown pool_classification {self.pool_classification!r}; "
                "known: ['static', 'cost-aware']"
            )
        if self.pool_classification == "cost-aware" and (
            self.measurement.slo_p95_s is None and not self.measurement.class_slos
        ):
            raise ValueError(
                "cost-aware pool classification needs an SLO to route against: "
                "declare measurement.slo_p95_s or measurement.class_slos"
            )
        self._validate_fleet()
        self._validate_admission()

    def _validate_fleet(self) -> None:
        if not isinstance(self.pools, tuple):
            object.__setattr__(self, "pools", tuple(self.pools))
        if not isinstance(self.workloads, tuple):
            object.__setattr__(self, "workloads", tuple(self.workloads))
        pool_names = [pool.name for pool in self.pools]
        if len(set(pool_names)) != len(pool_names):
            raise ValueError(f"duplicate pool names: {pool_names}")
        class_labels = [mix.name for mix in self.workloads]
        if len(set(class_labels)) != len(class_labels):
            raise ValueError(f"duplicate traffic-class labels: {class_labels}")
        if self.workloads:
            if self.arrival.process not in ("poisson", "uniform"):
                raise ValueError(
                    "workload mixtures require an open-loop arrival process "
                    "(poisson or uniform)"
                )
            known = {label.lower() for label in class_labels}
            for pool in self.pools:
                for traffic_class in pool.traffic_classes:
                    if traffic_class.lower() not in known:
                        raise ValueError(
                            f"pool {pool.name!r} claims unknown traffic class "
                            f"{traffic_class!r}; mixture classes: {sorted(known)}"
                        )
        if self.hardware is not None:
            # Pools without their own hardware inherit the experiment default;
            # their (possibly different) model must fit it too.
            for pool in self.pools:
                if pool.hardware is None:
                    try:
                        self.hardware.resolve().kv_cache_bytes(get_model(pool.model))
                    except ValueError as error:
                        raise ValueError(f"pool {pool.name!r}: {error}") from None
        if self.autoscaler is not None:
            if self.arrival.process == "single":
                raise ValueError(
                    "autoscaling requires a serving arrival process, not 'single'"
                )
            if self.autoscaler.pool and self.autoscaler.pool not in pool_names:
                raise ValueError(
                    f"autoscaler targets unknown pool {self.autoscaler.pool!r}; "
                    f"known: {pool_names or ['default']}"
                )

    def _validate_admission(self) -> None:
        known_classes = {mix.name for mix in self.workloads}
        for label, _ in self.measurement.class_slos:
            if self.workloads and label not in known_classes:
                raise ValueError(
                    f"measurement.class_slos names unknown traffic class "
                    f"{label!r}; mixture classes: {sorted(known_classes)}"
                )
        if self.admission is None:
            return
        if isinstance(self.admission, str):
            object.__setattr__(self, "admission", AdmissionSpec(policy=self.admission))
        admission: AdmissionSpec = self.admission
        if self.arrival.process == "single":
            raise ValueError(
                "admission control requires a serving arrival process, not 'single'"
            )
        if admission.per_class and not self.workloads:
            raise ValueError(
                "per_class admission overrides require a workload mixture"
            )
        for label, _ in admission.per_class:
            if label not in known_classes:
                raise ValueError(
                    f"admission per_class names unknown traffic class {label!r}; "
                    f"mixture classes: {sorted(known_classes)}"
                )
        for scope, sub in (("admission", admission), *admission.per_class):
            if sub.policy.lower() == "concurrency":
                if sub.max_concurrency is None and self.max_concurrency is None:
                    raise ValueError(
                        f"{scope!r} admission policy 'concurrency' needs "
                        "max_concurrency (on the admission spec or the experiment)"
                    )
                if sub.max_concurrency is not None and self.max_concurrency is not None:
                    raise ValueError(
                        "set max_concurrency either on the experiment or on the "
                        "admission spec, not both"
                    )
            if sub.protect_class:
                if not self.workloads:
                    raise ValueError(
                        "admission protect_class requires a workload mixture"
                    )
                if sub.protect_class not in known_classes:
                    raise ValueError(
                        f"admission protect_class names unknown traffic class "
                        f"{sub.protect_class!r}; mixture classes: {sorted(known_classes)}"
                    )
            if sub.cooperative and self.autoscaler is None:
                raise ValueError(
                    f"{scope!r} cooperative admission requires an autoscaler "
                    "(it consults in-flight scale-ups)"
                )
            if sub.policy.lower() == "slo-shed" and sub.slo_p95_s is None:
                resolved = self.measurement.slo_for(sub.protect_class or None)
                if resolved is None:
                    raise ValueError(
                        f"{scope!r} admission policy 'slo-shed' needs an SLO: set "
                        "slo_p95_s on the admission spec or declare one in "
                        "measurement (slo_p95_s / class_slos)"
                    )

    # -- derived -------------------------------------------------------------
    @property
    def needs_tools(self) -> bool:
        """Whether any configured agent needs the tool runtime."""
        if self.workloads:
            return any(mix.needs_tools for mix in self.workloads)
        return self.agent.lower() not in TOOLLESS_AGENTS

    def with_overrides(self, **overrides: Any) -> "ExperimentSpec":
        """Copy with fields replaced (validation reruns on construction)."""
        return replace(self, **overrides)

    def at_qps(self, qps: float, **arrival_overrides: Any) -> "ExperimentSpec":
        """Copy targeting open-loop Poisson arrivals at ``qps``."""
        arrival = replace(self.arrival, process="poisson", qps=qps, **arrival_overrides)
        return replace(self, arrival=arrival)

    # -- serialisation --------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-ready); inverse of :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        data = dict(payload)
        if isinstance(data.get("agent_config"), dict):
            data["agent_config"] = AgentConfig(**data["agent_config"])
        if isinstance(data.get("arrival"), dict):
            data["arrival"] = ArrivalSpec.from_dict(data["arrival"])
        if isinstance(data.get("measurement"), dict):
            data["measurement"] = MeasurementSpec(**data["measurement"])
        if isinstance(data.get("admission"), dict):
            data["admission"] = AdmissionSpec.from_dict(data["admission"])
        if data.get("pools"):
            pools = []
            for pool in data["pools"]:
                if isinstance(pool, dict):
                    pool = dict(pool, traffic_classes=tuple(pool.get("traffic_classes", ())))
                    if isinstance(pool.get("hardware"), dict):
                        pool["hardware"] = HardwareSpec.from_dict(pool["hardware"])
                    pool = PoolSpec(**pool)
                pools.append(pool)
            data["pools"] = tuple(pools)
        if data.get("workloads"):
            mixes = []
            for mix in data["workloads"]:
                if isinstance(mix, dict):
                    mix = dict(mix)
                    if isinstance(mix.get("agent_config"), dict):
                        mix["agent_config"] = AgentConfig(**mix["agent_config"])
                    if isinstance(mix.get("shape"), dict):
                        mix["shape"] = shape_from_dict(mix["shape"])
                    mix = WeightedWorkload(**mix)
                mixes.append(mix)
            data["workloads"] = tuple(mixes)
        if isinstance(data.get("autoscaler"), dict):
            data["autoscaler"] = AutoscalerSpec(**data["autoscaler"])
        if isinstance(data.get("speculative"), dict):
            data["speculative"] = SpeculativeSpec.from_dict(data["speculative"])
        if isinstance(data.get("hardware"), dict):
            data["hardware"] = HardwareSpec.from_dict(data["hardware"])
        return cls(**data)
