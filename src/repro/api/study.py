"""Declarative studies: named axes over any spec field, run as one grid.

A :class:`StudySpec` generalises the qps-only sweep into the
capacity-planning studies the paper's Table IV gestures at: declare a
``base`` :class:`~repro.api.spec.ExperimentSpec` and a set of
:class:`StudyAxis` -- each naming a spec field (any dotted path:
``arrival.qps``, ``arrival.shape``, ``pools``, ``scheduler``,
``autoscaler.forecaster``, ``admission``, ...) and the values to sweep --
and :func:`run_study` expands the Cartesian grid (or an explicit
``points`` list), runs every point with per-point seeds, and returns a
:class:`StudyResult` supporting tabulation, per-axis slicing, and
:meth:`~StudyResult.pareto_frontier` queries (e.g. replica-seconds vs
per-class p95 -- the fleet-sizing study).

``run_sweep`` is a one-axis study in disguise: the ``qps`` axis is
shorthand for :meth:`ExperimentSpec.at_qps`, and
:meth:`StudyResult.as_qps_sweep` rebuilds the legacy
:class:`~repro.serving.sweep.QpsSweepResult` bit-for-bit.

Metrics (for tabulation and Pareto queries) are either callables on the
point's :class:`~repro.api.results.ResultSet` or metric-name strings:
any ``ResultSet`` attribute (``replica_seconds``, ``p95_latency``,
``energy_wh``, ``rejection_rate``, ``served_token_ratio``,
``jain_fairness``, ...), a per-class form ``class_<stat>:<label>``
(``class_p95:chat``, ``class_attainment:chat``, ``class_rejection:agent``,
``class_mean:...``, ``class_throughput:...``), or the per-decile form
``tenant_throttle_decile:<0-9>`` (throttle rate of one tenant population
decile; decile 0 holds the hottest users).
"""

from __future__ import annotations

import itertools
from dataclasses import asdict, dataclass, field, is_dataclass, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.agents import AgentConfig
from repro.api.results import ResultSet
from repro.api.spec import (
    AdmissionSpec,
    ArrivalSpec,
    AutoscalerSpec,
    ExperimentSpec,
    MeasurementSpec,
    PoolSpec,
    WeightedWorkload,
)
from repro.llm.hardware import HardwareSpec
from repro.llm.speculative import SpeculativeSpec
from repro.serving.sessions import SessionSpec
from repro.serving.shapes import RateShape, shape_from_dict
from repro.serving.tenants import TenantSpec

#: A metric: a ResultSet attribute name / class_<stat>:<label> string, or a
#: callable extracting a float from the point's ResultSet.
Metric = Union[str, Callable[[Any], float]]

_CLASS_METRIC_ATTRS: Dict[str, str] = {
    "class_p95": "p95_latency_s",
    "class_mean": "mean_latency_s",
    "class_throughput": "throughput_qps",
    "class_attainment": "slo_attainment",
    "class_rejection": "rejection_rate",
    "class_completed": "num_completed",
}


def resolve_metric(
    outcome: Any, metric: Metric, missing_ok: bool = False
) -> Optional[float]:
    """Evaluate ``metric`` on one study point's outcome (see module docs).

    Unknown metric names always raise (a typo must fail loudly, not render
    as an empty column); ``missing_ok=True`` additionally tolerates metrics
    that are legitimately absent on *this* outcome -- a traffic class the
    point never served, or a ``None``-valued telemetry field such as
    ``forecast_mae`` on a forecaster-less run -- returning ``None``.
    """
    if callable(metric):
        value = metric(outcome)
    elif isinstance(metric, str):
        if metric.startswith("tenant_throttle_decile:"):
            _, _, decile_text = metric.partition(":")
            try:
                decile = int(decile_text)
            except ValueError:
                decile = -1
            if not 0 <= decile <= 9:
                raise ValueError(
                    f"metric {metric!r}: decile must be an integer in 0..9"
                )
            stats = outcome.tenant_stats
            if stats is None:
                if missing_ok:
                    return None
                raise ValueError(f"metric {metric!r}: outcome has no tenant stats")
            value = stats.decile_throttle_rates()[decile]
            if value is None:
                if missing_ok:
                    return None
                raise ValueError(
                    f"metric {metric!r}: no offers landed in decile {decile}"
                )
            return float(value)
        if ":" in metric:
            name, label = metric.split(":", 1)
            attr = _CLASS_METRIC_ATTRS.get(name)
            if attr is None:
                raise ValueError(
                    f"unknown per-class metric {name!r}; "
                    f"known: {sorted(_CLASS_METRIC_ATTRS)}"
                )
            stats = outcome.class_stats.get(label)
            if stats is None:
                if missing_ok:
                    return None
                raise ValueError(
                    f"metric {metric!r}: outcome has no traffic class {label!r} "
                    f"(classes: {sorted(outcome.class_stats)})"
                )
            value = getattr(stats, attr)
        else:
            if not hasattr(outcome, metric):
                raise ValueError(f"outcome has no metric {metric!r}")
            value = getattr(outcome, metric)
    else:
        raise ValueError(f"metric must be a name or callable, got {metric!r}")
    if value is None:
        if missing_ok:
            return None
        raise ValueError(f"metric {metric!r} is None on this outcome")
    return float(value)


def _default_label(value: Any) -> str:
    """Short human label for an axis value (shapes, pool tuples, scalars)."""
    if isinstance(value, RateShape):
        return getattr(value, "kind", type(value).__name__)
    if isinstance(value, tuple) and value and all(
        isinstance(entry, PoolSpec) for entry in value
    ):
        return "+".join(f"{pool.name}x{pool.replicas}" for pool in value)
    if isinstance(value, float):
        return f"{value:g}"
    if is_dataclass(value) and not isinstance(value, type):
        return type(value).__name__
    return str(value)


@dataclass(frozen=True)
class StudyAxis:
    """One named dimension of a study grid.

    ``field`` is the dotted spec path the values replace (defaults to
    ``name``); the special path ``qps`` applies
    :meth:`ExperimentSpec.at_qps` so sweeping load also switches
    characterization specs to open-loop Poisson arrivals, exactly like the
    legacy sweep.  ``labels`` (optional, same length as ``values``) are the
    display names used in tables and slices.
    """

    name: str
    values: Tuple[Any, ...]
    field: str = ""
    labels: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("study axis name must be non-empty")
        if not isinstance(self.values, tuple):
            object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise ValueError(f"study axis {self.name!r} needs at least one value")
        if not isinstance(self.labels, tuple):
            object.__setattr__(self, "labels", tuple(self.labels))
        if self.labels and len(self.labels) != len(self.values):
            raise ValueError(
                f"study axis {self.name!r}: labels must match values "
                f"({len(self.labels)} labels for {len(self.values)} values)"
            )

    @property
    def path(self) -> str:
        """The dotted spec path this axis sweeps (``field``, or ``name``)."""
        return self.field or self.name

    def label_for(self, index: int) -> str:
        """Display label of the value at ``index`` (derived when unset)."""
        if self.labels:
            return self.labels[index]
        return _default_label(self.values[index])


def apply_axis_value(spec: ExperimentSpec, path: str, value: Any) -> ExperimentSpec:
    """Copy ``spec`` with the field at dotted ``path`` replaced by ``value``.

    ``qps`` is shorthand for :meth:`ExperimentSpec.at_qps`.  Intermediate
    path segments must be dataclass fields (``arrival.shape``,
    ``autoscaler.forecaster``, ``measurement.slo_p95_s``, ...); validation
    reruns on construction, so an invalid point fails loudly at expansion
    time rather than mid-study.
    """
    if path == "qps":
        return spec.at_qps(value)
    parts = path.split(".")

    def _apply(obj: Any, remaining: List[str]) -> Any:
        head = remaining[0]
        if not is_dataclass(obj) or not hasattr(obj, head):
            raise ValueError(
                f"study axis path {path!r}: {type(obj).__name__} has no field {head!r}"
            )
        if len(remaining) == 1:
            return replace(obj, **{head: value})
        child = getattr(obj, head)
        if child is None:
            raise ValueError(
                f"study axis path {path!r}: {head!r} is None on the base spec; "
                "set a base value to sweep its fields"
            )
        return replace(obj, **{head: _apply(child, remaining[1:])})

    return _apply(spec, parts)


@dataclass(frozen=True)
class StudySpec:
    """A declarative study: a base spec plus the grid to explore around it.

    Exactly one of ``axes`` (Cartesian grid) or ``points`` (explicit list
    of ``{path: value}`` mappings) describes the exploration; ``seeds``
    optionally repeats every point at several seeds (empty = the base
    spec's seed).  Every point is validated at construction by actually
    building its :class:`ExperimentSpec`.
    """

    base: ExperimentSpec
    axes: Tuple[StudyAxis, ...] = ()
    points: Tuple[Mapping[str, Any], ...] = ()
    seeds: Tuple[int, ...] = ()
    name: str = "study"

    def __post_init__(self) -> None:
        if not isinstance(self.base, ExperimentSpec):
            raise ValueError("study base must be an ExperimentSpec")
        if not isinstance(self.axes, tuple):
            object.__setattr__(self, "axes", tuple(self.axes))
        if not isinstance(self.points, tuple):
            object.__setattr__(self, "points", tuple(self.points))
        if not isinstance(self.seeds, tuple):
            object.__setattr__(self, "seeds", tuple(self.seeds))
        if bool(self.axes) == bool(self.points):
            raise ValueError("a study declares exactly one of axes or points")
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate study axis names: {names}")
        for seed in self.seeds:
            if not isinstance(seed, int) or seed < 0:
                raise ValueError(f"study seeds must be non-negative ints, got {seed!r}")
        if self.seeds:
            swept_paths = {axis.path for axis in self.axes}
            swept_paths.update(key for point in self.points for key in point)
            if "seed" in swept_paths:
                raise ValueError(
                    "declare seeds either as the seeds= repetition or as a "
                    "seed axis/point coordinate, not both"
                )
        # Eager validation: every grid point must build a valid spec.
        for coords, _labels, seed in self.expand():
            self.spec_for(coords, seed)

    # -- expansion -------------------------------------------------------------
    def expand(self) -> List[Tuple[Dict[str, Any], Dict[str, str], int]]:
        """The full grid: (coords, labels, seed) per run, in execution order.

        Axes expand in declared order with the last axis fastest and seeds
        innermost, so execution order (and therefore per-point streams) is a
        pure function of the study declaration.
        """
        seeds = self.seeds or (self.base.seed,)
        expanded: List[Tuple[Dict[str, Any], Dict[str, str], int]] = []
        if self.axes:
            index_grid = itertools.product(
                *[range(len(axis.values)) for axis in self.axes]
            )
            for indices in index_grid:
                coords = {
                    axis.name: axis.values[i] for axis, i in zip(self.axes, indices)
                }
                labels = {
                    axis.name: axis.label_for(i) for axis, i in zip(self.axes, indices)
                }
                for seed in seeds:
                    expanded.append((coords, labels, seed))
        else:
            for point in self.points:
                coords = dict(point)
                labels = {key: _default_label(value) for key, value in coords.items()}
                for seed in seeds:
                    expanded.append((coords, labels, seed))
        return expanded

    def spec_for(self, coords: Mapping[str, Any], seed: int) -> ExperimentSpec:
        """The concrete :class:`ExperimentSpec` of one grid point."""
        spec = self.base
        paths = {axis.name: axis.path for axis in self.axes}
        seed_swept = False
        for name, value in coords.items():
            path = paths.get(name, name)
            seed_swept = seed_swept or path == "seed"
            spec = apply_axis_value(spec, path, value)
        # The per-point seed fills in when seeds aren't an axis themselves;
        # a swept seed coordinate must never be overwritten back to the base.
        if not seed_swept and seed != spec.seed:
            spec = replace(spec, seed=seed)
        return spec

    @property
    def num_points(self) -> int:
        """Total runs the study declares (grid points x seeds)."""
        return len(self.expand())

    # -- serialisation --------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-ready); inverse of :meth:`from_dict`."""
        return {
            "name": self.name,
            "base": self.base.to_dict(),
            "seeds": list(self.seeds),
            "axes": [
                {
                    "name": axis.name,
                    "field": axis.field,
                    "labels": list(axis.labels),
                    "values": [_encode_value(value) for value in axis.values],
                }
                for axis in self.axes
            ],
            "points": [
                {key: _encode_value(value) for key, value in point.items()}
                for point in self.points
            ],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "StudySpec":
        """Rebuild a study from :meth:`to_dict` output."""
        return cls(
            name=payload.get("name", "study"),
            base=ExperimentSpec.from_dict(payload["base"]),
            seeds=tuple(payload.get("seeds", ())),
            axes=tuple(
                StudyAxis(
                    name=axis["name"],
                    field=axis.get("field", ""),
                    labels=tuple(axis.get("labels", ())),
                    values=tuple(_decode_value(value) for value in axis["values"]),
                )
                for axis in payload.get("axes", ())
            ),
            points=tuple(
                {key: _decode_value(value) for key, value in point.items()}
                for point in payload.get("points", ())
            ),
        )


#: Spec-vocabulary types an axis value may carry (type-tagged when encoded).
_SPEC_VALUE_TYPES: Dict[str, type] = {
    "PoolSpec": PoolSpec,
    "WeightedWorkload": WeightedWorkload,
    "AdmissionSpec": AdmissionSpec,
    "AutoscalerSpec": AutoscalerSpec,
    "ArrivalSpec": ArrivalSpec,
    "MeasurementSpec": MeasurementSpec,
    "TenantSpec": TenantSpec,
    "SessionSpec": SessionSpec,
    "SpeculativeSpec": SpeculativeSpec,
    "HardwareSpec": HardwareSpec,
}


def _encode_value(value: Any) -> Any:
    """JSON-ready encoding of an axis value (scalars, shapes, spec types)."""
    if isinstance(value, RateShape):
        return {"__shape__": value.to_dict()}
    for tag, value_type in _SPEC_VALUE_TYPES.items():
        if isinstance(value, value_type):
            return {"__spec__": tag, "value": asdict(value)}
    if isinstance(value, (tuple, list)):
        return {"__seq__": [_encode_value(entry) for entry in value]}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ValueError(f"cannot serialise study axis value {value!r}")


def _decode_value(value: Any) -> Any:
    """Inverse of :func:`_encode_value`."""
    if isinstance(value, dict):
        if "__shape__" in value:
            return shape_from_dict(value["__shape__"])
        if "__spec__" in value:
            value_type = _SPEC_VALUE_TYPES[value["__spec__"]]
            payload = dict(value["value"])
            if hasattr(value_type, "from_dict"):
                return value_type.from_dict(payload)
            if value_type is PoolSpec:
                payload["traffic_classes"] = tuple(payload.get("traffic_classes", ()))
            if value_type is WeightedWorkload:
                if isinstance(payload.get("shape"), dict):
                    payload["shape"] = shape_from_dict(payload["shape"])
                if isinstance(payload.get("agent_config"), dict):
                    payload["agent_config"] = AgentConfig(**payload["agent_config"])
            if value_type is MeasurementSpec:
                payload["class_slos"] = tuple(
                    tuple(entry) for entry in payload.get("class_slos", ())
                )
            return value_type(**payload)
        if "__seq__" in value:
            return tuple(_decode_value(entry) for entry in value["__seq__"])
    return value


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


@dataclass
class StudyPoint:
    """One executed grid point: its coordinates, spec, and outcome."""

    coords: Dict[str, Any]
    labels: Dict[str, str]
    seed: int
    spec: ExperimentSpec
    outcome: ResultSet

    def metric(self, metric: Metric, missing_ok: bool = False) -> Optional[float]:
        """Evaluate a study metric on this point's outcome (see module docs)."""
        return resolve_metric(self.outcome, metric, missing_ok=missing_ok)


@dataclass(frozen=True)
class ParetoPoint:
    """One frontier member with its evaluated cost and quality."""

    point: StudyPoint
    cost: float
    quality: float


@dataclass
class StudyResult:
    """Outcome of :func:`run_study`: the executed grid, queryable."""

    study: StudySpec
    points: List[StudyPoint] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.points)

    @property
    def axis_names(self) -> List[str]:
        """Axis names in declaration order (point keys for explicit points)."""
        if self.study.axes:
            return [axis.name for axis in self.study.axes]
        names: List[str] = []
        for point in self.points:
            for name in point.coords:
                if name not in names:
                    names.append(name)
        return names

    def axis_values(self, name: str) -> List[Any]:
        """The distinct values of one axis, in declared (execution) order."""
        for axis in self.study.axes:
            if axis.name == name:
                return list(axis.values)
        values: List[Any] = []
        for point in self.points:
            if name in point.coords and point.coords[name] not in values:
                values.append(point.coords[name])
        if not values:
            raise ValueError(f"study has no axis {name!r}; known: {self.axis_names}")
        return values

    # -- slicing ---------------------------------------------------------------
    def slice(self, **coords: Any) -> "StudyResult":
        """The sub-study matching every given coordinate (value or label)."""
        kept = [
            point
            for point in self.points
            if all(
                point.coords.get(name) == value or point.labels.get(name) == value
                for name, value in coords.items()
            )
        ]
        return StudyResult(study=self.study, points=kept)

    # -- tabulation ------------------------------------------------------------
    DEFAULT_METRICS: Tuple[Tuple[str, Metric], ...] = (
        ("completed", "num_completed"),
        ("p95_s", "p95_latency"),
        ("throughput_qps", "throughput_qps"),
        ("energy_wh", "energy_wh"),
        ("replica_seconds", "replica_seconds"),
        ("rejection_rate", "rejection_rate"),
    )

    def tabulate(
        self, metrics: Optional[Sequence[Tuple[str, Metric]]] = None
    ) -> List[Dict[str, Any]]:
        """One flat row per point: axis labels, seed, and the given metrics."""
        chosen = tuple(metrics) if metrics is not None else self.DEFAULT_METRICS
        rows: List[Dict[str, Any]] = []
        multi_seed = len({point.seed for point in self.points}) > 1
        for point in self.points:
            row: Dict[str, Any] = dict(point.labels)
            if multi_seed:
                row["seed"] = point.seed
            for column, metric in chosen:
                # missing_ok: a class the point never served or a None-valued
                # telemetry field renders as an empty cell; unknown metric
                # names still raise.
                row[column] = point.metric(metric, missing_ok=True)
            rows.append(row)
        return rows

    def format(
        self,
        title: str = "",
        metrics: Optional[Sequence[Tuple[str, Metric]]] = None,
    ) -> str:
        """The tabulation rendered as an aligned text table."""
        # Local import: repro.analysis imports repro.api at module load.
        from repro.analysis.reporting import format_table

        return format_table(self.tabulate(metrics), title or self.study.name)

    # -- Pareto queries --------------------------------------------------------
    def pareto_frontier(
        self,
        cost: Metric,
        quality: Metric,
        minimize_cost: bool = True,
        minimize_quality: bool = True,
    ) -> List[ParetoPoint]:
        """The non-dominated points of the cost/quality plane.

        Defaults minimise both (e.g. ``cost="replica_seconds"``,
        ``quality="class_p95:chat"`` -- pay less, respond faster); flip
        ``minimize_quality=False`` for maximised qualities such as
        ``class_attainment:chat``.  Returns frontier members sorted by
        cost, each with its evaluated coordinates.
        """
        evaluated = [
            ParetoPoint(
                point=point,
                cost=point.metric(cost),
                quality=point.metric(quality),
            )
            for point in self.points
        ]
        cost_sign = 1.0 if minimize_cost else -1.0
        quality_sign = 1.0 if minimize_quality else -1.0

        def dominates(a: ParetoPoint, b: ParetoPoint) -> bool:
            better_cost = cost_sign * a.cost <= cost_sign * b.cost
            better_quality = quality_sign * a.quality <= quality_sign * b.quality
            strictly = (
                cost_sign * a.cost < cost_sign * b.cost
                or quality_sign * a.quality < quality_sign * b.quality
            )
            return better_cost and better_quality and strictly

        frontier = [
            candidate
            for candidate in evaluated
            if not any(dominates(other, candidate) for other in evaluated)
        ]
        return sorted(frontier, key=lambda entry: (cost_sign * entry.cost, entry.quality))

    # -- legacy bridge ---------------------------------------------------------
    def as_qps_sweep(self) -> Any:
        """Rebuild the legacy :class:`QpsSweepResult` from a one-axis qps study."""
        from repro.api.runners import compat_serving_config
        from repro.serving.sweep import QpsSweepResult

        sweep = QpsSweepResult(config=compat_serving_config(self.study.base))
        for point in self.points:
            if point.outcome.serving is None:
                raise ValueError("as_qps_sweep needs serving outcomes")
            sweep.results.append(point.outcome.serving)
        return sweep


def _run_study_point(payload: Tuple[StudySpec, int]) -> ResultSet:
    """Execute one grid point by index (module-level so it pickles).

    Workers receive the whole study plus the point's position in
    :meth:`StudySpec.expand` order and rebuild the concrete spec
    themselves, so the parent never has to ship non-picklable callables --
    and every worker derives the point exactly the way the serial loop
    does, keeping seeds and spec construction identical.
    """
    from repro.api.runners import run_experiment

    study, index = payload
    coords, _labels, seed = study.expand()[index]
    return run_experiment(study.spec_for(coords, seed))


def run_study(
    study: StudySpec,
    progress: Optional[Callable[[StudyPoint], None]] = None,
    parallel: int = 1,
) -> StudyResult:
    """Execute every point of the study grid (fresh system per point).

    Points run in :meth:`StudySpec.expand` order; each builds its spec
    (base + axis overrides + per-point seed) and drives it through
    :func:`~repro.api.runners.run_experiment`, so a one-point study is
    exactly one experiment and a one-axis qps study is exactly the legacy
    sweep.  ``progress`` (optional) is called after each completed point.

    ``parallel=N`` fans the points out over a ``ProcessPoolExecutor`` with
    ``N`` workers.  Points are independent (fresh simulation, per-point
    seed), so the merged :class:`StudyResult` is bit-for-bit identical to
    serial execution: same expansion order, same seeds, same tabulation.
    ``progress`` still fires in expansion order as results stream back.
    """
    from repro.api.runners import run_experiment

    if parallel < 1:
        raise ValueError(f"parallel must be >= 1, got {parallel}")
    grid = study.expand()
    result = StudyResult(study=study)

    def _append(index: int, outcome: ResultSet) -> None:
        coords, labels, seed = grid[index]
        point = StudyPoint(
            coords=dict(coords), labels=dict(labels), seed=seed,
            spec=study.spec_for(coords, seed), outcome=outcome,
        )
        result.points.append(point)
        if progress is not None:
            progress(point)

    if parallel > 1 and len(grid) > 1:
        from concurrent.futures import ProcessPoolExecutor

        workers = min(parallel, len(grid))
        tasks = [(study, index) for index in range(len(grid))]
        with ProcessPoolExecutor(max_workers=workers) as executor:
            for index, outcome in enumerate(executor.map(_run_study_point, tasks)):
                _append(index, outcome)
    else:
        for index, (coords, _labels, seed) in enumerate(grid):
            _append(index, run_experiment(study.spec_for(coords, seed)))
    return result
