"""Unified experiment API: the single front door for every experiment.

Declare *what* to run with a frozen :class:`ExperimentSpec` (model, replica
count, scheduler and router policies, agent, workload, arrival process, seed,
measurement window), let :class:`SystemBuilder` own *how* it is assembled,
and drive it with :func:`run_experiment` / :func:`run_sweep`, which return a
unified :class:`ResultSet`.

Quickstart::

    from repro.api import ArrivalSpec, ExperimentSpec, run_experiment

    spec = ExperimentSpec(
        agent="react",
        workload="hotpotqa",
        replicas=4,
        scheduler="sjf-by-predicted-decode",
        router="prefix-affinity",
        arrival=ArrivalSpec(process="poisson", qps=2.0, num_requests=60),
    )
    result = run_experiment(spec)
    print(result.summary())

For datacenter-scale scenarios the spec scales to a heterogeneous elastic
fleet: ``pools=[PoolSpec(...)]`` declares named replica pools (own model,
scheduler, router, traffic classes), ``workloads=[WeightedWorkload(...)]``
serves a weighted chatbot+agent traffic mixture through one arrival process,
and ``autoscaler=AutoscalerSpec(...)`` sizes a pool elastically from load
signals; the :class:`ResultSet` then reports per-pool and per-traffic-class
metrics plus replica-seconds (see ``examples/mixed_fleet.py``).

Traffic programs and studies: ``ArrivalSpec(shape=...)`` modulates the
arrival rate over time with a :mod:`repro.serving.shapes` rate shape
(ramp / square-wave burst / diurnal / trace replay / piecewise), each
``WeightedWorkload`` can carry its own shape so traffic classes burst
independently, and :class:`StudySpec` / :func:`run_study` sweep named axes
over *any* spec field (qps, shape, pool layouts, scheduler, forecaster,
admission) into a :class:`StudyResult` with tabulation, slicing, and
``pareto_frontier`` queries (see ``examples/fleet_sizing.py`` and
``examples/burst_profiles.py``).

Multi-tenancy: ``ArrivalSpec(tenants=TenantSpec(...))`` labels arrivals
with users drawn lazily from a Zipf-skewed population
(:mod:`repro.serving.tenants`), the ``vtc`` scheduler and the
``oit-throttle`` admission policy act on those labels, and tenanted
results report fairness metrics (``served_token_ratio``,
``jain_fairness``, ``tenant_throttle_decile:<d>``) usable as study/Pareto
axes (see ``examples/fairness.py``).

Multi-turn sessions: ``ArrivalSpec(sessions=SessionSpec(...))`` turns each
arrival into a conversation -- a fixed number of turns separated by
think-time gaps, each turn's prompt extending the previous turn's prompt
and answer token for token so the serving-level prefix cache can reuse the
conversation across turns.  The ``session-affinity`` router keeps a
conversation pinned to the replica holding its KV context, a session holds
one admission slot for its whole lifetime (``oit-throttle`` / ``slo-shed``
never sever a conversation mid-flight), and sessionful results report
``cross_turn_hit_rate``, ``total_turns``, ``completed_sessions``, and
``affinity_invalidations`` (see ``examples/sessions.py``).

Heterogeneous hardware: ``PoolSpec(hardware=HardwareSpec(gpu="H100-80GB"))``
(or an experiment-wide ``ExperimentSpec(hardware=...)``) pins pools to
catalog GPUs with their own roofline, power, and hourly cost, results gain
``cost_usd`` / ``energy_j`` / ``cost_per_1k_tokens``,
``pool_classification="cost-aware"`` routes work to the cheapest pool whose
predicted decode still meets the class SLO, and
:class:`~repro.serving.planner.FleetPlanner` picks an operating point from a
hardware-layout study's cost/quality frontier (see
``examples/hetero_fleet.py``).

The legacy entry points (``SingleRequestRunner``, ``AgentServer``,
``run_at_qps``, ``sweep_qps``) remain as thin compatibility shims over this
layer and reproduce their historical results bit-for-bit (``run_sweep`` is
a one-axis study).
"""

from repro.api.builder import System, SystemBuilder
from repro.api.results import ResultSet
from repro.api.runners import (
    ServingDriver,
    compat_serving_config,
    run_experiment,
    run_sweep,
)
from repro.api.spec import (
    ARRIVAL_PROCESSES,
    AdmissionSpec,
    ArrivalSpec,
    AutoscalerSpec,
    ExperimentSpec,
    MeasurementSpec,
    PoolSpec,
    WeightedWorkload,
)
from repro.api.study import (
    ParetoPoint,
    StudyAxis,
    StudyPoint,
    StudyResult,
    StudySpec,
    apply_axis_value,
    resolve_metric,
    run_study,
)
from repro.llm.hardware import HardwareSpec
from repro.llm.speculative import SpeculativeSpec
from repro.serving.planner import FleetPlan, FleetPlanner
from repro.serving.sessions import SessionSpec, SessionStats
from repro.serving.tenants import TenantSpec

__all__ = [
    "ARRIVAL_PROCESSES",
    "AdmissionSpec",
    "ArrivalSpec",
    "AutoscalerSpec",
    "ExperimentSpec",
    "FleetPlan",
    "FleetPlanner",
    "HardwareSpec",
    "MeasurementSpec",
    "ParetoPoint",
    "PoolSpec",
    "ResultSet",
    "ServingDriver",
    "SessionSpec",
    "SessionStats",
    "SpeculativeSpec",
    "StudyAxis",
    "StudyPoint",
    "StudyResult",
    "StudySpec",
    "System",
    "SystemBuilder",
    "TenantSpec",
    "WeightedWorkload",
    "apply_axis_value",
    "compat_serving_config",
    "resolve_metric",
    "run_experiment",
    "run_study",
    "run_sweep",
]
