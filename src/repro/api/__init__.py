"""Unified experiment API: the single front door for every experiment.

Declare *what* to run with a frozen :class:`ExperimentSpec` (model, replica
count, scheduler and router policies, agent, workload, arrival process, seed,
measurement window), let :class:`SystemBuilder` own *how* it is assembled,
and drive it with :func:`run_experiment` / :func:`run_sweep`, which return a
unified :class:`ResultSet`.

Quickstart::

    from repro.api import ArrivalSpec, ExperimentSpec, run_experiment

    spec = ExperimentSpec(
        agent="react",
        workload="hotpotqa",
        replicas=4,
        scheduler="sjf-by-predicted-decode",
        router="prefix-affinity",
        arrival=ArrivalSpec(process="poisson", qps=2.0, num_requests=60),
    )
    result = run_experiment(spec)
    print(result.summary())

For datacenter-scale scenarios the spec scales to a heterogeneous elastic
fleet: ``pools=[PoolSpec(...)]`` declares named replica pools (own model,
scheduler, router, traffic classes), ``workloads=[WeightedWorkload(...)]``
serves a weighted chatbot+agent traffic mixture through one arrival process,
and ``autoscaler=AutoscalerSpec(...)`` sizes a pool elastically from load
signals; the :class:`ResultSet` then reports per-pool and per-traffic-class
metrics plus replica-seconds (see ``examples/mixed_fleet.py``).

The legacy entry points (``SingleRequestRunner``, ``AgentServer``,
``run_at_qps``, ``sweep_qps``) remain as thin compatibility shims over this
layer and reproduce their historical results bit-for-bit.
"""

from repro.api.builder import System, SystemBuilder
from repro.api.results import ResultSet
from repro.api.runners import (
    ServingDriver,
    compat_serving_config,
    run_experiment,
    run_sweep,
)
from repro.api.spec import (
    ARRIVAL_PROCESSES,
    AdmissionSpec,
    ArrivalSpec,
    AutoscalerSpec,
    ExperimentSpec,
    MeasurementSpec,
    PoolSpec,
    WeightedWorkload,
)

__all__ = [
    "ARRIVAL_PROCESSES",
    "AdmissionSpec",
    "ArrivalSpec",
    "AutoscalerSpec",
    "ExperimentSpec",
    "MeasurementSpec",
    "PoolSpec",
    "ResultSet",
    "ServingDriver",
    "System",
    "SystemBuilder",
    "WeightedWorkload",
    "compat_serving_config",
    "run_experiment",
    "run_sweep",
]
