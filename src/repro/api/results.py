"""Unified result interface over characterization and serving outcomes.

The legacy entry points returned two unrelated result types --
:class:`~repro.core.runner.CharacterizationResult` (single-request
characterization) and :class:`~repro.serving.server.ServingResult` (serving
runs).  :class:`ResultSet` wraps whichever one an experiment produced and
exposes the shared metric vocabulary (request counts, latency distribution,
accuracy, throughput, energy) uniformly, while keeping the wrapped object
reachable through :attr:`raw` for mode-specific detail (GPU breakdowns,
KV-memory stats, admission delays, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.api.spec import ExperimentSpec
from repro.core.metrics import LatencyStats, mean
from repro.core.runner import CharacterizationResult


@dataclass
class ResultSet:
    """Outcome of one :func:`~repro.api.run_experiment` call."""

    spec: ExperimentSpec
    characterization: Optional[CharacterizationResult] = None
    serving: Optional[Any] = None  # ServingResult (typed loosely to avoid cycles)

    def __post_init__(self) -> None:
        if (self.characterization is None) == (self.serving is None):
            raise ValueError(
                "ResultSet wraps exactly one of characterization or serving"
            )

    # -- shape ----------------------------------------------------------------
    @property
    def kind(self) -> str:
        """``"characterization"`` or ``"serving"``, per the wrapped result."""
        return "characterization" if self.characterization is not None else "serving"

    @property
    def raw(self) -> Any:
        """The wrapped mode-specific result object."""
        return self.characterization if self.characterization is not None else self.serving

    # -- unified metrics -------------------------------------------------------
    @property
    def num_requests(self) -> int:
        """Requests in the measured window (sessionful runs count turns)."""
        if self.characterization is not None:
            return self.characterization.num_requests
        return self.serving.num_requests

    @property
    def num_completed(self) -> int:
        """Requests that ran to completion inside the measured window."""
        if self.characterization is not None:
            return self.characterization.num_requests
        return self.serving.num_completed

    @property
    def latencies(self) -> List[float]:
        """Per-request end-to-end latencies (seconds), in completion order."""
        return self.raw.latencies

    @property
    def latency_stats(self) -> LatencyStats:
        """Percentile summary (p50/p95/p99/mean) of :attr:`latencies`."""
        return LatencyStats.from_values(self.latencies)

    @property
    def mean_latency(self) -> float:
        """Mean end-to-end request latency (seconds)."""
        return mean(self.latencies)

    @property
    def p95_latency(self) -> float:
        """95th-percentile end-to-end request latency (seconds)."""
        return self.latency_stats.p95

    @property
    def accuracy(self) -> float:
        """Task accuracy over completed requests (oracle-graded)."""
        return self.raw.accuracy

    @property
    def duration(self) -> float:
        """Wall-clock (simulated) span of the measured window."""
        if self.characterization is not None:
            return sum(self.latencies)
        return self.serving.duration

    @property
    def throughput_qps(self) -> float:
        """Completed requests per simulated second of the measured window."""
        duration = self.duration
        if duration <= 0:
            return 0.0
        return self.num_completed / duration

    @property
    def energy_wh(self) -> float:
        """Engine energy (watt-hours) consumed over the measured window."""
        if self.characterization is not None:
            return sum(obs.energy_wh for obs in self.characterization.observations)
        return self.serving.energy_wh

    @property
    def energy_wh_per_query(self) -> float:
        """Energy per completed request (watt-hours)."""
        if self.num_completed == 0:
            return 0.0
        return self.energy_wh / self.num_completed

    # -- fleet metrics ---------------------------------------------------------
    @property
    def replica_seconds(self) -> float:
        """Replica-seconds paid for across every pool (serving runs only)."""
        if self.serving is None:
            return 0.0
        return self.serving.replica_seconds

    # -- hardware cost & energy --------------------------------------------------
    @property
    def cost_usd(self) -> float:
        """USD of replica-seconds, priced per pool's hardware (serving only)."""
        if self.serving is None:
            return 0.0
        return self.serving.cost_usd

    @property
    def served_tokens(self) -> float:
        """Prompt + output tokens of the measured requests (serving only)."""
        if self.serving is None:
            return 0.0
        return self.serving.served_tokens

    @property
    def cost_per_1k_tokens(self) -> float:
        """USD per 1000 served tokens (0.0 when nothing was served)."""
        if self.serving is None:
            return 0.0
        return self.serving.cost_per_1k_tokens

    @property
    def energy_j(self) -> float:
        """Measured-window energy in joules (:attr:`energy_wh` in SI units)."""
        if self.serving is None:
            return self.energy_wh * 3600.0
        return self.serving.energy_j

    @property
    def pool_stats(self) -> Dict[str, Any]:
        """Per-pool engine metrics (name -> PoolStats; empty for characterization)."""
        if self.serving is None:
            return {}
        return self.serving.pool_stats

    @property
    def class_stats(self) -> Dict[str, Any]:
        """Per-traffic-class request metrics (empty without a workload mixture)."""
        if self.serving is None:
            return {}
        return self.serving.class_stats

    def per_pool_summary(self) -> List[Dict[str, Any]]:
        """One flat row per replica pool (throughput, p95, energy, cost)."""
        return [stats.as_dict() for stats in self.pool_stats.values()]

    def per_class_summary(self) -> List[Dict[str, Any]]:
        """One flat row per traffic class of the workload mixture."""
        return [stats.as_dict() for stats in self.class_stats.values()]

    # -- admission control ------------------------------------------------------
    @property
    def admission_stats(self) -> Dict[str, Any]:
        """Per-class door accounting (name -> ClassAdmissionStats; serving only)."""
        if self.serving is None:
            return {}
        return self.serving.admission_stats

    @property
    def num_rejected(self) -> int:
        """Requests the admission policy shed instead of serving."""
        if self.serving is None:
            return 0
        return self.serving.num_rejected

    @property
    def rejection_rate(self) -> float:
        """Shed fraction of the offered load (0.0 with an open door)."""
        if self.serving is None:
            return 0.0
        return self.serving.rejection_rate

    @property
    def shed_tokens(self) -> float:
        """Estimated decode tokens the fleet avoided by shedding requests."""
        if self.serving is None:
            return 0.0
        return self.serving.shed_tokens

    @property
    def slo_attainment(self) -> Optional[float]:
        """Fraction of measured requests meeting the experiment-wide p95 SLO."""
        if self.serving is None:
            return None
        return self.serving.slo_attainment

    # -- predictive autoscaling -------------------------------------------------
    @property
    def forecast_mae(self) -> Optional[float]:
        """Mean absolute arrival-rate forecast error (predictive runs only)."""
        if self.serving is None:
            return None
        return self.serving.forecast_mae

    @property
    def scale_ahead_lead_s(self) -> Optional[float]:
        """Mean head start of forecast-triggered grows over the reactive trigger."""
        if self.serving is None:
            return None
        return self.serving.scale_ahead_lead_s

    def per_class_admission(self) -> List[Dict[str, Any]]:
        """One flat row per traffic class of the door accounting."""
        if self.serving is None:
            return []
        return self.serving.per_class_admission()

    # -- per-tenant fairness ------------------------------------------------------
    @property
    def tenant_stats(self) -> Optional[Any]:
        """Per-tenant fairness accounting (``None`` for untenanted runs)."""
        if self.serving is None:
            return None
        return self.serving.tenant_stats

    @property
    def served_token_ratio(self) -> Optional[float]:
        """Served-token max/min ratio across contending tenants (1.0 = fair)."""
        if self.serving is None:
            return None
        return self.serving.served_token_ratio

    @property
    def jain_fairness(self) -> Optional[float]:
        """Jain's fairness index over per-tenant served tokens."""
        if self.serving is None:
            return None
        return self.serving.jain_fairness

    @property
    def tenant_throttle_rate(self) -> Optional[float]:
        """Door rejection fraction of tenanted offers."""
        if self.serving is None:
            return None
        return self.serving.tenant_throttle_rate

    # -- multi-turn sessions ------------------------------------------------------
    @property
    def session_stats(self) -> Optional[Any]:
        """Multi-turn session accounting (``None`` for sessionless runs)."""
        if self.serving is None:
            return None
        return self.serving.session_stats

    @property
    def cross_turn_hit_rate(self) -> Optional[float]:
        """Prefix-cache hit rate over later-turn prompt tokens."""
        if self.serving is None:
            return None
        return self.serving.cross_turn_hit_rate

    @property
    def num_sessions(self) -> Optional[int]:
        """Interactions started during the run."""
        if self.serving is None:
            return None
        return self.serving.num_sessions

    @property
    def completed_sessions(self) -> Optional[int]:
        """Interactions that finished their final turn."""
        if self.serving is None:
            return None
        return self.serving.completed_sessions

    @property
    def total_turns(self) -> Optional[int]:
        """Turns served across every session."""
        if self.serving is None:
            return None
        return self.serving.total_turns

    @property
    def mean_turns_per_session(self) -> Optional[float]:
        """Mean turns served per started session."""
        if self.serving is None:
            return None
        return self.serving.mean_turns_per_session

    @property
    def affinity_invalidations(self) -> Optional[int]:
        """Sticky-routing re-pins (spills plus homes lost to replica churn)."""
        if self.serving is None:
            return None
        return self.serving.affinity_invalidations

    # -- engine fidelity ----------------------------------------------------------
    @property
    def prefill_hol_block_s(self) -> float:
        """Seconds decodes spent blocked behind atomic prefill steps."""
        if self.serving is None:
            return 0.0
        return self.serving.prefill_hol_block_s

    @property
    def mean_accepted_per_step(self) -> Optional[float]:
        """Mean draft tokens accepted per speculative verify (``None`` = off)."""
        if self.serving is None:
            return None
        return self.serving.mean_accepted_per_step

    @property
    def draft_energy_j(self) -> float:
        """Joules spent in speculative draft passes (0.0 without speculation)."""
        if self.serving is None:
            return 0.0
        return self.serving.draft_energy_j

    # -- metric vocabulary ------------------------------------------------------
    def metric(self, name: str) -> float:
        """Resolve a study-metric name on this result.

        Accepts any :class:`ResultSet` attribute name (``replica_seconds``,
        ``p95_latency``, ``energy_wh``, ``energy_j``, ``cost_usd``,
        ``cost_per_1k_tokens``, ``rejection_rate``,
        ``served_token_ratio``, ``jain_fairness``, ...), the per-class form
        ``class_<stat>:<label>`` (``class_p95:chat``,
        ``class_attainment:chat``, ``class_rejection:agent``), or the
        per-decile form ``tenant_throttle_decile:<0-9>`` (throttle rate of
        one tenant population decile; decile 0 is the hottest 10% of users)
        -- the same vocabulary
        :meth:`repro.api.study.StudyResult.pareto_frontier` and tabulation
        use, so a metric proven interactively drops straight into a study
        query.
        """
        # Local import: study imports this module at load time.
        from repro.api.study import resolve_metric

        return resolve_metric(self, name)

    # -- reporting -------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """Flat metric dict, convenient for tables and JSON dumps."""
        stats = self.latency_stats
        summary = {
            "kind": self.kind,
            "num_requests": self.num_requests,
            "num_completed": self.num_completed,
            "mean_latency_s": self.mean_latency,
            "p50_latency_s": stats.p50,
            "p95_latency_s": stats.p95,
            "accuracy": self.accuracy,
            "throughput_qps": self.throughput_qps,
            "energy_wh_per_query": self.energy_wh_per_query,
        }
        if self.serving is not None:
            summary["replica_seconds"] = self.replica_seconds
            summary["cost_usd"] = self.cost_usd
            summary["cost_per_1k_tokens"] = self.cost_per_1k_tokens
            summary["energy_j"] = self.energy_j
            summary["rejection_rate"] = self.rejection_rate
            if self.slo_attainment is not None:
                summary["slo_attainment"] = self.slo_attainment
            if self.forecast_mae is not None:
                summary["forecast_mae"] = self.forecast_mae
            if self.scale_ahead_lead_s is not None:
                summary["scale_ahead_lead_s"] = self.scale_ahead_lead_s
            if self.tenant_stats is not None:
                summary["served_token_ratio"] = self.served_token_ratio
                summary["jain_fairness"] = self.jain_fairness
                summary["tenant_throttle_rate"] = self.tenant_throttle_rate
            if self.session_stats is not None:
                summary["num_sessions"] = self.num_sessions
                summary["completed_sessions"] = self.completed_sessions
                summary["total_turns"] = self.total_turns
                summary["cross_turn_hit_rate"] = self.cross_turn_hit_rate
                summary["affinity_invalidations"] = self.affinity_invalidations
            if self.spec.prefill_chunk_tokens is not None:
                summary["prefill_hol_block_s"] = self.prefill_hol_block_s
            if self.mean_accepted_per_step is not None:
                summary["mean_accepted_per_step"] = self.mean_accepted_per_step
                summary["draft_energy_j"] = self.draft_energy_j
        return summary
