"""Experiment runners: the canonical characterization and serving loops.

``run_experiment`` is the single entry point: it assembles a
:class:`~repro.api.builder.System` from the spec and drives it according to
the spec's arrival process:

* ``single``     -> one-request-at-a-time characterization (paper IV-A/IV-B),
* ``poisson`` / ``uniform`` -> open-loop serving (paper IV-C, Fig. 10/11),
* ``sequential`` -> closed-loop sequential serving baseline.

``run_sweep`` repeats an open-loop experiment across offered loads and
returns the tail-latency-vs-QPS curve (paper Fig. 11).

The legacy entry points (``SingleRequestRunner``, ``AgentServer``,
``run_at_qps``, ``sweep_qps``) are compatibility shims over these loops; the
loops preserve the legacy random-stream labelling (including the historical
worker-numbering behaviour) so one-replica FCFS specs reproduce legacy
results bit-for-bit.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.agents import AgentRunResult
from repro.api.builder import System, SystemBuilder
from repro.api.results import ResultSet
from repro.api.spec import ExperimentSpec
from repro.core.metrics import (
    GpuRuntimeBreakdown,
    PoolStats,
    TrafficClassStats,
    mean,
    percentile,
)
from repro.core.runner import CharacterizationResult, RequestObservation
from repro.llm.energy import PowerState
from repro.llm.tokenizer import SegmentKind
from repro.serving.cluster import ReplicaPool
from repro.serving.loadgen import (
    ArrivalPlan,
    mixture_plan,
    poisson_plan,
    sequential_plan,
    shaped_plan,
    uniform_plan,
)
from repro.serving.sessions import SessionSpec, SessionState, SessionStats
from repro.serving.shapes import ConstantShape
from repro.serving.server import ServingConfig, ServingResult
from repro.serving.sweep import QpsSweepResult
from repro.serving.tenants import Tenant, tenant_fairness
from repro.sim import RandomStream
from repro.workloads.base import Task


def compat_serving_config(spec: ExperimentSpec) -> ServingConfig:
    """Legacy :class:`ServingConfig` equivalent of ``spec`` (for result objects)."""
    return ServingConfig(
        agent=spec.agent,
        benchmark=spec.workload,
        model=spec.model,
        enable_prefix_caching=spec.enable_prefix_caching,
        agent_config=spec.agent_config,
        seed=spec.seed,
        max_decode_chunk=spec.max_decode_chunk,
        max_concurrency=spec.max_concurrency,
    )


# ---------------------------------------------------------------------------
# Characterization (arrival process: "single")
# ---------------------------------------------------------------------------


def _run_characterization(
    system: System, tasks: Optional[List[Task]] = None
) -> CharacterizationResult:
    spec = system.spec
    env, cluster = system.env, system.cluster
    if tasks is None:
        tasks = system.workload.sample_tasks(spec.arrival.num_requests)
    elif spec.measurement.warmup_requests >= len(tasks):
        # Spec validation only covers arrival.num_requests; explicit task
        # lists bypass it and must not silently measure an empty window.
        raise ValueError(
            f"measurement.warmup_requests ({spec.measurement.warmup_requests}) "
            f"must be smaller than the explicit task list ({len(tasks)} tasks): "
            "the measured window would be empty"
        )
    agent = system.create_agent(seed_stream=system.stream)

    outcome = CharacterizationResult(
        agent=spec.agent,
        benchmark=spec.workload,
        model=cluster.model.name,
        config=spec.agent_config,
        prefix_caching=spec.enable_prefix_caching,
    )
    for task in tasks:
        start_time = env.now
        energy_before = cluster.energy_snapshot()
        result: AgentRunResult = env.run(agent.run_process(task))
        end_time = env.now
        window = cluster.energy_since(energy_before)
        gpu = GpuRuntimeBreakdown.from_engine_window(
            cluster.runtime_breakdown(start_time, end_time)
        )
        kv_stats = cluster.kv_memory_stats(start_time, end_time)
        outcome.observations.append(
            RequestObservation(
                result=result,
                energy_wh=window.total_wh,
                energy_joules_by_state=dict(window.joules_by_state),
                gpu=gpu,
                kv_average_bytes=kv_stats["average_bytes"],
                kv_max_bytes=kv_stats["max_bytes"],
            )
        )
    # Warm-up exclusion: drop the first ``warmup_requests`` observations so
    # characterization honours MeasurementSpec instead of silently ignoring
    # it (spec validation guarantees at least one observation survives).
    warmup = spec.measurement.warmup_requests
    if warmup:
        outcome.observations = outcome.observations[warmup:]
    return outcome


# ---------------------------------------------------------------------------
# Serving (arrival processes: "poisson", "uniform", "sequential")
# ---------------------------------------------------------------------------


class ServingDriver:
    """Drives one assembled system through an arrival plan.

    Every arrival is offered to the system's
    :class:`~repro.serving.admission.AdmissionController` before any work is
    enqueued: admitted requests spawn a worker immediately, delayed requests
    wait in a per-policy door queue (drained when a completion frees capacity
    or at the policy's requested retry time, e.g. a token-bucket refill), and
    rejected requests are shed with per-class and per-pool accounting.  With
    no admission spec and no ``max_concurrency`` the controller is the open
    door and the driver is event-for-event identical to the legacy
    ``AgentServer`` loop; with ``max_concurrency`` set it reproduces the
    historical enforced gate bit-for-bit.
    """

    def __init__(self, system: System):
        self.system = system
        self.env = system.env
        self.spec = system.spec
        self.admission = system.admission
        # Legacy worker counter: incremented when a worker process starts,
        # decremented when it finishes, and used to label the worker's agent
        # seed stream (kept for bit-for-bit legacy compatibility).
        self._active_workers = 0
        # Door queues of delayed requests, one FIFO per admission policy
        # instance (so a shared policy keeps the legacy global FIFO order
        # while per-class policies cannot head-of-line block each other).
        self._door_queues: Dict[
            int,
            Tuple[
                object,
                Deque[
                    Tuple[
                        float, Task, Optional[str], Optional[Tenant], List[AgentRunResult]
                    ]
                ],
            ],
        ] = {}
        # Policies with a pending retry timer (keyed by id(policy)).
        self._retry_pending: set = set()
        self._admission_delays: List[float] = []
        # (completion time, tenant, served tokens) per tenanted completion,
        # for the contended-window fairness report.
        self._tenant_completions: List[Tuple[float, Tenant, float]] = []
        # (time, energy snapshot) at the moment the warm-up window closed.
        self._warmup_boundary: Optional[Tuple[float, object]] = None
        # Which traffic classes feed the autoscaler's arrival forecaster:
        # only arrivals the autoscaled pool would serve count as its demand
        # (None = every arrival; the single-pool case).
        self._forecast_labels: Optional[set] = self._forecast_label_filter()
        # Multi-turn sessions: enabled when the arrival spec or any traffic
        # class declares a SessionSpec.  When disabled, none of the session
        # machinery draws randomness or schedules events, so sessionless
        # specs stay bit-for-bit identical to the single-shot driver.
        self._sessions_enabled = system.spec.arrival.sessions is not None or any(
            runtime.sessions is not None for runtime in system.traffic.values()
        )
        self._session_counter = 0
        self._session_stats = SessionStats()
        # Completed interaction roots: finished sessions plus sessionless
        # requests.  The drain loop counts roots (not turns) against the
        # arrival plan when sessions are on, since every plan entry is the
        # first turn of one interaction.
        self._roots_done = 0
        # Per-session think-time streams (created lazily, sessions only).
        self._think_streams: Dict[str, RandomStream] = {}

    def _forecast_label_filter(self) -> Optional[set]:
        """Traffic-class labels whose arrivals land on the autoscaled pool.

        Class-level approximation of the cluster's two-stage routing: labels
        the pool claims, plus -- when the pool is the default -- unlabelled
        arrivals and labels no pool claims (``None`` in the set stands for
        both).  Decode-length classification and cross-pool spill are not
        modelled; the forecast is a demand estimate, not an exact router.
        ``None`` (match everything) for single-pool fleets or no forecaster.
        """
        autoscaler = self.system.autoscaler
        if autoscaler is None or autoscaler.forecaster is None:
            return None
        cluster = self.system.cluster
        if len(cluster.pools) == 1:
            return None
        pool = autoscaler.pool
        labels: set = {label.lower() for label in pool.traffic_classes}
        if pool is cluster.default_pool:
            claimed_elsewhere = {
                label
                for other in cluster.pools.values()
                if other is not pool
                for label in other.traffic_classes
            }
            labels.add(None)
            for runtime in self.system.traffic.values():
                if runtime.label.lower() not in claimed_elsewhere:
                    labels.add(runtime.label.lower())
        return labels

    # -- agent/worker assembly ------------------------------------------------
    def _make_agent(self, label: Optional[str] = None):
        seed_stream = self.system.stream.substream(
            f"agent-worker/{self._active_workers}"
        )
        if label is None:
            return self.system.create_agent(seed_stream=seed_stream)
        return self.system.create_class_agent(label, seed_stream=seed_stream)

    def _worker(
        self,
        task: Task,
        label: Optional[str],
        tenant: Optional[Tenant],
        collected: List[AgentRunResult],
        session: Optional[SessionState] = None,
    ):
        self._active_workers += 1
        agent = self._make_agent(label)
        if tenant is not None:
            # Stamped onto every LLM request the agent issues, so fairness
            # schedulers (vtc) can account served tokens per tenant.
            agent.request_metadata["tenant"] = tenant.user
        if session is not None:
            # Stamped onto every LLM request of every turn, so sticky routers
            # (session-affinity) can pin the conversation to one replica.
            agent.request_metadata["session"] = session.session_id
            agent.request_metadata["session_turn"] = session.next_turn
            if session.context:
                agent.context_prefix = list(session.context)
                agent.followup_span = self._followup_span(session)
        result = yield agent.run_process(task)
        if label is not None:
            result.metadata["traffic_class"] = label
        if tenant is not None:
            result.metadata["tenant"] = tenant
            self._tenant_completions.append(
                (
                    self.env.now,
                    tenant,
                    float(result.total_prompt_tokens + result.total_output_tokens),
                )
            )
        collected.append(result)
        self._note_completion(collected)
        self._active_workers -= 1
        if session is not None:
            self._on_turn_done(session, agent, label, tenant, result, collected)
        else:
            if self._sessions_enabled:
                self._roots_done += 1
            self._on_worker_done(label, tenant, result)

    def _note_completion(self, collected: List[AgentRunResult]) -> None:
        """Mark the instant the warm-up window closes (for window-true metrics)."""
        warmup = self.spec.measurement.warmup_requests
        if warmup and len(collected) == warmup:
            self._warmup_boundary = (self.env.now, self.system.cluster.energy_snapshot())

    def _spawn(
        self,
        task: Task,
        label: Optional[str],
        tenant: Optional[Tenant],
        collected: List[AgentRunResult],
        session: Optional[SessionState] = None,
    ) -> None:
        if session is None and self._sessions_enabled:
            # An admitted arrival is the first turn of a new interaction when
            # its class (or the arrival spec) declares a session shape.  The
            # session is created *after* admission: a session holds exactly
            # one door slot for its whole lifetime, from first turn through
            # every think-time gap, released only when the last turn ends.
            session_spec = self._session_spec_for(label)
            if session_spec is not None:
                session = SessionState(
                    session_id=f"s{self._session_counter}",
                    spec=session_spec,
                    task=task,
                    label=label,
                    tenant=tenant,
                )
                self._session_counter += 1
                self._session_stats.num_sessions += 1
        self.env.process(self._worker(task, label, tenant, collected, session))

    def _session_spec_for(self, label: Optional[str]) -> Optional[SessionSpec]:
        """Effective session shape for a traffic class (override, else inherit).

        Mirrors the tenant-spec semantics: a class-level ``sessions`` wins,
        otherwise the arrival-level spec applies to every class (or to the
        single legacy workload).  ``None`` = single-shot.
        """
        if label is not None:
            runtime = self.system.traffic.get(label)
            if runtime is not None and runtime.sessions is not None:
                return runtime.sessions
        return self.spec.arrival.sessions

    # -- door gate (admission control) ----------------------------------------
    def _door_queue_for(
        self, policy
    ) -> Deque[
        Tuple[float, Task, Optional[str], Optional[Tenant], List[AgentRunResult]]
    ]:
        entry = self._door_queues.get(id(policy))
        if entry is None:
            entry = self._door_queues[id(policy)] = (policy, deque())
        return entry[1]

    def _admit(
        self,
        task: Task,
        label: Optional[str],
        tenant: Optional[Tenant],
        collected: List[AgentRunResult],
    ) -> None:
        from repro.serving.admission import ADMIT, DELAY

        self._note_arrival(label)
        decision = self.admission.offer(self.env.now, label, tenant)
        if decision == ADMIT:
            self._admission_delays.append(0.0)
            self._spawn(task, label, tenant, collected)
        elif decision == DELAY:
            policy = self.admission.policy_for(label)
            self._door_queue_for(policy).append(
                (self.env.now, task, label, tenant, collected)
            )
            self._schedule_retry(policy)
        # REJECT: the request is shed; the controller recorded it.

    def _note_arrival(self, label: Optional[str]) -> None:
        """Feed the arrival timeline to the autoscaler's forecaster (if any).

        Only arrivals the autoscaled pool would serve count: forecasting the
        fleet-wide rate would size one pool for every pool's demand.
        """
        autoscaler = self.system.autoscaler
        if autoscaler is None or autoscaler.forecaster is None:
            return
        if self._forecast_labels is not None:
            key = label.lower() if isinstance(label, str) else label
            if key not in self._forecast_labels:
                return
        autoscaler.forecaster.observe(self.env.now)

    def _on_worker_done(
        self, label: Optional[str], tenant: Optional[Tenant], result: AgentRunResult
    ) -> None:
        self.admission.on_complete(
            self.env.now, label, result.e2e_latency, result.total_output_tokens, tenant
        )
        self._drain_door_queues()

    # -- multi-turn sessions ----------------------------------------------------
    def _on_turn_done(
        self,
        session: SessionState,
        agent,
        label: Optional[str],
        tenant: Optional[Tenant],
        result: AgentRunResult,
        collected: List[AgentRunResult],
    ) -> None:
        """Account one finished turn; close the session or schedule the next.

        A session is one interaction at the admission door: the final turn
        releases its slot through the normal completion path, while every
        earlier turn only reports telemetry (``on_turn_complete``) so
        ``oit-throttle``/``slo-shed`` never sever a conversation mid-flight
        -- the same in-flight protection interactions get within a turn.
        """
        session.turns_done += 1
        stats = self._session_stats
        stats.total_turns += 1
        result.metadata["session"] = session.session_id
        result.metadata["session_turn"] = session.turns_done
        if session.turns_done > 1:
            # Cross-turn reuse accounting: a later turn's prompt begins with
            # the previous turn's full conversation, so its cached prompt
            # tokens measure how much session context the prefix cache (and
            # the router's placement) actually retained across the gap.
            for call in result.llm_calls:
                stats.cross_turn_prompt_tokens += call.prompt_tokens
                stats.cross_turn_cached_tokens += call.cached_prompt_tokens
        if session.finished:
            stats.completed_sessions += 1
            self._roots_done += 1
            self._on_worker_done(label, tenant, result)
            return
        # The conversation grows by this turn's full prompt plus its answer;
        # the next turn's prompt extends it token for token, which is the
        # exact-prefix match the cross-turn cache hit depends on.
        context = list(agent.last_prompt_spans)
        if result.llm_calls:
            context.append(result.llm_calls[-1].output_span())
        session.context = context
        self.admission.on_turn_complete(
            self.env.now, label, result.e2e_latency, result.total_output_tokens, tenant
        )
        self._drain_door_queues()
        self.env.process(self._session_continuation(session, collected))

    def _session_continuation(self, session: SessionState, collected):
        """Think-time gap, then re-inject the session's next turn (closed loop)."""
        yield self.env.timeout(max(self._think_time(session), 0.0))
        self._spawn(session.task, session.label, session.tenant, collected, session=session)

    def _think_time(self, session: SessionState) -> float:
        spec = session.spec
        if spec.think_time_s <= 0:
            return 0.0
        if spec.think_time == "constant":
            return spec.think_time_s
        stream = self._think_streams.get(session.session_id)
        if stream is None:
            # One fresh substream per session, created only when sessions are
            # active: the experiment's existing streams draw nothing new, so
            # sessionless runs remain bit-for-bit identical.
            stream = self.system.stream.substream(
                f"session-think/{session.session_id}"
            )
            self._think_streams[session.session_id] = stream
        return stream.exponential(spec.think_time_s)

    def _followup_span(self, session: SessionState):
        """The next user message: fresh tokens keyed by (task, turn number)."""
        return self.system.cluster.tokenizer.span(
            SegmentKind.USER,
            f"user:{session.task.task_id}#turn{session.next_turn}",
            session.spec.followup_tokens,
        )

    def _drain_door_queues(self) -> None:
        for policy, queue in list(self._door_queues.values()):
            self._drain_door_queue(policy, queue)

    def _drain_door_queue(self, policy, queue) -> None:
        from repro.serving.admission import ADMIT, REJECT

        while queue:
            enqueued_at, task, label, tenant, sink = queue[0]
            decision = self.admission.readmit(self.env.now, label, tenant)
            if decision == ADMIT:
                queue.popleft()
                self._admission_delays.append(self.env.now - enqueued_at)
                self._spawn(task, label, tenant, sink)
            elif decision == REJECT:
                # Shed after waiting at the door (late slo-shed engagement).
                queue.popleft()
            else:
                self._schedule_retry(policy)
                return

    def _schedule_retry(self, policy) -> None:
        """Arm the policy's spontaneous re-offer timer (token refills etc.)."""
        if id(policy) in self._retry_pending:
            return
        retry_at = policy.retry_at(self.env.now)
        if retry_at is None:
            return  # Re-offered when a completion frees capacity.
        self._retry_pending.add(id(policy))
        self.env.process(self._retry_after(policy, retry_at))

    def _retry_after(self, policy, retry_at: float):
        yield self.env.timeout(max(0.0, retry_at - self.env.now))
        self._retry_pending.discard(id(policy))
        entry = self._door_queues.get(id(policy))
        if entry is not None:
            self._drain_door_queue(policy, entry[1])

    def _request_generator(self, plan: ArrivalPlan, collected: List[AgentRunResult]):
        previous = 0.0
        for arrival, task, label, tenant in zip(
            plan.arrival_times, plan.tasks, plan.labels(), plan.tenant_labels()
        ):
            gap = arrival - previous
            if gap > 0:
                yield self.env.timeout(gap)
            previous = arrival
            self._admit(task, label, tenant, collected)

    # -- open-loop serving ----------------------------------------------------
    def serve(self, plan: ArrivalPlan) -> ServingResult:
        """Serve an arrival plan to completion and collect serving metrics."""
        system, env = self.system, self.env
        warmup = self.spec.measurement.warmup_requests
        if warmup >= len(plan):
            raise ValueError(
                f"measurement.warmup_requests ({warmup}) must be smaller than "
                f"the arrival plan ({len(plan)} requests): the measured window "
                "would be empty"
            )
        collected: List[AgentRunResult] = []
        self._admission_delays = []
        self._warmup_boundary = None
        self._door_queues.clear()
        self._retry_pending.clear()
        self._tenant_completions = []
        self._session_counter = 0
        self._session_stats = SessionStats()
        self._roots_done = 0
        self._think_streams = {}
        self.admission.reset_counts()
        energy_before = system.cluster.energy_snapshot()
        start_time = env.now
        generator = env.process(self._request_generator(plan, collected))
        env.run(generator)
        # Drain: run until every issued request has been answered or shed (or
        # no progress remains possible, which would indicate a deadlocked
        # worker).  An autoscaler's periodic heartbeat keeps the event queue
        # non-empty forever, so "queue empty" alone is not a liveness test:
        # when only background timers (heartbeats, replica warm-ups) remain,
        # no worker can ever complete and we bail out the same way.  With
        # sessions on, a plan entry is one *interaction*: the loop counts
        # completed roots (finished sessions + sessionless requests) while
        # think-time timers count as foreground work that keeps it alive.
        if self._sessions_enabled:
            while (
                self._roots_done + self.admission.total_rejected < len(plan)
                and env.peek() != float("inf")
            ):
                if self._only_background_events_remain():
                    break
                env.step()
        else:
            while (
                len(collected) + self.admission.total_rejected < len(plan)
                and env.peek() != float("inf")
            ):
                if self._only_background_events_remain():
                    break
                env.step()
        end_time = env.now
        return self._build_result(
            collected,
            offered_qps=plan.offered_qps,
            # With sessions every turn is a served request, so the request
            # count is what actually completed rather than the plan length.
            num_requests=len(collected) if self._sessions_enabled else len(plan),
            energy_before=energy_before,
            start_time=start_time,
            end_time=end_time,
            contended_until=start_time + plan.duration,
        )

    def _only_background_events_remain(self) -> bool:
        """True when every scheduled event is an autoscaler/warm-up timer."""
        autoscaler = self.system.autoscaler
        if autoscaler is None:
            return False
        background = set()
        if autoscaler.sleep_event is not None:
            background.add(id(autoscaler.sleep_event))
        for pool in self.system.cluster.pools.values():
            background.update(id(timer) for timer in pool.activation_timers)
        pending = self.env.pending_events()
        return bool(pending) and all(id(event) in background for event in pending)

    # -- closed-loop sequential serving ---------------------------------------
    def serve_sequential(self, num_requests: int) -> ServingResult:
        """Process requests strictly one at a time (the paper's baseline)."""
        system, env = self.system, self.env
        plan = sequential_plan(system.workload, num_requests)
        collected: List[AgentRunResult] = []
        self._admission_delays = []
        self._warmup_boundary = None
        self._tenant_completions = []
        # Closed-loop serving bypasses the door (one request at a time can
        # never overload it); clear stale accounting from a previous run.
        self.admission.reset_counts()
        energy_before = system.cluster.energy_snapshot()
        start_time = env.now
        for task in plan.tasks:
            agent = self._make_agent()
            result = env.run(agent.run_process(task))
            collected.append(result)
            self._note_completion(collected)
        return self._build_result(
            collected,
            offered_qps=0.0,
            num_requests=num_requests,
            energy_before=energy_before,
            start_time=start_time,
            end_time=env.now,
        )

    # -- result assembly -------------------------------------------------------
    def _build_result(
        self,
        collected: List[AgentRunResult],
        offered_qps: float,
        num_requests: int,
        energy_before,
        start_time: float,
        end_time: float,
        contended_until: Optional[float] = None,
    ) -> ServingResult:
        system = self.system
        # Warm-up trimming: the measured window opens when the warmup-th
        # request completes.  Completions before it are dropped, the issued
        # count shrinks to match (so completion-ratio consumers such as the
        # peak-throughput knee gate compare like with like), and duration /
        # energy / GPU / KV stats are taken from the boundary instead of the
        # run start so derived rates stay warm-up-clean.
        warmup = self.spec.measurement.warmup_requests
        if warmup and self._warmup_boundary is not None:
            start_time, energy_before = self._warmup_boundary
        measured = collected[warmup:] if warmup else collected
        measured_requests = max(num_requests - warmup, 0) if warmup else num_requests
        # Admission delays are recorded in spawn (≈ arrival) order; trim the
        # earliest entries so the door-queueing statistics cover the same
        # warm-up-clean window as every other metric.
        delays = self._admission_delays[warmup:] if warmup else self._admission_delays
        duration = max(end_time - start_time, 1e-9)
        window = system.cluster.energy_since(energy_before)
        gpu = GpuRuntimeBreakdown.from_engine_window(
            system.cluster.runtime_breakdown(start_time, end_time)
        )
        kv_stats = system.cluster.kv_memory_stats(start_time, end_time)
        # Price shed requests at the run's final per-class token means before
        # the per-pool snapshot is taken.
        self.admission.finalize_shed_estimates()
        # Forecast telemetry (predictive autoscaling only): realised forecast
        # error and the head start each forecast-triggered grow bought.
        forecast_mae = None
        scale_ahead_leads: List[float] = []
        autoscaler = system.autoscaler
        if autoscaler is not None and autoscaler.forecaster is not None:
            forecast_mae = autoscaler.forecast_mae(end_time)
            scale_ahead_leads = list(autoscaler.scale_ahead_leads)
        # Engine-fidelity telemetry: whole-run counters summed across
        # replicas (like preemptions), draft energy from the measured window.
        prefill_hol_block_s = 0.0
        spec_sequence_steps = 0
        spec_accepted_tokens = 0
        for engine in system.cluster.engines:
            prefill_hol_block_s += engine.prefill_hol_block_s
            spec_sequence_steps += engine.spec_sequence_steps
            spec_accepted_tokens += engine.spec_accepted_tokens
        draft_energy_j = window.joules_by_state.get(PowerState.DRAFT, 0.0)
        session_stats = None
        if self._sessions_enabled:
            self._session_stats.affinity_invalidations = sum(
                getattr(pool.router, "invalidations", 0)
                for pool in system.cluster.pools.values()
            )
            session_stats = self._session_stats
        # Hardware cost: each pool's replica-seconds priced at its own
        # replica-hour rate (mirrors the replica_seconds accounting basis).
        cost_usd = sum(
            pool.cost_until(end_time) for pool in system.cluster.pools.values()
        )
        served_tokens = sum(
            float(result.total_prompt_tokens + result.total_output_tokens)
            for result in measured
        )
        return ServingResult(
            config=compat_serving_config(self.spec),
            offered_qps=offered_qps,
            num_requests=measured_requests,
            results=measured,
            duration=duration,
            energy_wh=window.total_wh,
            gpu=gpu,
            kv_average_bytes=kv_stats["average_bytes"],
            kv_max_bytes=kv_stats["max_bytes"],
            preemptions=system.cluster.preemption_count,
            prefix_cache_hit_rate=system.cluster.prefix_cache_hit_rate(),
            num_replicas=system.cluster.num_replicas,
            routed_counts=list(system.cluster.routed_counts),
            admission_delays=list(delays),
            pool_stats={
                pool.name: self._pool_stats(
                    pool, energy_before, start_time, end_time, duration
                )
                for pool in system.cluster.pools.values()
            },
            class_stats=self._class_stats(measured, duration),
            replica_seconds=system.cluster.replica_seconds_until(end_time),
            cost_usd=cost_usd,
            served_tokens=served_tokens,
            scaling_events=list(system.cluster.scaling_events),
            admission_stats=self.admission.class_stats(),
            slo_p95_s=self.spec.measurement.slo_p95_s,
            forecast_mae=forecast_mae,
            scale_ahead_leads=scale_ahead_leads,
            tenant_stats=self._tenant_stats(contended_until),
            session_stats=session_stats,
            prefill_hol_block_s=prefill_hol_block_s,
            spec_sequence_steps=spec_sequence_steps,
            spec_accepted_tokens=spec_accepted_tokens,
            draft_energy_j=draft_energy_j,
        )

    def _tenant_stats(self, contended_until: Optional[float]):
        """Per-tenant fairness over the contended window (None = untenanted).

        The driver drains every admitted request, so end-of-run totals are
        scheduler-independent; what a fairness scheduler changes is who gets
        served *while tenants are still competing*.  Served tokens therefore
        count completions up to the contended horizon: the later of the last
        arrival time and the half-work horizon (the completion at which half
        of all served tokens had finished).  The half-work extension keeps
        the window non-degenerate on short runs, where every completion can
        land after the final arrival; under a backlog the drain stays
        contended well past the last arrival, and which tenants own the
        first half of the served work is exactly the ordering signal a
        fairness scheduler controls.
        """
        events = sorted(self._tenant_completions, key=lambda event: event[0])
        if contended_until is not None and events:
            total_tokens = sum(tokens for _, _, tokens in events)
            accumulated = 0.0
            half_horizon = events[-1][0]
            for finished_at, _, tokens in events:
                accumulated += tokens
                if accumulated >= 0.5 * total_tokens:
                    half_horizon = finished_at
                    break
            contended_until = max(contended_until, half_horizon)
        served: Dict[Tenant, float] = {}
        for finished_at, tenant, tokens in events:
            if contended_until is not None and finished_at > contended_until:
                continue
            served[tenant] = served.get(tenant, 0.0) + tokens
        return tenant_fairness(served, self.admission.tenant_counts())

    def _pool_stats(
        self,
        pool: ReplicaPool,
        energy_before,
        start_time: float,
        end_time: float,
        duration: float,
    ) -> PoolStats:
        """Engine-level metrics for one pool over the measured window."""
        energy_wh = sum(
            engine.energy.since(energy_before.for_engine(engine)).total_wh
            for engine in pool.replicas
        )
        latencies = [
            request.timings.e2e_latency
            for request in pool.completed_requests
            if request.timings.finished is not None
            and start_time <= request.timings.finished <= end_time
        ]
        return PoolStats(
            name=pool.name,
            num_replicas=pool.num_replicas,
            active_replicas=pool.num_active,
            routed_counts=list(pool.routed_counts),
            spilled_in=pool.spilled_in,
            spilled_out=pool.spilled_out,
            replica_seconds=pool.replica_seconds_until(end_time),
            energy_wh=energy_wh,
            cost_per_hour=pool.cost_per_hour,
            cost_usd=pool.cost_until(end_time),
            gpu=pool.hardware.gpu.name,
            completed_llm_requests=len(latencies),
            llm_p95_latency_s=percentile(latencies, 95.0),
            llm_throughput_qps=len(latencies) / duration,
            preemptions=pool.preemption_count,
            prefix_cache_hit_rate=pool.prefix_cache_hit_rate(),
            rejected_requests=pool.rejected_requests,
            shed_tokens=pool.shed_tokens,
        )

    def _class_stats(
        self, measured: List[AgentRunResult], duration: float
    ) -> Dict[str, TrafficClassStats]:
        """Request-level metrics per traffic class (empty without a mixture)."""
        admission = self.admission.class_stats()
        groups: Dict[str, List[AgentRunResult]] = {}
        for result in measured:
            label = result.metadata.get("traffic_class")
            if label is not None:
                groups.setdefault(label, []).append(result)
        # Classes whose every request was shed still get a row: a 100%
        # rejection rate must not disappear from the per-class report.
        for label in admission:
            if label and label not in groups:
                groups.setdefault(label, [])
        stats: Dict[str, TrafficClassStats] = {}
        for label, results in groups.items():
            latencies = [result.e2e_latency for result in results]
            door = admission.get(label)
            slo = self.spec.measurement.slo_for(label)
            attainment = None
            if slo is not None and latencies:
                attainment = mean(
                    [1.0 if latency <= slo else 0.0 for latency in latencies]
                )
            stats[label] = TrafficClassStats(
                label=label,
                num_completed=len(results),
                mean_latency_s=mean(latencies),
                p95_latency_s=percentile(latencies, 95.0),
                throughput_qps=len(results) / duration,
                accuracy=mean(
                    [1.0 if result.answer_correct else 0.0 for result in results]
                ),
                offered=door.offered if door is not None else len(results),
                rejected=door.rejected if door is not None else 0,
                shed_tokens=door.shed_tokens if door is not None else 0.0,
                slo_p95_s=slo,
                slo_attainment=attainment,
            )
        return stats


def _build_plan(system: System) -> ArrivalPlan:
    arrival = system.spec.arrival
    if system.traffic:
        # Weighted traffic-class mixture: one arrival process (or, when any
        # shape is declared, superposed per-class shaped processes), each
        # request tagged with the class it was sampled from.
        return mixture_plan(
            [
                (
                    runtime.label,
                    runtime.workload,
                    runtime.weight,
                    runtime.shape,
                    runtime.tenants,
                )
                for runtime in system.traffic.values()
            ],
            qps=arrival.qps,
            num_requests=arrival.num_requests,
            stream=system.stream.substream(f"mixture-plan/{arrival.qps}"),
            task_pool_size=arrival.task_pool_size,
            process=arrival.process,
            shape=arrival.shape,
            duration_s=arrival.duration_s,
            tenants=arrival.tenants,
        )
    if arrival.shape is not None or arrival.duration_s is not None:
        # Shaped traffic program on a single workload (identity-shape plans
        # delegate to the legacy generators inside shaped_plan).
        return shaped_plan(
            system.workload,
            qps=arrival.qps,
            shape=arrival.shape if arrival.shape is not None else ConstantShape(),
            num_requests=arrival.num_requests,
            stream=system.stream.substream(f"plan/{arrival.qps}"),
            task_pool_size=arrival.task_pool_size,
            process=arrival.process,
            duration_s=arrival.duration_s,
            tenants=arrival.tenants,
        )
    if arrival.process == "poisson":
        return poisson_plan(
            system.workload,
            qps=arrival.qps,
            num_requests=arrival.num_requests,
            stream=system.stream.substream(f"plan/{arrival.qps}"),
            task_pool_size=arrival.task_pool_size,
            tenants=arrival.tenants,
        )
    if arrival.process == "uniform":
        # The stream feeds only tenant sampling here (deterministic arrivals
        # and round-robin task picks draw nothing), so untenanted uniform
        # plans stay bit-for-bit identical.
        return uniform_plan(
            system.workload,
            qps=arrival.qps,
            num_requests=arrival.num_requests,
            task_pool_size=arrival.task_pool_size,
            stream=system.stream.substream(f"plan/{arrival.qps}"),
            tenants=arrival.tenants,
        )
    raise ValueError(f"no open-loop plan for arrival process {arrival.process!r}")


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def run_experiment(
    spec: ExperimentSpec, tasks: Optional[List[Task]] = None
) -> ResultSet:
    """Assemble and run one experiment; returns its unified :class:`ResultSet`.

    ``tasks`` optionally overrides the workload sample for ``single``-arrival
    (characterization) experiments.
    """
    from repro.llm.request import reset_request_ids

    reset_request_ids()
    system = SystemBuilder(spec).build()
    process = spec.arrival.process
    if process == "single":
        return ResultSet(spec=spec, characterization=_run_characterization(system, tasks))
    if tasks is not None:
        raise ValueError("explicit tasks are only supported for single-arrival specs")
    driver = ServingDriver(system)
    if process == "sequential":
        serving = driver.serve_sequential(spec.arrival.num_requests)
    else:
        serving = driver.serve(_build_plan(system))
    return ResultSet(spec=spec, serving=serving)


def run_sweep(spec: ExperimentSpec, qps_values: Sequence[float]) -> QpsSweepResult:
    """Run ``spec`` across several offered loads (fresh system per load).

    Compatibility shim over a one-axis :class:`~repro.api.study.StudySpec`:
    the ``qps`` axis applies :meth:`ExperimentSpec.at_qps` per point exactly
    like the historical loop, so the returned sweep is bit-for-bit the
    legacy result.  Reach for :func:`~repro.api.study.run_study` directly to
    sweep anything beyond offered load.
    """
    from repro.api.study import StudyAxis, StudySpec, run_study

    if not qps_values:
        # The historical loop ran zero times; a study axis needs values.
        return QpsSweepResult(config=compat_serving_config(spec))
    study = StudySpec(
        base=spec,
        axes=(StudyAxis(name="qps", values=tuple(qps_values)),),
        name="qps-sweep",
    )
    return run_study(study).as_qps_sweep()
