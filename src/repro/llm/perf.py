"""Roofline performance model for engine steps.

The paper's latency observations follow from two well-known facts about
transformer serving that the model reproduces:

* **Prefill is compute-bound** -- time scales with new prompt tokens
  (quadratic-ish in context via attention), so long agent prompts make
  prefill expensive and prefix caching (which removes cached tokens from the
  prefill) helps a lot.
* **Decode is memory-bound** -- every step reads all weights plus the KV
  cache of every running sequence, so per-token latency is roughly constant
  for small batches and grows slowly with batch size / context length.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Sequence

from repro.llm.hardware import ClusterSpec
from repro.llm.models import ModelSpec


@dataclass(frozen=True)
class PerformanceModel:
    """Computes simulated durations of prefill and decode engine steps."""

    model: ModelSpec
    cluster: ClusterSpec

    # Decode runs once per simulated token, so the hardware-derived constants
    # of its roofline expression are evaluated once.  Each is the exact
    # subexpression the formulas below historically computed inline, so the
    # resulting floats are bit-identical.
    @cached_property
    def _decode_bandwidth(self) -> float:
        return self.cluster.total_mem_bandwidth * self.cluster.gpu.mbu_decode

    @cached_property
    def _peak_compute(self) -> float:
        return self.cluster.total_peak_flops * self.cluster.gpu.mfu_prefill

    @cached_property
    def _step_overhead(self) -> float:
        return self.cluster.step_overhead

    @cached_property
    def _weight_bytes(self) -> float:
        return self.model.weight_bytes

    @cached_property
    def _kv_bytes_per_token(self) -> float:
        return self.model.kv_bytes_per_token

    @cached_property
    def _flops_dense(self) -> float:
        # ModelSpec.flops_per_token's dense term.
        return 2.0 * self.model.n_params

    @cached_property
    def _flops_attn_per_ctx(self) -> float:
        # ModelSpec.flops_per_token's attention coefficient; multiplying it by
        # the context length reproduces the original left-to-right product.
        return 4.0 * self.model.n_layers * self.model.hidden_size

    # -- prefill ----------------------------------------------------------
    def prefill_time(
        self,
        new_tokens: int,
        cached_tokens: int = 0,
    ) -> float:
        """Duration of a prefill step computing ``new_tokens`` prompt tokens.

        ``cached_tokens`` are prefix tokens whose KV entries already exist
        (prefix-cache hit); they contribute attention context but no dense
        compute.
        """
        if new_tokens <= 0:
            return self._step_overhead
        flops = self.model.prefill_flops(new_tokens, cached_tokens)
        compute_time = flops / self._peak_compute
        # Weights still have to be streamed once per step.
        weight_time = self._weight_bytes / self._decode_bandwidth
        return max(compute_time, weight_time) + self._step_overhead

    # -- decode -----------------------------------------------------------
    def decode_step_time(self, context_lengths: Sequence[int]) -> float:
        """Duration of one decode step producing one token per running sequence.

        ``context_lengths`` holds the current context length (prompt +
        generated so far) of each sequence in the running batch.
        """
        batch_size = len(context_lengths)
        if batch_size == 0:
            return 0.0
        if batch_size == 1:
            # Scalar fast path: sum() over one element is exact, so this is
            # the general expression below evaluated bit-identically.
            ctx = context_lengths[0]
            kv_bytes = self._kv_bytes_per_token * float(ctx)
            memory_time = (self._weight_bytes + kv_bytes) / self._decode_bandwidth
            flops = self._flops_dense + self._flops_attn_per_ctx * max(ctx, 0.0)
            compute_time = flops / self._peak_compute
            return max(memory_time, compute_time) + self._step_overhead
        kv_bytes = self._kv_bytes_per_token * float(sum(context_lengths))
        memory_time = (self._weight_bytes + kv_bytes) / self._decode_bandwidth
        # Dense FLOPs for the batch; only matters for very large batches.
        # Same per-element expression and summation order as calling
        # ModelSpec.flops_per_token per sequence.
        dense = self._flops_dense
        attn = self._flops_attn_per_ctx
        flops = sum(dense + attn * max(ctx, 0.0) for ctx in context_lengths)
        compute_time = flops / self._peak_compute
        return max(memory_time, compute_time) + self._step_overhead

    # -- mixed (chunked prefill) ------------------------------------------
    def mixed_step_time(
        self,
        new_tokens: int,
        cached_tokens: int,
        context_lengths: Sequence[int],
    ) -> float:
        """Duration of one step co-scheduling prefill chunks with decode.

        Under chunked prefill the engine batches ``new_tokens`` prompt tokens
        (``cached_tokens`` of attention context already resident) together
        with one decode token for each sequence in ``context_lengths``.  The
        step is a single roofline evaluation over the combined work: FLOPs
        add (one forward pass covers both), weights stream once, and the KV
        reads of the decode sequences ride along on the memory side.
        """
        if not context_lengths:
            return self.prefill_time(new_tokens, cached_tokens)
        if new_tokens <= 0:
            return self.decode_step_time(context_lengths)
        flops = self.model.prefill_flops(new_tokens, cached_tokens)
        dense = self._flops_dense
        attn = self._flops_attn_per_ctx
        flops += sum(dense + attn * max(ctx, 0.0) for ctx in context_lengths)
        compute_time = flops / self._peak_compute
        kv_bytes = self._kv_bytes_per_token * float(sum(context_lengths))
        memory_time = (self._weight_bytes + kv_bytes) / self._decode_bandwidth
        return max(compute_time, memory_time) + self._step_overhead

    # -- convenience ------------------------------------------------------
    def generation_time(
        self,
        prompt_tokens: int,
        output_tokens: int,
        cached_tokens: int = 0,
    ) -> float:
        """Latency of a single request run alone (no batching interference)."""
        total = self.prefill_time(prompt_tokens - cached_tokens, cached_tokens)
        context = prompt_tokens
        for _ in range(max(output_tokens - 1, 0)):
            total += self.decode_step_time([context])
            context += 1
        return total
