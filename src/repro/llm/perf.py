"""Roofline performance model for engine steps.

The paper's latency observations follow from two well-known facts about
transformer serving that the model reproduces:

* **Prefill is compute-bound** -- time scales with new prompt tokens
  (quadratic-ish in context via attention), so long agent prompts make
  prefill expensive and prefix caching (which removes cached tokens from the
  prefill) helps a lot.
* **Decode is memory-bound** -- every step reads all weights plus the KV
  cache of every running sequence, so per-token latency is roughly constant
  for small batches and grows slowly with batch size / context length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.llm.hardware import ClusterSpec
from repro.llm.models import ModelSpec


@dataclass(frozen=True)
class PerformanceModel:
    """Computes simulated durations of prefill and decode engine steps."""

    model: ModelSpec
    cluster: ClusterSpec

    # -- prefill ----------------------------------------------------------
    def prefill_time(
        self,
        new_tokens: int,
        cached_tokens: int = 0,
    ) -> float:
        """Duration of a prefill step computing ``new_tokens`` prompt tokens.

        ``cached_tokens`` are prefix tokens whose KV entries already exist
        (prefix-cache hit); they contribute attention context but no dense
        compute.
        """
        if new_tokens <= 0:
            return self.cluster.step_overhead
        flops = self.model.prefill_flops(new_tokens, cached_tokens)
        compute_time = flops / (
            self.cluster.total_peak_flops * self.cluster.gpu.mfu_prefill
        )
        # Weights still have to be streamed once per step.
        weight_time = self.model.weight_bytes / (
            self.cluster.total_mem_bandwidth * self.cluster.gpu.mbu_decode
        )
        return max(compute_time, weight_time) + self.cluster.step_overhead

    # -- decode -----------------------------------------------------------
    def decode_step_time(self, context_lengths: Sequence[int]) -> float:
        """Duration of one decode step producing one token per running sequence.

        ``context_lengths`` holds the current context length (prompt +
        generated so far) of each sequence in the running batch.
        """
        batch_size = len(context_lengths)
        if batch_size == 0:
            return 0.0
        weight_bytes = self.model.weight_bytes
        kv_bytes = self.model.kv_bytes_per_token * float(sum(context_lengths))
        memory_time = (weight_bytes + kv_bytes) / (
            self.cluster.total_mem_bandwidth * self.cluster.gpu.mbu_decode
        )
        # Dense FLOPs for the batch; only matters for very large batches.
        flops = sum(self.model.flops_per_token(ctx) for ctx in context_lengths)
        compute_time = flops / (
            self.cluster.total_peak_flops * self.cluster.gpu.mfu_prefill
        )
        return max(memory_time, compute_time) + self.cluster.step_overhead

    # -- convenience ------------------------------------------------------
    def generation_time(
        self,
        prompt_tokens: int,
        output_tokens: int,
        cached_tokens: int = 0,
    ) -> float:
        """Latency of a single request run alone (no batching interference)."""
        total = self.prefill_time(prompt_tokens - cached_tokens, cached_tokens)
        context = prompt_tokens
        for _ in range(max(output_tokens - 1, 0)):
            total += self.decode_step_time([context])
            context += 1
        return total
