"""Speculative decoding model: draft acceptance -> effective decode speedup.

Real speculative decoding (vLLM's ``SpeculativeConfig``) runs a small draft
model ahead of the target model: the draft proposes ``num_speculative_tokens``
tokens, the target verifies all of them in one forward pass, and the leading
run of *accepted* tokens (plus the target's own bonus token) is emitted.  The
simulator does not model token content, so fidelity reduces to two questions
the roofline can answer:

* **Latency** -- one speculative step emits ``accepted + 1`` tokens for the
  price of one target verify pass plus ``num_speculative_tokens`` draft
  passes, each costing ``draft_ratio`` of a target decode step.  High
  acceptance amortises the verify pass over several tokens; low acceptance
  pays the draft overhead for nothing.
* **Energy** -- the draft model's compute is extra work the non-speculative
  engine never does.  Draft dwell time is metered under its own power state
  (:attr:`~repro.llm.energy.PowerState.DRAFT`) so experiments can report the
  draft energy bill (``draft_energy_j``) separately from target decode.

Acceptance is a per-position Bernoulli draw (the standard modelling
assumption, e.g. the leviathan-style expected speedup
``(1 - a^(k+1)) / (1 - a)``): position ``i`` of a draft window is accepted
with probability ``acceptance``, and the first rejection discards the rest
of the window.  Draws come from a dedicated per-request
:class:`~repro.sim.RandomStream` substream keyed by the request id, so

* engines with ``speculative=None`` draw nothing and stay bit-for-bit
  identical to the pre-speculative engine, and
* the same seed reproduces the same acceptance sequence regardless of batch
  composition or scheduling order (pinned in
  ``tests/test_engine_fidelity.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.sim import RandomStream


@dataclass(frozen=True)
class SpeculativeSpec:
    """Declarative configuration of the speculative-decoding model.

    ``draft_ratio`` is the cost of one draft-model forward pass relative to
    one target decode step (0.1 ~= an 8B target with a ~1B draft);
    ``num_speculative_tokens`` is the draft window ``k`` proposed per step;
    ``acceptance`` is the per-position probability a drafted token survives
    target verification.  ``seed`` isolates the acceptance substream (the
    experiment builder leaves it at 0 so sweeping other spec fields never
    perturbs acceptance draws).  Serialises through ``dataclasses.asdict``
    like every other spec type.
    """

    draft_ratio: float = 0.1
    num_speculative_tokens: int = 4
    acceptance: float = 0.7
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0 < self.draft_ratio < 1:
            raise ValueError("speculative draft_ratio must be in (0, 1)")
        if self.num_speculative_tokens < 1:
            raise ValueError("speculative num_speculative_tokens must be >= 1")
        if not 0 <= self.acceptance <= 1:
            raise ValueError("speculative acceptance must be in [0, 1]")

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SpeculativeSpec":
        """Rebuild from a plain-dict form (inverse of ``dataclasses.asdict``)."""
        return cls(**dict(payload))

    def expected_tokens_per_step(self) -> float:
        """Mean tokens emitted per speculative step (accepted run + bonus)."""
        a = self.acceptance
        k = self.num_speculative_tokens
        if a >= 1.0:
            return float(k + 1)
        # E[min(Geometric(1-a), k)] + 1 = sum_{i=1..k} a^i + 1.
        return (a * (1.0 - a**k)) / (1.0 - a) + 1.0

    def acceptance_stream(self, request_id: int) -> RandomStream:
        """The dedicated substream feeding one request's acceptance draws.

        Keyed by request id (not by batch position or step index) so the
        sequence of draws a request sees is independent of what else is
        running -- the determinism contract the engine-fidelity tests pin.
        """
        return RandomStream(self.seed, f"speculative/request:{request_id}")

    def draw_accepted(self, stream: RandomStream) -> int:
        """Accepted draft tokens for one step: leading-run Bernoulli draws.

        Consumes exactly one uniform per drafted position up to the first
        rejection (the positions after a rejection are discarded unverified,
        so they draw nothing) -- mirroring how a real verifier stops at the
        first mismatch.
        """
        accepted = 0
        for _ in range(self.num_speculative_tokens):
            if stream.random() >= self.acceptance:
                break
            accepted += 1
        return accepted
