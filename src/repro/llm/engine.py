"""The simulated LLM serving engine.

The engine is a single simulation process that mirrors a vLLM engine loop:

1. ask the scheduler for the next step (prefill or decode),
2. advance simulated time by the step duration from the roofline model,
3. apply the step's effects (first token after prefill, one token per
   running sequence per decode step, completions, block bookkeeping),
4. account energy for the time spent in the step's power state,
5. when there is no work, sleep at idle power until a request arrives.

Every step is recorded so experiments can compute GPU-runtime breakdowns,
utilization, and KV-memory statistics exactly the way the paper reports them.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.llm.energy import EnergyMeter, PowerState
from repro.llm.hardware import ClusterSpec, cluster_for_model
from repro.llm.kvcache import KVCacheConfig
from repro.llm.models import ModelSpec, LLAMA_3_1_8B
from repro.llm.perf import PerformanceModel
from repro.llm.prefix_cache import PrefixCache
from repro.llm.request import LLMRequest, RequestState
from repro.llm.scheduler import ScheduledStep, Scheduler, SchedulerConfig, StepKind
from repro.llm.speculative import SpeculativeSpec
from repro.llm.tokenizer import SyntheticTokenizer
from repro.sim import Environment, Event, RandomStream


@dataclass(frozen=True)
class EngineConfig:
    """Complete configuration of one serving engine (one model replica)."""

    model: ModelSpec = LLAMA_3_1_8B
    cluster: Optional[ClusterSpec] = None
    block_size: int = 16
    enable_prefix_caching: bool = True
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    # Number of decode tokens the engine may batch into one simulated step
    # when no request is waiting for admission.  1 = exact token-level
    # simulation; larger values trade a bounded amount of queueing fidelity
    # (new arrivals wait for the in-flight chunk) for simulation speed.
    max_decode_chunk: int = 1
    # Exact decode fast-forwarding: collapse runs of per-token decode steps
    # into one simulated event up to the next scheduling boundary (arrival,
    # completion, KV-allocation pressure, run horizon), reconstructing every
    # per-token timing so results are bit-for-bit identical to the per-token
    # path.  Unlike ``max_decode_chunk`` this is not an approximation; it is
    # on by default and only disabled for A/B-testing the equivalence.
    decode_fast_forward: bool = True
    # Fraction of the hardware-derived KV block budget this engine gets
    # (1.0 = the full budget; see KVCacheConfig.from_hardware).
    kv_cache_fraction: float = 1.0
    # Chunked prefill: per-step budget of prompt tokens, co-scheduled with
    # decode tokens in one mixed roofline step (vLLM's chunked prefill).
    # None = atomic prefill, the pre-chunking behaviour, bit-for-bit.
    prefill_chunk_tokens: Optional[int] = None
    # Speculative decoding acceptance model; None = disabled (bit-for-bit
    # identical to the pre-speculative engine).  When set, decode steps emit
    # ``accepted + 1`` tokens for one verify pass plus the draft-model cost,
    # and speculative execution supersedes ``decode_fast_forward`` (the
    # fast-forward's one-token-per-step replay no longer describes a step).
    speculative: Optional[SpeculativeSpec] = None

    def __post_init__(self) -> None:
        if self.max_decode_chunk < 1:
            raise ValueError("max_decode_chunk must be >= 1")
        if self.prefill_chunk_tokens is not None and self.prefill_chunk_tokens < 1:
            raise ValueError("prefill_chunk_tokens must be >= 1")
        # ``max_decode_chunk > 1`` (legacy approximate chunking) and
        # ``decode_fast_forward`` compose with a documented precedence:
        # approximate chunking wins on uncontended steps (no waiting
        # requests), exact fast-forwarding covers contended stretches.  The
        # two *fidelity* features below, however, change what a decode step
        # means, so combining them with the approximation is incoherent.
        if self.max_decode_chunk > 1 and self.prefill_chunk_tokens is not None:
            raise ValueError(
                "prefill_chunk_tokens is incompatible with max_decode_chunk > 1 "
                "(approximate decode chunking); use decode_fast_forward for speed"
            )
        if self.max_decode_chunk > 1 and self.speculative is not None:
            raise ValueError(
                "speculative decoding is incompatible with max_decode_chunk > 1 "
                "(approximate decode chunking); use decode_fast_forward for speed"
            )

    def resolved_cluster(self) -> ClusterSpec:
        return self.cluster if self.cluster is not None else cluster_for_model(self.model)


# Not frozen: records are created once per simulated step on the hot path,
# and a frozen dataclass pays object.__setattr__ per field in __init__.
@dataclass(slots=True)
class EngineStepRecord:
    """One engine step (or idle period) for offline analysis."""

    start: float
    duration: float
    kind: str                      # "prefill" | "decode" | "mixed" | "idle"
    batch_size: int
    new_tokens: int
    cached_tokens: int
    generated_tokens: int
    kv_blocks_active: int
    kv_bytes_active: float
    num_waiting: int
    energy_joules: float


class LLMEngine:
    """Discrete-event vLLM-style engine bound to a simulation environment."""

    def __init__(self, env: Environment, config: EngineConfig):
        self.env = env
        self.config = config
        self.model = config.model
        self.cluster = config.resolved_cluster()
        self.perf = PerformanceModel(model=self.model, cluster=self.cluster)
        kv_config = KVCacheConfig.from_hardware(
            model=self.model,
            cluster=self.cluster,
            block_size=config.block_size,
            enable_prefix_caching=config.enable_prefix_caching,
            capacity_fraction=config.kv_cache_fraction,
        )
        self.kv_cache = PrefixCache(kv_config)
        self.scheduler = Scheduler(
            config.scheduler,
            self.kv_cache,
            prefill_chunk_tokens=config.prefill_chunk_tokens,
        )
        self.energy = EnergyMeter(cluster=self.cluster)
        self.tokenizer = SyntheticTokenizer(vocab_size=self.model.vocab_size)

        self.step_records: List[EngineStepRecord] = []
        self.completed_requests: List[LLMRequest] = []
        self.total_generated_tokens: int = 0
        self.total_prefill_tokens: int = 0
        # Seconds during which an atomic prefill step ran while decodes were
        # blocked behind it (head-of-line blocking) -- the pathology chunked
        # prefill exists to remove.  Pure telemetry; never feeds back into
        # simulated behaviour.
        self.prefill_hol_block_s: float = 0.0
        # Speculative-decoding counters: per-sequence verify events and the
        # draft tokens those verifies accepted (excluding bonus tokens).
        self.spec_sequence_steps: int = 0
        self.spec_accepted_tokens: int = 0
        # Per-request acceptance substreams (created lazily, keyed by
        # request id so draws are independent of batch composition).
        self._accept_streams: Dict[int, RandomStream] = {}

        # Window-query acceleration: step records are appended in time order,
        # so (sorted) start/end arrays let reporting bisect to the records
        # overlapping a window, and running full-history aggregates answer
        # whole-run queries in O(1) instead of re-scanning every record.
        self._record_starts: List[float] = []
        self._record_ends: List[float] = []
        self._full_breakdown: Dict[str, float] = {
            "prefill": 0.0, "decode": 0.0, "mixed": 0.0, "idle": 0.0
        }
        self._full_kv_time: float = 0.0
        self._full_kv_weighted: float = 0.0
        self._full_kv_max: float = 0.0

        self._wakeup: Optional[Event] = None
        self._idle_since: Optional[float] = None
        self._process = env.process(self._run())

    # -- public API ---------------------------------------------------------
    def submit(self, request: LLMRequest) -> Event:
        """Queue a request; returns the event that fires with its LLMResult."""
        request.timings.arrival = self.env.now
        completion = self.env.event()
        request.completion_event = completion
        self.scheduler.add_request(request)
        self._wake()
        return completion

    @property
    def num_pending_requests(self) -> int:
        return self.scheduler.num_waiting + self.scheduler.num_running

    # -- engine loop ----------------------------------------------------------
    def _wake(self) -> None:
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    def _run(self):
        while True:
            preemptions_before = self.scheduler.preemption_count
            step = self.scheduler.schedule(now=self.env.now)
            if step is None:
                yield from self._idle_until_work()
                continue
            if step.kind == StepKind.PREFILL:
                yield from self._execute_prefill(step)
            elif step.kind == StepKind.MIXED:
                yield from self._execute_mixed(step)
            else:
                preempted = self.scheduler.preemption_count != preemptions_before
                yield from self._execute_decode(step, preempted)

    def _idle_until_work(self):
        idle_start = self.env.now
        self._idle_since = idle_start
        self._wakeup = self.env.event()
        yield self._wakeup
        self._wakeup = None
        self._idle_since = None
        duration = self.env.now - idle_start
        if duration > 0:
            joules = self.energy.record(PowerState.IDLE, duration)
            self._record_step(
                start=idle_start,
                duration=duration,
                kind="idle",
                batch_size=0,
                new_tokens=0,
                cached_tokens=0,
                generated_tokens=0,
                energy_joules=joules,
            )

    def _execute_prefill(self, step: ScheduledStep):
        start = self.env.now
        new_tokens = step.new_prefill_tokens
        cached_tokens = step.cached_prefill_tokens
        duration = self.perf.prefill_time(new_tokens, cached_tokens)
        # Running sequences decode nothing while this atomic prefill step
        # occupies the engine: head-of-line blocking, metered for the
        # ``prefill_hol_block_s`` metric (telemetry only).
        if self.scheduler.num_running > 0:
            self.prefill_hol_block_s += duration
        yield self.env.timeout(duration)
        joules = self.energy.record(PowerState.PREFILL, duration)

        generated = 0
        for item in step.prefills:
            request = item.request
            request.num_computed_tokens = request.num_prompt_tokens
            share = item.new_tokens / max(new_tokens, 1)
            request.timings.prefill_time += duration * share
            # Prefill produces the first output token.
            self._append_output_token(request)
            generated += 1
            if request.timings.first_token is None:
                request.timings.first_token = self.env.now
        self.scheduler.on_prefill_complete(step.prefills)
        self.total_prefill_tokens += new_tokens
        self.total_generated_tokens += generated
        self._finish_completed([item.request for item in step.prefills])
        self._record_step(
            start=start,
            duration=duration,
            kind="prefill",
            batch_size=step.batch_size,
            new_tokens=new_tokens,
            cached_tokens=cached_tokens,
            generated_tokens=generated,
            energy_joules=joules,
        )

    def _execute_mixed(self, step: ScheduledStep):
        """One chunked-prefill step: prompt chunks and decode tokens together.

        A single roofline evaluation covers the combined work
        (:meth:`PerformanceModel.mixed_step_time`); energy books under the
        prefill power state (the chunk's dense compute dominates the step's
        intensity).  Prefill chunks advance ``num_computed_tokens`` and
        publish chunk-boundary hashes; the chunk completing a prompt emits
        the request's first token and promotes it to decoding.  Decode
        sequences each emit one token exactly as in a per-token decode step.
        """
        start = self.env.now
        new_tokens = step.new_prefill_tokens
        cached_tokens = step.cached_prefill_tokens
        context_lengths = [request.context_length for request in step.decodes]
        duration = self.perf.mixed_step_time(new_tokens, cached_tokens, context_lengths)
        yield self.env.timeout(duration)
        joules = self.energy.record(PowerState.PREFILL, duration)

        generated = 0
        now = self.env.now
        for item in step.prefills:
            request = item.request
            request.num_computed_tokens += item.new_tokens
            self.kv_cache.register_prefill_progress(
                request, request.num_computed_tokens, now=now
            )
            share = item.new_tokens / max(new_tokens, 1)
            request.timings.prefill_time += duration * share
            if item.last_chunk:
                self._append_output_token(request)
                generated += 1
                if request.timings.first_token is None:
                    request.timings.first_token = now
        for request in step.decodes:
            request.timings.decode_time += duration
            self._append_output_token(request)
            generated += 1
        self.scheduler.on_chunks_complete(step.prefills)
        self.total_prefill_tokens += new_tokens
        self.total_generated_tokens += generated
        finishable = [item.request for item in step.prefills if item.last_chunk]
        finishable.extend(step.decodes)
        self._finish_completed(finishable)
        self._record_step(
            start=start,
            duration=duration,
            kind="mixed",
            batch_size=step.batch_size,
            new_tokens=new_tokens,
            cached_tokens=cached_tokens,
            generated_tokens=generated,
            energy_joules=joules,
        )

    def _execute_decode(self, step: ScheduledStep, preempted: bool = False):
        if not step.decodes:
            # Everything got preempted; yield a minimal scheduling delay so
            # the loop makes progress and retries admission.
            duration = self.cluster.step_overhead
            yield self.env.timeout(duration)
            self.energy.record(PowerState.IDLE, duration)
            return
        if self.config.speculative is not None:
            # Speculative decoding changes what a decode step *is* (verify +
            # draft, multiple tokens per sequence), so it supersedes both
            # chunking knobs and the fast-forward (enforced/validated in
            # EngineConfig.__post_init__).
            yield from self._execute_decode_speculative(step)
            return
        if self.config.max_decode_chunk > 1 and self.scheduler.num_waiting == 0:
            # Legacy approximate chunking (opt-in knob): one roofline step for
            # up to ``max_decode_chunk`` tokens, trading queueing fidelity for
            # speed.  Kept for configs that ask for it explicitly.
            yield from self._execute_decode_approx(step)
            return
        yield from self._execute_decode_exact(step, preempted)

    def _execute_decode_speculative(self, step: ScheduledStep):
        """One speculative decode step: draft ``k`` tokens, verify, emit run.

        Step time is one target verify pass over the batch plus ``k`` draft
        passes at ``draft_ratio`` of its cost; verify time books under the
        decode power state and draft time under
        :attr:`~repro.llm.energy.PowerState.DRAFT`.  Each sequence emits its
        accepted run plus the bonus token (clamped to its remaining output
        and to the KV blocks actually reservable), with acceptance drawn
        from the sequence's dedicated substream so the draw sequence is
        independent of batch composition.
        """
        start = self.env.now
        spec = self.config.speculative
        decodes = step.decodes
        context_lengths = [request.context_length for request in decodes]
        verify_duration = self.perf.decode_step_time(context_lengths)
        draft_duration = (
            spec.num_speculative_tokens * spec.draft_ratio * verify_duration
        )
        duration = verify_duration + draft_duration
        yield self.env.timeout(duration)
        joules = self.energy.record(PowerState.DECODE, verify_duration)
        joules += self.energy.record(PowerState.DRAFT, draft_duration)

        generated = 0
        now = self.env.now
        streams = self._accept_streams
        for request in decodes:
            stream = streams.get(request.request_id)
            if stream is None:
                stream = spec.acceptance_stream(request.request_id)
                streams[request.request_id] = stream
            accepted = spec.draw_accepted(stream)
            self.spec_sequence_steps += 1
            emit = min(accepted + 1, request.remaining_output_tokens)
            # The scheduler's per-step reservation covers one token; the
            # accepted extras need their own KV blocks.  Clamp the emission
            # to what the free pool can actually hold (reserve_tokens fails
            # without side effects, so stepping down is safe).
            while emit > 1 and not self.kv_cache.reserve_tokens(request, emit, now=now):
                emit -= 1
            self.spec_accepted_tokens += emit - 1
            request.timings.decode_time += duration
            for _ in range(max(emit, 1)):
                self._append_output_token(request)
                generated += 1
        self.total_generated_tokens += generated
        self._finish_completed(decodes)
        for request in decodes:
            if request.state == RequestState.FINISHED:
                streams.pop(request.request_id, None)
        self._record_step(
            start=start,
            duration=duration,
            kind="decode",
            batch_size=len(decodes),
            new_tokens=0,
            cached_tokens=0,
            generated_tokens=generated,
            energy_joules=joules,
        )

    def _execute_decode_approx(self, step: ScheduledStep):
        start = self.env.now
        chunk = self._decode_chunk_size(step)
        context_lengths = [request.context_length for request in step.decodes]
        duration = 0.0
        for offset in range(chunk):
            duration += self.perf.decode_step_time(
                [length + offset for length in context_lengths]
            )
        if chunk > 1:
            # Reserve KV space for the extra tokens of the chunk up front.
            # ``_decode_chunk_size`` clamped the chunk to the free-block
            # headroom, so this reservation cannot over-commit the cache.
            for request in step.decodes:
                self.kv_cache.reserve_tokens(request, chunk, now=self.env.now)
        yield self.env.timeout(duration)
        joules = self.energy.record(PowerState.DECODE, duration)

        generated = 0
        for request in step.decodes:
            request.timings.decode_time += duration
            tokens_for_request = min(chunk, request.remaining_output_tokens)
            for _ in range(max(tokens_for_request, 1)):
                self._append_output_token(request)
                generated += 1
        self.total_generated_tokens += generated
        self._finish_completed(step.decodes)
        self._record_step(
            start=start,
            duration=duration,
            kind="decode",
            batch_size=len(step.decodes),
            new_tokens=0,
            cached_tokens=0,
            generated_tokens=generated,
            energy_joules=joules,
        )

    def _decode_chunk_size(self, step: ScheduledStep) -> int:
        """Tokens to decode in one simulated step (bounded fast-forwarding)."""
        max_chunk = max(1, self.config.max_decode_chunk)
        if max_chunk == 1 or self.scheduler.num_waiting > 0:
            return 1
        remaining = min(request.remaining_output_tokens for request in step.decodes)
        chunk = max(1, min(max_chunk, remaining))
        # Clamp to KV headroom: the chunk grows every sequence's context by
        # ``chunk`` tokens, so the blocks that growth needs must fit in the
        # free pool -- otherwise the reservation would steal blocks that the
        # preemption machinery assumes are still available.
        block_size = self.kv_cache.block_size
        free = self.kv_cache.num_free_blocks()
        while chunk > 1:
            needed = 0
            for request in step.decodes:
                target_blocks = -(-(request.context_length + chunk) // block_size)
                needed += max(0, target_blocks - len(request.block_ids))
            if needed <= free:
                break
            chunk -= 1
        return chunk

    def _execute_decode_exact(self, step: ScheduledStep, preempted: bool):
        """Decode with exact fast-forwarding.

        Advances the decode batch as many token steps as can be proven
        unobservable -- strictly before the next pending event
        (:meth:`Environment.peek`), within the active run horizon, before the
        earliest request completion, within the KV free-block budget, and only
        when this step's scheduling did not preempt -- in a single simulated
        event, then replays the per-token bookkeeping (energy accounting,
        per-request decode time and output tokens, KV block growth, step
        records) with the exact float sequencing of the per-token path.  The
        result is bit-for-bit identical to running one token per event.
        """
        start = self.env.now
        decodes = step.decodes
        context_lengths = [request.context_length for request in decodes]
        first_duration = self.perf.decode_step_time(context_lengths)
        durations = [first_duration]
        alloc_plan: Dict[int, List[int]] = {}
        if (
            self.config.decode_fast_forward
            and not preempted
            # A partial prefill in flight means the next step will be MIXED,
            # so no decode run is unobservable (always empty in atomic mode).
            and not self.scheduler.prefilling
            and (
                self.scheduler.num_waiting == 0
                or self.scheduler.policy.time_invariant_select
            )
        ):
            k_limit = min(request.remaining_output_tokens for request in decodes)
            if k_limit > 1:
                durations, alloc_plan = self._plan_decode_chunk(
                    start, first_duration, context_lengths, decodes, k_limit
                )
        wake = start
        for duration in durations:
            wake = wake + duration
        yield self.env.timeout_at(wake)

        # Replay the per-token effects in the order the per-token loop
        # produces them: for each virtual step i at [s_i, e_i] -- energy,
        # per-request decode time + output token, completions (last step
        # only; earlier steps cannot complete by construction), the step
        # record (sampling KV state before the next step's reservations),
        # then the KV appends for step i+1.  Only requests the plan proved
        # need a block at this boundary hit the allocator: the per-token
        # path's other append_token calls are no-ops with no side effects.
        k = len(durations)
        batch = len(decodes)
        tokens_per_request = [
            self.tokenizer.synthetic_tokens(
                f"output:{request.request_id}",
                request.num_output_tokens + k,
                start=request.num_output_tokens,
            )
            for request in decodes
        ]
        last = k - 1
        joules_series = self.energy.record_series(PowerState.DECODE, durations)
        append_kv = self.kv_cache.append_token
        timings = [request.timings for request in decodes]
        outputs = [request.output_token_ids for request in decodes]
        # Inlined _record_step: the chunk runs with no other process observing
        # engine state, so the batch size, waiting count, and (between planned
        # block allocations, each of which adds exactly one active block) the
        # KV occupancy are known without re-deriving them per virtual step.
        # The last step re-samples both after completions run, exactly where
        # the per-token path samples them.
        allocator = self.kv_cache.allocator
        bytes_per_block = allocator.config.bytes_per_block
        kv_blocks = allocator.num_active_blocks
        num_waiting = self.scheduler.num_waiting
        records = self.step_records
        starts = self._record_starts
        ends = self._record_ends
        breakdown_decode = self._full_breakdown["decode"]
        kv_time = self._full_kv_time
        kv_weighted = self._full_kv_weighted
        kv_max = self._full_kv_max
        self.total_generated_tokens += batch * k
        step_start = start
        for index, duration in enumerate(durations):
            step_end = step_start + duration
            joules = joules_series[index]
            for pos, tokens in enumerate(tokens_per_request):
                timings[pos].decode_time += duration
                outputs[pos].append(tokens[index])
            if index == last:
                self._finish_completed(decodes)
                kv_blocks = allocator.num_active_blocks
                num_waiting = self.scheduler.num_waiting
            kv_bytes = kv_blocks * bytes_per_block
            records.append(
                EngineStepRecord(
                    step_start,
                    duration,
                    "decode",
                    batch,
                    0,
                    0,
                    batch,
                    kv_blocks,
                    kv_bytes,
                    num_waiting,
                    joules,
                )
            )
            starts.append(step_start)
            ends.append(step_end)
            overlap = step_end - step_start
            if overlap > 0:
                breakdown_decode += overlap
                kv_time += overlap
                kv_weighted += kv_bytes * overlap
                if kv_bytes > kv_max:
                    kv_max = kv_bytes
            if index < last:
                grown = alloc_plan.get(index)
                if grown:
                    for pos in grown:
                        append_kv(decodes[pos], now=step_end)
                    kv_blocks += len(grown)
            step_start = step_end
        self._full_breakdown["decode"] = breakdown_decode
        self._full_kv_time = kv_time
        self._full_kv_weighted = kv_weighted
        self._full_kv_max = kv_max

    def _plan_decode_chunk(
        self,
        start: float,
        first_duration: float,
        context_lengths: List[int],
        decodes: List[LLMRequest],
        k_limit: int,
    ) -> Tuple[List[float], Dict[int, List[int]]]:
        """Durations of the longest provably-unobservable run of decode steps.

        Extends the chunk one virtual step at a time while (a) every wake
        time stays strictly before the next pending external event, so no
        other process can observe engine state mid-chunk, (b) the final wake
        stays within the active numeric run horizon, so a paused run never
        leaves the chunk half-applied, and (c) the KV block allocations the
        per-token path would perform at each intermediate boundary all fit in
        the free pool, so no step would have preempted.

        Returns the durations plus the allocation plan: replay loop index ->
        positions (into ``decodes``, ascending) of the sequences whose block
        table must grow at that step boundary.
        """
        peek = self.env.peek()
        horizon = self.env.run_horizon
        block_size = self.kv_cache.block_size
        free_budget = self.kv_cache.num_free_blocks()
        decode_step_time = self.perf.decode_step_time
        allocated = 0
        # Min-heap of (due_step, position, room) per sequence: the boundary
        # append of step j allocates a block exactly when j > room (room =
        # how many tokens the block table covers beyond the current context;
        # this step's reservation already ran in the scheduler).  Each
        # allocation raises room by block_size, so a healthy sequence falls
        # due every block_size steps -- but a sequence re-admitted after
        # recompute preemption is allocated blocks for its prompt only and
        # re-grows its table one block per step (room <= 0) until it catches
        # up, which this cadence reproduces exactly.
        due: List[Tuple[int, int, int]] = []
        for pos, request in enumerate(decodes):
            room = len(request.block_ids) * block_size - request.context_length
            due.append((max(2, room + 1), pos, room))
        heapq.heapify(due)
        alloc_plan: Dict[int, List[int]] = {}
        durations = [first_duration]
        lengths = list(context_lengths)
        end = start + first_duration
        single = len(lengths) == 1
        if single:
            # Inline the scalar decode roofline (PerformanceModel
            # .decode_step_time's batch-of-one branch, same expressions in the
            # same order) so the per-virtual-step planning cost is arithmetic
            # only.  The planner runs once per simulated token.
            perf = self.perf
            kv_per_token = perf._kv_bytes_per_token
            weight_bytes = perf._weight_bytes
            bandwidth = perf._decode_bandwidth
            flops_dense = perf._flops_dense
            flops_attn = perf._flops_attn_per_ctx
            peak = perf._peak_compute
            overhead = perf._step_overhead
        while len(durations) < k_limit:
            index = len(durations) + 1
            if single:
                ctx = lengths[0] + 1
                lengths[0] = ctx
                kv_bytes = kv_per_token * float(ctx)
                memory_time = (weight_bytes + kv_bytes) / bandwidth
                compute_time = (flops_dense + flops_attn * max(ctx, 0.0)) / peak
                next_duration = max(memory_time, compute_time) + overhead
            else:
                for pos in range(len(lengths)):
                    lengths[pos] += 1
                next_duration = decode_step_time(lengths)
            next_end = end + next_duration
            if next_end >= peek or next_end > horizon:
                break
            growers: List[int] = []
            while due and due[0][0] == index:
                _, pos, room = heapq.heappop(due)
                growers.append(pos)
                room += block_size
                heapq.heappush(due, (max(index + 1, room + 1), pos, room))
            if growers:
                if allocated + len(growers) > free_budget:
                    break
                allocated += len(growers)
                growers.sort()
                # The per-token path reserves before executing step ``index``,
                # which the replay loop reaches at the end of iteration
                # ``index - 2`` (its appends prepare the following step).
                alloc_plan[index - 2] = growers
            durations.append(next_duration)
            end = next_end
        return durations, alloc_plan

    # -- helpers -------------------------------------------------------------
    def _append_output_token(self, request: LLMRequest) -> None:
        position = request.num_output_tokens
        token = self.tokenizer.synthetic_tokens(
            f"output:{request.request_id}", position + 1, start=position
        )[0]
        request.output_token_ids.append(token)

    def _finish_completed(self, requests: List[LLMRequest]) -> None:
        for request in requests:
            if request.num_output_tokens < request.target_output_tokens:
                continue
            if request.state == RequestState.FINISHED:
                continue
            request.timings.finished = self.env.now
            self.scheduler.finish_request(request, now=self.env.now)
            self.completed_requests.append(request)
            if request.completion_event is not None:
                request.completion_event.succeed(request.to_result())

    def _record_step(
        self,
        start: float,
        duration: float,
        kind: str,
        batch_size: int,
        new_tokens: int,
        cached_tokens: int,
        generated_tokens: int,
        energy_joules: float,
    ) -> None:
        allocator = self.kv_cache.allocator
        kv_blocks_active = allocator.num_active_blocks
        # Same arithmetic as allocator.active_bytes, without re-deriving the
        # active-block count (this runs once per simulated step).
        kv_bytes_active = kv_blocks_active * allocator.config.bytes_per_block
        self.step_records.append(
            EngineStepRecord(
                start=start,
                duration=duration,
                kind=kind,
                batch_size=batch_size,
                new_tokens=new_tokens,
                cached_tokens=cached_tokens,
                generated_tokens=generated_tokens,
                kv_blocks_active=kv_blocks_active,
                kv_bytes_active=kv_bytes_active,
                num_waiting=self.scheduler.num_waiting,
                energy_joules=energy_joules,
            )
        )
        # Running aggregates use the same float expression the windowed scan
        # evaluates for a full-history window, keeping them bit-identical.
        record_end = start + duration
        overlap = record_end - start
        self._record_starts.append(start)
        self._record_ends.append(record_end)
        if overlap > 0:
            self._full_breakdown[kind] += overlap
            self._full_kv_time += overlap
            self._full_kv_weighted += kv_bytes_active * overlap
            self._full_kv_max = max(self._full_kv_max, kv_bytes_active)

    # -- reporting -------------------------------------------------------------
    def _window_indices(self, start: float, end: float) -> range:
        """Index range of step records that can overlap ``[start, end]``.

        Records are appended in time order (engine steps never overlap), so
        both start and end arrays are sorted and the overlapping records form
        one contiguous run found by bisection.
        """
        lo = bisect_right(self._record_ends, start)
        hi = bisect_left(self._record_starts, end) if end != float("inf") else len(
            self._record_starts
        )
        return range(lo, hi)

    def _covers_full_history(self, start: float, end: float) -> bool:
        if not self.step_records:
            return True
        return start <= self._record_starts[0] and end >= self._record_ends[-1]

    def runtime_breakdown(self, start: float = 0.0, end: Optional[float] = None) -> Dict[str, float]:
        """Seconds spent per step kind within ``[start, end]``."""
        end = end if end is not None else float("inf")
        if self._covers_full_history(start, end):
            breakdown = dict(self._full_breakdown)
        else:
            breakdown = {"prefill": 0.0, "decode": 0.0, "mixed": 0.0, "idle": 0.0}
            for index in self._window_indices(start, end):
                record = self.step_records[index]
                record_end = record.start + record.duration
                overlap = min(record_end, end) - max(record.start, start)
                if overlap > 0:
                    breakdown[record.kind] += overlap
        if self._idle_since is not None:
            # Account the idle period that is still open at observation time.
            open_end = min(self.env.now, end)
            overlap = open_end - max(self._idle_since, start)
            if overlap > 0:
                breakdown["idle"] += overlap
        return breakdown

    def kv_memory_stats(self, start: float = 0.0, end: Optional[float] = None) -> Dict[str, float]:
        """Time-weighted average and maximum active KV-cache bytes in a window."""
        end = end if end is not None else float("inf")
        if self._covers_full_history(start, end):
            total_time = self._full_kv_time
            weighted = self._full_kv_weighted
            maximum = self._full_kv_max
        else:
            total_time = 0.0
            weighted = 0.0
            maximum = 0.0
            for index in self._window_indices(start, end):
                record = self.step_records[index]
                record_end = record.start + record.duration
                overlap = min(record_end, end) - max(record.start, start)
                if overlap <= 0:
                    continue
                total_time += overlap
                weighted += record.kv_bytes_active * overlap
                maximum = max(maximum, record.kv_bytes_active)
        average = weighted / total_time if total_time > 0 else 0.0
        return {"average_bytes": average, "max_bytes": maximum}
