"""The simulated LLM serving engine.

The engine is a single simulation process that mirrors a vLLM engine loop:

1. ask the scheduler for the next step (prefill or decode),
2. advance simulated time by the step duration from the roofline model,
3. apply the step's effects (first token after prefill, one token per
   running sequence per decode step, completions, block bookkeeping),
4. account energy for the time spent in the step's power state,
5. when there is no work, sleep at idle power until a request arrives.

Every step is recorded so experiments can compute GPU-runtime breakdowns,
utilization, and KV-memory statistics exactly the way the paper reports them.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.llm.energy import EnergyMeter, PowerState
from repro.llm.hardware import ClusterSpec, cluster_for_model
from repro.llm.kvcache import KVCacheConfig
from repro.llm.models import ModelSpec, LLAMA_3_1_8B
from repro.llm.perf import PerformanceModel
from repro.llm.prefix_cache import PrefixCache
from repro.llm.request import LLMRequest, RequestState
from repro.llm.scheduler import ScheduledStep, Scheduler, SchedulerConfig, StepKind
from repro.llm.tokenizer import SyntheticTokenizer
from repro.sim import Environment, Event


@dataclass(frozen=True)
class EngineConfig:
    """Complete configuration of one serving engine (one model replica)."""

    model: ModelSpec = LLAMA_3_1_8B
    cluster: Optional[ClusterSpec] = None
    block_size: int = 16
    enable_prefix_caching: bool = True
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    # Number of decode tokens the engine may batch into one simulated step
    # when no request is waiting for admission.  1 = exact token-level
    # simulation; larger values trade a bounded amount of queueing fidelity
    # (new arrivals wait for the in-flight chunk) for simulation speed.
    max_decode_chunk: int = 1

    def resolved_cluster(self) -> ClusterSpec:
        return self.cluster if self.cluster is not None else cluster_for_model(self.model)


@dataclass(frozen=True)
class EngineStepRecord:
    """One engine step (or idle period) for offline analysis."""

    start: float
    duration: float
    kind: str                      # "prefill" | "decode" | "idle"
    batch_size: int
    new_tokens: int
    cached_tokens: int
    generated_tokens: int
    kv_blocks_active: int
    kv_bytes_active: float
    num_waiting: int
    energy_joules: float


class LLMEngine:
    """Discrete-event vLLM-style engine bound to a simulation environment."""

    def __init__(self, env: Environment, config: EngineConfig):
        self.env = env
        self.config = config
        self.model = config.model
        self.cluster = config.resolved_cluster()
        self.perf = PerformanceModel(model=self.model, cluster=self.cluster)
        kv_config = KVCacheConfig.from_hardware(
            model=self.model,
            cluster=self.cluster,
            block_size=config.block_size,
            enable_prefix_caching=config.enable_prefix_caching,
        )
        self.kv_cache = PrefixCache(kv_config)
        self.scheduler = Scheduler(config.scheduler, self.kv_cache)
        self.energy = EnergyMeter(cluster=self.cluster)
        self.tokenizer = SyntheticTokenizer(vocab_size=self.model.vocab_size)

        self.step_records: List[EngineStepRecord] = []
        self.completed_requests: List[LLMRequest] = []
        self.total_generated_tokens: int = 0
        self.total_prefill_tokens: int = 0

        # Window-query acceleration: step records are appended in time order,
        # so (sorted) start/end arrays let reporting bisect to the records
        # overlapping a window, and running full-history aggregates answer
        # whole-run queries in O(1) instead of re-scanning every record.
        self._record_starts: List[float] = []
        self._record_ends: List[float] = []
        self._full_breakdown: Dict[str, float] = {"prefill": 0.0, "decode": 0.0, "idle": 0.0}
        self._full_kv_time: float = 0.0
        self._full_kv_weighted: float = 0.0
        self._full_kv_max: float = 0.0

        self._wakeup: Optional[Event] = None
        self._idle_since: Optional[float] = None
        self._process = env.process(self._run())

    # -- public API ---------------------------------------------------------
    def submit(self, request: LLMRequest) -> Event:
        """Queue a request; returns the event that fires with its LLMResult."""
        request.timings.arrival = self.env.now
        completion = self.env.event()
        request.completion_event = completion
        self.scheduler.add_request(request)
        self._wake()
        return completion

    @property
    def num_pending_requests(self) -> int:
        return self.scheduler.num_waiting + self.scheduler.num_running

    # -- engine loop ----------------------------------------------------------
    def _wake(self) -> None:
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    def _run(self):
        while True:
            step = self.scheduler.schedule(now=self.env.now)
            if step is None:
                yield from self._idle_until_work()
                continue
            if step.kind == StepKind.PREFILL:
                yield from self._execute_prefill(step)
            else:
                yield from self._execute_decode(step)

    def _idle_until_work(self):
        idle_start = self.env.now
        self._idle_since = idle_start
        self._wakeup = self.env.event()
        yield self._wakeup
        self._wakeup = None
        self._idle_since = None
        duration = self.env.now - idle_start
        if duration > 0:
            joules = self.energy.record(PowerState.IDLE, duration)
            self._record_step(
                start=idle_start,
                duration=duration,
                kind="idle",
                batch_size=0,
                new_tokens=0,
                cached_tokens=0,
                generated_tokens=0,
                energy_joules=joules,
            )

    def _execute_prefill(self, step: ScheduledStep):
        start = self.env.now
        new_tokens = step.new_prefill_tokens
        cached_tokens = step.cached_prefill_tokens
        duration = self.perf.prefill_time(new_tokens, cached_tokens)
        yield self.env.timeout(duration)
        joules = self.energy.record(PowerState.PREFILL, duration)

        generated = 0
        for item in step.prefills:
            request = item.request
            share = item.new_tokens / max(new_tokens, 1)
            request.timings.prefill_time += duration * share
            # Prefill produces the first output token.
            self._append_output_token(request)
            generated += 1
            if request.timings.first_token is None:
                request.timings.first_token = self.env.now
        self.scheduler.on_prefill_complete(step.prefills)
        self.total_prefill_tokens += new_tokens
        self.total_generated_tokens += generated
        self._finish_completed([item.request for item in step.prefills])
        self._record_step(
            start=start,
            duration=duration,
            kind="prefill",
            batch_size=step.batch_size,
            new_tokens=new_tokens,
            cached_tokens=cached_tokens,
            generated_tokens=generated,
            energy_joules=joules,
        )

    def _execute_decode(self, step: ScheduledStep):
        start = self.env.now
        if not step.decodes:
            # Everything got preempted; yield a minimal scheduling delay so
            # the loop makes progress and retries admission.
            duration = self.cluster.step_overhead
            yield self.env.timeout(duration)
            self.energy.record(PowerState.IDLE, duration)
            return

        chunk = self._decode_chunk_size(step)
        context_lengths = [request.context_length for request in step.decodes]
        duration = 0.0
        for offset in range(chunk):
            duration += self.perf.decode_step_time(
                [length + offset for length in context_lengths]
            )
        if chunk > 1:
            # Reserve KV space for the extra tokens of the chunk up front.
            for request in step.decodes:
                for _ in range(chunk - 1):
                    self.kv_cache.append_token(request, now=self.env.now)
        yield self.env.timeout(duration)
        joules = self.energy.record(PowerState.DECODE, duration)

        generated = 0
        for request in step.decodes:
            request.timings.decode_time += duration
            tokens_for_request = min(chunk, request.remaining_output_tokens)
            for _ in range(max(tokens_for_request, 1)):
                self._append_output_token(request)
                generated += 1
        self.total_generated_tokens += generated
        self._finish_completed(step.decodes)
        self._record_step(
            start=start,
            duration=duration,
            kind="decode",
            batch_size=len(step.decodes),
            new_tokens=0,
            cached_tokens=0,
            generated_tokens=generated,
            energy_joules=joules,
        )

    def _decode_chunk_size(self, step: ScheduledStep) -> int:
        """Tokens to decode in one simulated step (bounded fast-forwarding)."""
        max_chunk = max(1, self.config.max_decode_chunk)
        if max_chunk == 1 or self.scheduler.num_waiting > 0:
            return 1
        remaining = min(request.remaining_output_tokens for request in step.decodes)
        return max(1, min(max_chunk, remaining))

    # -- helpers -------------------------------------------------------------
    def _append_output_token(self, request: LLMRequest) -> None:
        position = request.num_output_tokens
        token = self.tokenizer.synthetic_tokens(
            f"output:{request.request_id}", position + 1
        )[position]
        request.output_token_ids.append(token)

    def _finish_completed(self, requests: List[LLMRequest]) -> None:
        for request in requests:
            if request.num_output_tokens < request.target_output_tokens:
                continue
            if request.state == RequestState.FINISHED:
                continue
            request.timings.finished = self.env.now
            self.scheduler.finish_request(request, now=self.env.now)
            self.completed_requests.append(request)
            if request.completion_event is not None:
                request.completion_event.succeed(request.to_result())

    def _record_step(
        self,
        start: float,
        duration: float,
        kind: str,
        batch_size: int,
        new_tokens: int,
        cached_tokens: int,
        generated_tokens: int,
        energy_joules: float,
    ) -> None:
        kv_bytes_active = self.kv_cache.active_bytes()
        self.step_records.append(
            EngineStepRecord(
                start=start,
                duration=duration,
                kind=kind,
                batch_size=batch_size,
                new_tokens=new_tokens,
                cached_tokens=cached_tokens,
                generated_tokens=generated_tokens,
                kv_blocks_active=self.kv_cache.active_blocks(),
                kv_bytes_active=kv_bytes_active,
                num_waiting=self.scheduler.num_waiting,
                energy_joules=energy_joules,
            )
        )
        # Running aggregates use the same float expression the windowed scan
        # evaluates for a full-history window, keeping them bit-identical.
        record_end = start + duration
        overlap = record_end - start
        self._record_starts.append(start)
        self._record_ends.append(record_end)
        if overlap > 0:
            self._full_breakdown[kind] += overlap
            self._full_kv_time += overlap
            self._full_kv_weighted += kv_bytes_active * overlap
            self._full_kv_max = max(self._full_kv_max, kv_bytes_active)

    # -- reporting -------------------------------------------------------------
    def _window_indices(self, start: float, end: float) -> range:
        """Index range of step records that can overlap ``[start, end]``.

        Records are appended in time order (engine steps never overlap), so
        both start and end arrays are sorted and the overlapping records form
        one contiguous run found by bisection.
        """
        lo = bisect_right(self._record_ends, start)
        hi = bisect_left(self._record_starts, end) if end != float("inf") else len(
            self._record_starts
        )
        return range(lo, hi)

    def _covers_full_history(self, start: float, end: float) -> bool:
        if not self.step_records:
            return True
        return start <= self._record_starts[0] and end >= self._record_ends[-1]

    def runtime_breakdown(self, start: float = 0.0, end: Optional[float] = None) -> Dict[str, float]:
        """Seconds spent per step kind within ``[start, end]``."""
        end = end if end is not None else float("inf")
        if self._covers_full_history(start, end):
            breakdown = dict(self._full_breakdown)
        else:
            breakdown = {"prefill": 0.0, "decode": 0.0, "idle": 0.0}
            for index in self._window_indices(start, end):
                record = self.step_records[index]
                record_end = record.start + record.duration
                overlap = min(record_end, end) - max(record.start, start)
                if overlap > 0:
                    breakdown[record.kind] += overlap
        if self._idle_since is not None:
            # Account the idle period that is still open at observation time.
            open_end = min(self.env.now, end)
            overlap = open_end - max(self._idle_since, start)
            if overlap > 0:
                breakdown["idle"] += overlap
        return breakdown

    def kv_memory_stats(self, start: float = 0.0, end: Optional[float] = None) -> Dict[str, float]:
        """Time-weighted average and maximum active KV-cache bytes in a window."""
        end = end if end is not None else float("inf")
        if self._covers_full_history(start, end):
            total_time = self._full_kv_time
            weighted = self._full_kv_weighted
            maximum = self._full_kv_max
        else:
            total_time = 0.0
            weighted = 0.0
            maximum = 0.0
            for index in self._window_indices(start, end):
                record = self.step_records[index]
                record_end = record.start + record.duration
                overlap = min(record_end, end) - max(record.start, start)
                if overlap <= 0:
                    continue
                total_time += overlap
                weighted += record.kv_bytes_active * overlap
                maximum = max(maximum, record.kv_bytes_active)
        average = weighted / total_time if total_time > 0 else 0.0
        return {"average_bytes": average, "max_bytes": maximum}
