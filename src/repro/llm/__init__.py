"""Simulated LLM serving stack (vLLM-style) used as the paper's backend.

The subpackage models the full serving path the paper measures on real
hardware:

* :mod:`repro.llm.models` / :mod:`repro.llm.hardware` -- Llama-3.1 8B / 70B
  model specifications and A100-40GB cluster specifications.
* :mod:`repro.llm.perf` -- roofline performance model for prefill and decode
  engine steps (compute-bound prefill, memory-bound decode).
* :mod:`repro.llm.kvcache` / :mod:`repro.llm.prefix_cache` -- paged KV-cache
  block allocator and hash-based prefix caching with LRU eviction.
* :mod:`repro.llm.scheduler` / :mod:`repro.llm.engine` -- FCFS continuous
  batching and the discrete-event engine loop, including per-step energy and
  utilization accounting.
* :mod:`repro.llm.client` -- the OpenAI-style client facade agents call.
"""

from repro.llm.models import ModelSpec, LLAMA_3_1_8B, LLAMA_3_1_70B, get_model
from repro.llm.hardware import (
    A100_40GB,
    A100_80GB,
    ClusterSpec,
    GPU_CATALOG,
    GPUSpec,
    H100_80GB,
    HardwareSpec,
    L4_24GB,
    available_gpus,
    cluster_for_model,
    get_gpu,
    register_gpu,
)
from repro.llm.perf import PerformanceModel
from repro.llm.energy import EnergyMeter, PowerState
from repro.llm.tokenizer import SyntheticTokenizer, TokenSpan, Prompt, SegmentKind
from repro.llm.request import LLMRequest, LLMResult, RequestState, SamplingParams
from repro.llm.kvcache import BlockAllocator, KVCacheConfig
from repro.llm.prefix_cache import PrefixCache
from repro.llm.scheduler import (
    ScheduledStep,
    Scheduler,
    SchedulerConfig,
    SchedulingPolicy,
    StepKind,
    available_scheduler_policies,
    create_scheduler_policy,
    register_scheduler_policy,
)
from repro.llm.predictor import DecodeLengthPredictor
from repro.llm.speculative import SpeculativeSpec
from repro.llm.engine import EngineConfig, EngineStepRecord, LLMEngine
from repro.llm.client import LLMClient

__all__ = [
    "A100_40GB",
    "A100_80GB",
    "BlockAllocator",
    "ClusterSpec",
    "DecodeLengthPredictor",
    "EngineConfig",
    "EngineStepRecord",
    "EnergyMeter",
    "GPU_CATALOG",
    "GPUSpec",
    "H100_80GB",
    "HardwareSpec",
    "L4_24GB",
    "KVCacheConfig",
    "LLAMA_3_1_70B",
    "LLAMA_3_1_8B",
    "LLMClient",
    "LLMEngine",
    "LLMRequest",
    "LLMResult",
    "ModelSpec",
    "PerformanceModel",
    "PowerState",
    "PrefixCache",
    "Prompt",
    "RequestState",
    "SamplingParams",
    "ScheduledStep",
    "Scheduler",
    "SchedulerConfig",
    "SchedulingPolicy",
    "SegmentKind",
    "SpeculativeSpec",
    "StepKind",
    "SyntheticTokenizer",
    "TokenSpan",
    "available_gpus",
    "available_scheduler_policies",
    "cluster_for_model",
    "create_scheduler_policy",
    "get_gpu",
    "get_model",
    "register_gpu",
    "register_scheduler_policy",
]
