"""FCFS continuous-batching scheduler (vLLM 0.6.x default policy).

The scheduler decides, before each engine step, whether the step is a
*prefill* step (admitting waiting requests, which blocks decoding of already
running requests -- the contention the paper highlights) or a *decode* step
(one token for every running sequence).  Admission is first-come-first-served
and bounded by a per-step token budget, a maximum batch size, and KV-cache
capacity.  When the cache is exhausted mid-decode the most recently admitted
request is preempted with recompute semantics.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Deque, List, Optional, Tuple

from repro.llm.prefix_cache import PrefixCache
from repro.llm.request import LLMRequest, RequestState


class StepKind(str, Enum):
    PREFILL = "prefill"
    DECODE = "decode"


@dataclass(frozen=True)
class SchedulerConfig:
    """Admission-control knobs (names follow vLLM)."""

    max_num_seqs: int = 256
    max_num_batched_tokens: int = 8192


@dataclass
class PrefillItem:
    """One request admitted in a prefill step."""

    request: LLMRequest
    new_tokens: int
    cached_tokens: int


@dataclass
class ScheduledStep:
    """Work selected for the next engine step."""

    kind: StepKind
    prefills: List[PrefillItem] = field(default_factory=list)
    decodes: List[LLMRequest] = field(default_factory=list)

    @property
    def batch_size(self) -> int:
        return len(self.prefills) + len(self.decodes)

    @property
    def new_prefill_tokens(self) -> int:
        return sum(item.new_tokens for item in self.prefills)

    @property
    def cached_prefill_tokens(self) -> int:
        return sum(item.cached_tokens for item in self.prefills)


class Scheduler:
    """FCFS continuous batching over a shared prefix-aware KV cache."""

    def __init__(self, config: SchedulerConfig, kv_cache: PrefixCache):
        self.config = config
        self.kv_cache = kv_cache
        self.waiting: Deque[LLMRequest] = deque()
        self.running: List[LLMRequest] = []
        self.preemption_count: int = 0

    # -- queue management ---------------------------------------------------
    def add_request(self, request: LLMRequest) -> None:
        request.state = RequestState.WAITING
        self.waiting.append(request)

    def has_work(self) -> bool:
        return bool(self.waiting) or bool(self.running)

    @property
    def num_waiting(self) -> int:
        return len(self.waiting)

    @property
    def num_running(self) -> int:
        return len(self.running)

    # -- scheduling -----------------------------------------------------------
    def schedule(self, now: float = 0.0) -> Optional[ScheduledStep]:
        """Pick the work for the next engine step, or ``None`` if idle."""
        if self.waiting:
            step = self._schedule_prefill(now)
            if step is not None:
                return step
        if self.running:
            return self._schedule_decode(now)
        return None

    def _schedule_prefill(self, now: float) -> Optional[ScheduledStep]:
        prefills: List[PrefillItem] = []
        token_budget = self.config.max_num_batched_tokens
        while self.waiting:
            if len(self.running) + len(prefills) >= self.config.max_num_seqs:
                break
            request = self.waiting[0]
            cached_estimate = self.kv_cache.peek_cached_tokens(request.prompt_token_ids)
            new_tokens = max(1, request.num_prompt_tokens - cached_estimate)
            if prefills and new_tokens > token_budget:
                break
            allocation = self.kv_cache.allocate_sequence(request, now=now)
            if allocation is None:
                # KV cache full: admit nothing more.  If nothing is running
                # and nothing was admitted the request simply waits for blocks
                # freed by future completions.
                break
            self.waiting.popleft()
            new_tokens = request.num_prompt_tokens - allocation.num_cached_tokens
            token_budget -= new_tokens
            request.state = RequestState.RUNNING
            if request.timings.first_scheduled is None:
                request.timings.first_scheduled = now
            prefills.append(
                PrefillItem(
                    request=request,
                    new_tokens=new_tokens,
                    cached_tokens=allocation.num_cached_tokens,
                )
            )
            if token_budget <= 0:
                break
        if not prefills:
            return None
        return ScheduledStep(kind=StepKind.PREFILL, prefills=prefills)

    def _schedule_decode(self, now: float) -> ScheduledStep:
        # Reserve KV space for the next token of every running sequence,
        # preempting the newest sequences if the cache is exhausted.
        scheduled: List[LLMRequest] = []
        for request in list(self.running):
            if request not in self.running:
                # Already preempted as a victim earlier in this pass.
                continue
            reserved = self.kv_cache.append_token(request, now=now)
            while not reserved:
                victim = self._pick_preemption_victim(protected=scheduled + [request])
                if victim is None:
                    break
                self._preempt(victim, now)
                reserved = self.kv_cache.append_token(request, now=now)
            if reserved:
                scheduled.append(request)
            else:
                # Could not make room even after preempting everything else.
                self._preempt(request, now)
        return ScheduledStep(kind=StepKind.DECODE, decodes=scheduled)

    def _pick_preemption_victim(
        self, protected: List[LLMRequest]
    ) -> Optional[LLMRequest]:
        for candidate in reversed(self.running):
            if candidate not in protected:
                return candidate
        return None

    def _preempt(self, request: LLMRequest, now: float) -> None:
        """Recompute-style preemption: free blocks and move back to waiting."""
        if request in self.running:
            self.running.remove(request)
        self.kv_cache.release_for_preemption(request, now=now)
        request.state = RequestState.WAITING
        self.waiting.appendleft(request)
        self.preemption_count += 1

    # -- step completion hooks ---------------------------------------------
    def on_prefill_complete(self, items: List[PrefillItem]) -> None:
        for item in items:
            if item.request.state == RequestState.RUNNING:
                self.running.append(item.request)

    def finish_request(self, request: LLMRequest, now: float = 0.0) -> None:
        if request in self.running:
            self.running.remove(request)
        request.state = RequestState.FINISHED
        self.kv_cache.free_sequence(request, now=now)
