"""Continuous-batching scheduler with pluggable admission policies.

The scheduler decides, before each engine step, whether the step is a
*prefill* step (admitting waiting requests, which blocks decoding of already
running requests -- the contention the paper highlights) or a *decode* step
(one token for every running sequence).  Admission order is delegated to a
:class:`SchedulingPolicy` selected by name through a registry
(``fcfs`` | ``priority`` | ``sjf-by-predicted-decode`` | ``vtc``), and is bounded by a
per-step token budget, a maximum batch size, and KV-cache capacity.  When the
cache is exhausted mid-decode the most recently admitted request is preempted
with recompute semantics.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Deque, Dict, List, Optional, Set, Tuple, Type

from repro.llm.predictor import DecodeLengthPredictor
from repro.llm.prefix_cache import PrefixCache
from repro.llm.request import LLMRequest, RequestState
from repro.registry import PolicyRegistry


class StepKind(str, Enum):
    PREFILL = "prefill"
    DECODE = "decode"
    # Chunked prefill co-schedules prompt chunks with decode tokens in one
    # roofline step (vLLM's chunked-prefill batch composition).
    MIXED = "mixed"


@dataclass(frozen=True)
class SchedulerConfig:
    """Admission-control knobs (names follow vLLM)."""

    max_num_seqs: int = 256
    max_num_batched_tokens: int = 8192
    # Admission-order policy; must name an entry in the scheduling-policy
    # registry (``fcfs`` is vLLM 0.6.x's default behaviour).
    policy: str = "fcfs"
    # Relative error of the decode-length predictor used by prediction-driven
    # policies (0.0 = perfect oracle); seeded so predictions are reproducible.
    predictor_error: float = 0.0
    predictor_seed: int = 0


# ---------------------------------------------------------------------------
# Admission-order policies
# ---------------------------------------------------------------------------


class SchedulingPolicy:
    """Decides which waiting request is admitted next.

    Policies are selectors over the waiting queue: the scheduler calls
    :meth:`select_index` repeatedly during one prefill pass, removing the
    chosen request each time, so policies never mutate the queue themselves.

    Stateful policies (``vtc``) additionally receive feedback through the
    optional :meth:`on_scheduled` / :meth:`on_complete` hooks, which the
    scheduler fires when a request is admitted to prefill and when it
    finishes; the base implementations are no-ops, so existing selector-only
    policies are unaffected.
    """

    name = "base"

    #: Whether :meth:`select_index` depends only on the waiting queue's
    #: contents and the policy's own counters -- not on ``now``.  All built-in
    #: policies are time-invariant; the engine's decode fast-forward relies on
    #: this to know that a prefill attempt that failed for lack of KV blocks
    #: would keep failing (and keep selecting the same candidate) at every
    #: intermediate token boundary of a fast-forwarded chunk.  Custom policies
    #: whose selection genuinely depends on wall-clock time must set this to
    #: ``False`` to force per-token scheduling under contention.
    time_invariant_select = True

    def select_index(self, waiting: Deque[LLMRequest], now: float) -> int:
        """Index (into ``waiting``) of the request to admit next.

        **Determinism contract**: comparison-based policies scan the queue
        from index 0 and replace the incumbent only on a *strict* win, so
        ties break toward the earliest-queued request (FCFS-stable).  A
        policy whose scores are all equal must therefore behave exactly
        like :class:`FCFSPolicy`.  Regression-pinned in
        ``tests/test_scheduler_policies.py``.
        """
        raise NotImplementedError

    def on_scheduled(self, request: LLMRequest, now: float) -> None:
        """``request`` was admitted to a prefill step (no-op by default).

        Fired on every admission, including re-admission after preemption --
        a recompute-style preemption re-pays the prefill, and accounting
        policies are expected to charge for it again.
        """

    def on_complete(self, request: LLMRequest, now: float) -> None:
        """``request`` finished decoding (no-op by default)."""


class FCFSPolicy(SchedulingPolicy):
    """First-come-first-served: always the head of the queue."""

    name = "fcfs"

    def select_index(self, waiting: Deque[LLMRequest], now: float) -> int:
        return 0


class PriorityPolicy(SchedulingPolicy):
    """Highest ``metadata["priority"]`` first; FCFS among equal priorities.

    Priorities are read from ``LLMRequest.metadata["priority"]``, which the
    submitter (a client, workload, or admission layer) must set; the built-in
    agents do not assign priorities yet, so without an assigning caller this
    policy degenerates to FCFS (every request scores 0.0).
    """

    name = "priority"

    def select_index(self, waiting: Deque[LLMRequest], now: float) -> int:
        best_index = 0
        best_priority = None
        for index, request in enumerate(waiting):
            priority = self._priority(request)
            if best_priority is None or priority > best_priority:
                best_index, best_priority = index, priority
        return best_index

    @staticmethod
    def _priority(request: LLMRequest) -> float:
        return float(request.metadata.get("priority", 0.0))


class ShortestJobPolicy(SchedulingPolicy):
    """Shortest predicted decode first (FCFS tie-break).

    Decode lengths come from a :class:`DecodeLengthPredictor`: exact by
    default (the idealized upper bound for SJF schedulers driven by learned
    output-length prediction), noisy when the scheduler config sets a
    ``predictor_error`` -- so scheduler studies no longer have to assume a
    perfect oracle.
    """

    name = "sjf-by-predicted-decode"

    def __init__(self) -> None:
        self.predictor = DecodeLengthPredictor()

    def select_index(self, waiting: Deque[LLMRequest], now: float) -> int:
        best_index = 0
        best_cost = None
        for index, request in enumerate(waiting):
            cost = self.predictor.predict(request)
            if best_cost is None or cost < best_cost:
                best_index, best_cost = index, cost
        return best_index


class VirtualTokenCounterPolicy(SchedulingPolicy):
    """Virtual Token Counter (VTC) fair scheduling across tenants.

    Each tenant carries a virtual counter of the service (weighted tokens)
    it has received; the waiting request whose tenant has the *lowest*
    counter is admitted next, so tenants that have been served least go
    first and a whale cannot starve the tail.  Counters advance through the
    scheduler's feedback hooks: :meth:`on_scheduled` charges
    ``input_weight * prompt tokens`` when a request enters prefill
    (re-admission after preemption charges again -- recompute preemption
    re-pays the prefill), and :meth:`on_complete` charges
    ``output_weight * output tokens`` when it finishes.  Output tokens
    weigh more than input tokens by default, mirroring their higher
    serving cost.

    The tenant key is ``metadata["tenant"]`` (stamped by the serving driver
    for tenanted arrivals), falling back to ``metadata["traffic_class"]``
    so untenanted mixtures still get per-class fairness, then to a single
    shared key -- under which VTC degenerates to FCFS exactly (strict-``<``
    scan from index 0, per the determinism contract).

    A tenant first seen mid-run joins at the *minimum* live counter rather
    than zero: newcomers get immediate service without being handed a deep
    credit that would starve everyone else while they catch up.
    """

    name = "vtc"

    def __init__(self, input_weight: float = 1.0, output_weight: float = 2.0):
        if input_weight < 0 or output_weight < 0:
            raise ValueError("vtc token weights must be >= 0")
        self.input_weight = input_weight
        self.output_weight = output_weight
        self.counters: Dict[str, float] = {}

    @staticmethod
    def _tenant_key(request: LLMRequest) -> str:
        tenant = request.metadata.get("tenant")
        if tenant is not None:
            return str(tenant)
        traffic_class = request.metadata.get("traffic_class")
        if traffic_class is not None:
            return str(traffic_class)
        return ""

    def _counter_for(self, key: str) -> float:
        counter = self.counters.get(key)
        if counter is None:
            # Lazy join at the current minimum: fresh tenants go first among
            # peers but carry no unbounded credit from their idle past.
            counter = min(self.counters.values(), default=0.0)
            self.counters[key] = counter
        return counter

    def select_index(self, waiting: Deque[LLMRequest], now: float) -> int:
        best_index = 0
        best_counter = None
        for index, request in enumerate(waiting):
            counter = self._counter_for(self._tenant_key(request))
            if best_counter is None or counter < best_counter:
                best_index, best_counter = index, counter
        return best_index

    def on_scheduled(self, request: LLMRequest, now: float) -> None:
        key = self._tenant_key(request)
        self.counters[key] = (
            self._counter_for(key) + self.input_weight * request.num_prompt_tokens
        )

    def on_complete(self, request: LLMRequest, now: float) -> None:
        key = self._tenant_key(request)
        self.counters[key] = (
            self._counter_for(key) + self.output_weight * request.num_output_tokens
        )


SCHEDULER_POLICY_REGISTRY = PolicyRegistry("scheduler policy")
#: name -> class mapping (keys are lower-case); kept for membership checks.
SCHEDULER_POLICIES: Dict[str, Type[SchedulingPolicy]] = SCHEDULER_POLICY_REGISTRY.policies


def register_scheduler_policy(policy_class: Type[SchedulingPolicy]) -> Type[SchedulingPolicy]:
    """Register a policy class under its ``name`` (also usable as a decorator)."""
    return SCHEDULER_POLICY_REGISTRY.register(policy_class)


register_scheduler_policy(FCFSPolicy)
register_scheduler_policy(PriorityPolicy)
register_scheduler_policy(ShortestJobPolicy)
register_scheduler_policy(VirtualTokenCounterPolicy)


def available_scheduler_policies() -> List[str]:
    return SCHEDULER_POLICY_REGISTRY.available()


def create_scheduler_policy(name: str) -> SchedulingPolicy:
    """Instantiate a registered scheduling policy by name."""
    return SCHEDULER_POLICY_REGISTRY.create(name)


@dataclass(slots=True)
class PrefillItem:
    """One request's prefill work in a step.

    Atomic prefill computes the whole uncached prompt at once
    (``last_chunk=True`` always); chunked prefill computes ``new_tokens`` of
    it per step with ``cached_tokens`` tokens of attention context already
    resident (cached prefix plus previously computed chunks), and only the
    chunk that completes the prompt carries ``last_chunk=True``.
    """

    request: LLMRequest
    new_tokens: int
    cached_tokens: int
    last_chunk: bool = True


@dataclass(slots=True)
class ScheduledStep:
    """Work selected for the next engine step."""

    kind: StepKind
    prefills: List[PrefillItem] = field(default_factory=list)
    decodes: List[LLMRequest] = field(default_factory=list)

    @property
    def batch_size(self) -> int:
        return len(self.prefills) + len(self.decodes)

    @property
    def new_prefill_tokens(self) -> int:
        return sum(item.new_tokens for item in self.prefills)

    @property
    def cached_prefill_tokens(self) -> int:
        return sum(item.cached_tokens for item in self.prefills)


class Scheduler:
    """Policy-driven continuous batching over a shared prefix-aware KV cache."""

    def __init__(
        self,
        config: SchedulerConfig,
        kv_cache: PrefixCache,
        prefill_chunk_tokens: Optional[int] = None,
    ):
        self.config = config
        self.kv_cache = kv_cache
        self.policy = create_scheduler_policy(config.policy)
        if config.predictor_error > 0 and hasattr(self.policy, "predictor"):
            self.policy.predictor = DecodeLengthPredictor(
                config.predictor_error, seed=config.predictor_seed
            )
        if prefill_chunk_tokens is not None and prefill_chunk_tokens < 1:
            raise ValueError("prefill_chunk_tokens must be >= 1")
        # None = atomic prefill (whole uncached prompt in one step, the
        # pre-chunking behaviour, bit-for-bit); an int enables chunked
        # prefill with that per-step prompt-token budget.
        self.prefill_chunk_tokens = prefill_chunk_tokens
        self.waiting: Deque[LLMRequest] = deque()
        self.running: List[LLMRequest] = []
        # Requests admitted under chunked prefill whose prompt is not fully
        # computed yet; always empty in atomic mode.
        self.prefilling: List[LLMRequest] = []
        self.preemption_count: int = 0

    # -- queue management ---------------------------------------------------
    def add_request(self, request: LLMRequest) -> None:
        request.state = RequestState.WAITING
        self.waiting.append(request)

    def has_work(self) -> bool:
        return bool(self.waiting) or bool(self.running) or bool(self.prefilling)

    @property
    def num_waiting(self) -> int:
        return len(self.waiting)

    @property
    def num_running(self) -> int:
        return len(self.running)

    @property
    def num_prefilling(self) -> int:
        return len(self.prefilling)

    # -- scheduling -----------------------------------------------------------
    def schedule(self, now: float = 0.0) -> Optional[ScheduledStep]:
        """Pick the work for the next engine step, or ``None`` if idle."""
        if self.prefill_chunk_tokens is not None:
            return self._schedule_chunked(now)
        if self.waiting:
            step = self._schedule_prefill(now)
            if step is not None:
                return step
        if self.running:
            return self._schedule_decode(now)
        return None

    def _schedule_chunked(self, now: float) -> Optional[ScheduledStep]:
        """One chunked-prefill step: decode tokens plus a prompt-chunk budget.

        Decode reservations run first (possibly preempting partial prefills
        under KV pressure), then in-flight partial prefills continue in
        admission order, then new requests are admitted while budget remains.
        Steps with prefill work are ``MIXED``; pure-decode stretches keep
        kind ``DECODE`` so the engine's exact decode fast-forward still
        engages between chunks.
        """
        decodes: List[LLMRequest] = []
        if self.running:
            decodes = self._schedule_decode(now).decodes
        # Decode tokens consume the batch's token budget first (vLLM's
        # max_num_batched_tokens accounting); prompt chunks fill the rest,
        # capped by the configured chunk size.
        budget = min(
            self.prefill_chunk_tokens,
            max(0, self.config.max_num_batched_tokens - len(decodes)),
        )
        prefills: List[PrefillItem] = []
        for request in self.prefilling:
            if budget <= 0:
                break
            remaining = request.num_prompt_tokens - request.num_computed_tokens
            chunk = min(budget, remaining)
            prefills.append(
                PrefillItem(
                    request=request,
                    new_tokens=chunk,
                    cached_tokens=request.num_computed_tokens,
                    last_chunk=chunk == remaining,
                )
            )
            budget -= chunk
        while self.waiting and budget > 0:
            total_seqs = len(self.running) + len(self.prefilling) + len(prefills)
            if total_seqs >= self.config.max_num_seqs:
                break
            index = self.policy.select_index(self.waiting, now)
            request = self.waiting[index]
            allocation = self.kv_cache.allocate_sequence(
                request, now=now, defer_registration=True
            )
            if allocation is None:
                # KV cache full: admit nothing more this step.
                break
            del self.waiting[index]
            uncached = request.num_prompt_tokens - allocation.num_cached_tokens
            request.num_computed_tokens = allocation.num_cached_tokens
            request.state = RequestState.RUNNING
            if request.timings.first_scheduled is None:
                request.timings.first_scheduled = now
            self.policy.on_scheduled(request, now)
            self.prefilling.append(request)
            chunk = min(budget, uncached)
            prefills.append(
                PrefillItem(
                    request=request,
                    new_tokens=chunk,
                    cached_tokens=allocation.num_cached_tokens,
                    last_chunk=chunk == uncached,
                )
            )
            budget -= chunk
        if prefills:
            # Always MIXED (even with no decodes): items may be partial
            # chunks, which only the engine's mixed executor understands.
            return ScheduledStep(kind=StepKind.MIXED, prefills=prefills, decodes=decodes)
        if decodes:
            return ScheduledStep(kind=StepKind.DECODE, decodes=decodes)
        return None

    def _schedule_prefill(self, now: float) -> Optional[ScheduledStep]:
        prefills: List[PrefillItem] = []
        token_budget = self.config.max_num_batched_tokens
        while self.waiting:
            if len(self.running) + len(prefills) >= self.config.max_num_seqs:
                break
            index = self.policy.select_index(self.waiting, now)
            request = self.waiting[index]
            cached_estimate = self.kv_cache.peek_cached_tokens(
                request.prompt_token_ids,
                hashes=request.prompt_block_hashes(self.kv_cache.block_size),
            )
            new_tokens = max(1, request.num_prompt_tokens - cached_estimate)
            if prefills and new_tokens > token_budget:
                break
            allocation = self.kv_cache.allocate_sequence(request, now=now)
            if allocation is None:
                # KV cache full: admit nothing more.  If nothing is running
                # and nothing was admitted the request simply waits for blocks
                # freed by future completions.
                break
            del self.waiting[index]
            new_tokens = request.num_prompt_tokens - allocation.num_cached_tokens
            token_budget -= new_tokens
            request.state = RequestState.RUNNING
            if request.timings.first_scheduled is None:
                request.timings.first_scheduled = now
            self.policy.on_scheduled(request, now)
            prefills.append(
                PrefillItem(
                    request=request,
                    new_tokens=new_tokens,
                    cached_tokens=allocation.num_cached_tokens,
                )
            )
            if token_budget <= 0:
                break
        if not prefills:
            return None
        return ScheduledStep(kind=StepKind.PREFILL, prefills=prefills)

    def _schedule_decode(self, now: float) -> ScheduledStep:
        # Reserve KV space for the next token of every running sequence,
        # preempting the newest sequences if the cache is exhausted.  Victim
        # and protection checks use identity sets, keeping this pass O(n)
        # in the common (no-preemption) case instead of O(n^2).
        scheduled: List[LLMRequest] = []
        protected: Set[int] = set()
        preempted: Set[int] = set()
        for request in list(self.running):
            if id(request) in preempted:
                # Already preempted as a victim earlier in this pass.
                continue
            protected.add(id(request))
            reserved = self.kv_cache.append_token(request, now=now)
            while not reserved:
                victim = self._pick_preemption_victim(protected=protected)
                if victim is None:
                    break
                self._preempt(victim, now)
                preempted.add(id(victim))
                reserved = self.kv_cache.append_token(request, now=now)
            if reserved:
                scheduled.append(request)
            else:
                # Could not make room even after preempting everything else.
                self._preempt(request, now)
                protected.discard(id(request))
        return ScheduledStep(kind=StepKind.DECODE, decodes=scheduled)

    def _pick_preemption_victim(
        self, protected: Set[int]
    ) -> Optional[LLMRequest]:
        # Partial prefills are the cheapest victims (least work to re-pay),
        # newest first; the list is always empty in atomic mode.
        for candidate in reversed(self.prefilling):
            if id(candidate) not in protected:
                return candidate
        for candidate in reversed(self.running):
            if id(candidate) not in protected:
                return candidate
        return None

    def _preempt(self, request: LLMRequest, now: float) -> None:
        """Recompute-style preemption: free blocks and move back to waiting."""
        if request in self.running:
            self.running.remove(request)
        if request in self.prefilling:
            self.prefilling.remove(request)
        self.kv_cache.release_for_preemption(request, now=now)
        request.state = RequestState.WAITING
        self.waiting.appendleft(request)
        self.preemption_count += 1

    # -- step completion hooks ---------------------------------------------
    def on_prefill_complete(self, items: List[PrefillItem]) -> None:
        for item in items:
            if item.request.state == RequestState.RUNNING:
                self.running.append(item.request)

    def on_chunks_complete(self, items: List[PrefillItem]) -> None:
        """A chunked-prefill step executed: promote finished prompts.

        The engine has already advanced each request's
        ``num_computed_tokens`` and registered chunk-boundary hashes; here
        requests whose final chunk ran move from ``prefilling`` to
        ``running`` so they decode starting next step.
        """
        for item in items:
            request = item.request
            if item.last_chunk and request.state == RequestState.RUNNING:
                if request in self.prefilling:
                    self.prefilling.remove(request)
                self.running.append(request)

    def finish_request(self, request: LLMRequest, now: float = 0.0) -> None:
        if request in self.running:
            self.running.remove(request)
        request.state = RequestState.FINISHED
        self.kv_cache.free_sequence(request, now=now)
        self.policy.on_complete(request, now)
