"""GPU energy accounting.

The simulator knows exactly how long the cluster spends in each power state
(idle, prefill, decode), so energy is a direct integral of state power over
state dwell time -- the simulated analogue of the paper's DCGM power
measurements.  Energy is tracked both engine-wide and per observation window
so per-query energy can be attributed in single-request characterization runs
and amortised over completed queries in serving runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict

from repro.llm.hardware import ClusterSpec

JOULES_PER_WH = 3600.0


class PowerState(str, Enum):
    """Engine power states distinguished by the energy model."""

    IDLE = "idle"
    PREFILL = "prefill"
    DECODE = "decode"
    # Draft-model forward passes of speculative decoding: extra compute the
    # non-speculative engine never pays, metered separately so experiments
    # can report the draft energy bill (``draft_energy_j``) on its own.
    DRAFT = "draft"


@dataclass
class EnergyMeter:
    """Integrates cluster power over simulated time, split by power state."""

    cluster: ClusterSpec
    joules_by_state: Dict[PowerState, float] = field(
        default_factory=lambda: {state: 0.0 for state in PowerState}
    )
    seconds_by_state: Dict[PowerState, float] = field(
        default_factory=lambda: {state: 0.0 for state in PowerState}
    )

    def record(self, state: PowerState, duration_s: float) -> float:
        """Account ``duration_s`` seconds spent in ``state``; returns joules."""
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        joules = self.cluster.power_w(state.value) * duration_s
        self.joules_by_state[state] += joules
        self.seconds_by_state[state] += duration_s
        return joules

    def record_series(self, state: PowerState, durations_s: "list[float]") -> "list[float]":
        """Account a run of consecutive dwell times in one state.

        Performs the same per-duration float accumulation as calling
        :meth:`record` once per entry (so totals are bit-identical), but
        resolves the state power and dict slots once.  Used by the engine's
        decode fast-forward replay, which books one entry per virtual token.
        """
        power = self.cluster.power_w(state.value)
        joules_total = self.joules_by_state[state]
        seconds_total = self.seconds_by_state[state]
        series: "list[float]" = []
        append = series.append
        for duration_s in durations_s:
            if duration_s < 0:
                raise ValueError("duration must be non-negative")
            joules = power * duration_s
            joules_total += joules
            seconds_total += duration_s
            append(joules)
        self.joules_by_state[state] = joules_total
        self.seconds_by_state[state] = seconds_total
        return series

    @property
    def total_joules(self) -> float:
        return sum(self.joules_by_state.values())

    @property
    def total_wh(self) -> float:
        return self.total_joules / JOULES_PER_WH

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds_by_state.values())

    @property
    def average_power_w(self) -> float:
        if self.total_seconds == 0:
            return 0.0
        return self.total_joules / self.total_seconds

    def snapshot(self) -> "EnergySnapshot":
        """Point-in-time copy used to compute energy over a window."""
        return EnergySnapshot(
            joules_by_state=dict(self.joules_by_state),
            seconds_by_state=dict(self.seconds_by_state),
        )

    def since(self, snapshot: "EnergySnapshot") -> "EnergyWindow":
        """Energy and dwell times accumulated since ``snapshot``."""
        joules = {
            state: self.joules_by_state[state] - snapshot.joules_by_state.get(state, 0.0)
            for state in PowerState
        }
        seconds = {
            state: self.seconds_by_state[state] - snapshot.seconds_by_state.get(state, 0.0)
            for state in PowerState
        }
        return EnergyWindow(joules_by_state=joules, seconds_by_state=seconds)


@dataclass(frozen=True)
class EnergySnapshot:
    joules_by_state: Dict[PowerState, float]
    seconds_by_state: Dict[PowerState, float]


@dataclass(frozen=True)
class EnergyWindow:
    """Energy accumulated between two snapshots."""

    joules_by_state: Dict[PowerState, float]
    seconds_by_state: Dict[PowerState, float]

    @property
    def total_joules(self) -> float:
        return sum(self.joules_by_state.values())

    @property
    def total_wh(self) -> float:
        return self.total_joules / JOULES_PER_WH

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds_by_state.values())

    @property
    def average_power_w(self) -> float:
        if self.total_seconds == 0:
            return 0.0
        return self.total_joules / self.total_seconds


def wh_to_joules(wh: float) -> float:
    return wh * JOULES_PER_WH


def joules_to_wh(joules: float) -> float:
    return joules / JOULES_PER_WH
