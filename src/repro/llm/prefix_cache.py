"""Prefix caching and per-sequence block-table management.

This layer sits between the scheduler and the raw block allocator.  It

* finds the longest cached prefix of a request's prompt (block granularity,
  chained block hashes) and reuses those blocks instead of recomputing them,
* allocates fresh blocks for the rest of the prompt and for generated tokens,
* registers newly computed full blocks in the cache so later LLM calls of the
  same agent request (which share the growing interaction history) and other
  requests (which share instruction/few-shot prefixes) can reuse them,
* frees sequences on completion while leaving cached blocks evictable.

With ``enable_prefix_caching=False`` every request recomputes and stores its
entire context privately, matching the paper's "w/o prefix caching" baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.llm.kvcache import BlockAllocator, KVCacheConfig, KVCacheOutOfMemory
from repro.llm.request import LLMRequest
from repro.llm.tokenizer import block_hashes


@dataclass
class SequenceAllocation:
    """Block table and cache-hit information for a scheduled request."""

    request_id: int
    block_ids: List[int]
    num_cached_tokens: int
    block_hashes: List[int]
    # Prompt blocks whose hashes are already published to the cache.  Atomic
    # prefill registers every full prompt block at admission; chunked prefill
    # defers and advances this watermark at each chunk boundary.
    num_registered_blocks: int = 0


class PrefixCache:
    """Prefix-aware KV-cache manager for the serving engine."""

    def __init__(self, config: KVCacheConfig):
        self.config = config
        self.allocator = BlockAllocator(config)
        self._allocations: Dict[int, SequenceAllocation] = {}
        # Cumulative counters for cache-efficiency reporting.
        self.cached_token_hits: int = 0
        self.prompt_tokens_seen: int = 0

    # -- inspection -------------------------------------------------------
    @property
    def block_size(self) -> int:
        return self.config.block_size

    @property
    def enabled(self) -> bool:
        return self.config.enable_prefix_caching

    def peek_cached_tokens(
        self, token_ids: Sequence[int], hashes: Optional[Sequence[int]] = None
    ) -> int:
        """Number of prompt tokens that would hit the cache (no side effects)."""
        if not self.enabled:
            return 0
        if hashes is None:
            hashes = block_hashes(token_ids, self.block_size)
        hits = 0
        lookup = self.allocator.hash_to_block.get
        for content_hash in hashes:
            if lookup(content_hash) is None:
                break
            hits += 1
        return hits * self.block_size

    def blocks_needed(self, request: LLMRequest) -> int:
        """Blocks a prefill allocation would need for ``request`` right now."""
        total_tokens = request.num_prompt_tokens
        cached_tokens = self.peek_cached_tokens(
            request.prompt_token_ids,
            hashes=request.prompt_block_hashes(self.block_size),
        )
        cached_blocks = cached_tokens // self.block_size
        total_blocks = -(-total_tokens // self.block_size)  # ceil
        return total_blocks - cached_blocks

    def hit_rate(self) -> float:
        if self.prompt_tokens_seen == 0:
            return 0.0
        return self.cached_token_hits / self.prompt_tokens_seen

    def active_bytes(self) -> float:
        return self.allocator.active_bytes

    def active_blocks(self) -> int:
        return self.allocator.num_active_blocks

    def num_free_blocks(self) -> int:
        return self.allocator.num_free_blocks

    # -- prefill ------------------------------------------------------------
    def allocate_sequence(
        self,
        request: LLMRequest,
        now: float = 0.0,
        defer_registration: bool = False,
    ) -> Optional[SequenceAllocation]:
        """Allocate the block table for ``request``'s prompt.

        Returns ``None`` when the KV cache cannot currently hold the request
        (the scheduler will retry later or preempt).  At most one token of
        prefill work is always left even on a full-prefix hit, mirroring
        vLLM's requirement to recompute the final token for sampling.

        With ``defer_registration=True`` (chunked prefill) the hashes of
        freshly computed prompt blocks are *not* published at admission;
        the engine publishes them as chunks actually complete via
        :meth:`register_prefill_progress`, so concurrent requests only hit
        blocks whose KV entries exist.
        """
        if request.request_id in self._allocations:
            raise ValueError(f"request {request.request_id} already allocated")

        hashes = request.prompt_block_hashes(self.block_size)
        cached_block_ids: List[int] = []
        if self.enabled:
            lookup = self.allocator.hash_to_block.get
            for content_hash in hashes:
                block_id = lookup(content_hash)
                if block_id is None:
                    break
                cached_block_ids.append(block_id)

        num_cached_tokens = len(cached_block_ids) * self.block_size
        # Keep at least one token to compute so the engine produces logits.
        if num_cached_tokens >= request.num_prompt_tokens:
            cached_block_ids = cached_block_ids[:-1]
            num_cached_tokens = len(cached_block_ids) * self.block_size

        total_blocks = -(-request.num_prompt_tokens // self.block_size)
        fresh_needed = total_blocks - len(cached_block_ids)
        # Acquiring an evictable cached block removes it from the free pool,
        # so those acquisitions count against the fresh allocation too --
        # otherwise a tightly-packed cache passes the check here and blows up
        # inside ``allocate`` below.
        blocks = self.allocator.blocks
        evictable_cached = sum(
            1
            for block_id in cached_block_ids
            if (block := blocks.get(block_id)) is None or block.ref_count == 0
        )
        if not self.allocator.can_allocate(fresh_needed + evictable_cached):
            return None

        self.allocator.acquire_many(cached_block_ids, now=now)
        fresh_ids = self.allocator.allocate(fresh_needed, now=now)

        block_ids = list(cached_block_ids) + fresh_ids
        allocation = SequenceAllocation(
            request_id=request.request_id,
            block_ids=block_ids,
            num_cached_tokens=num_cached_tokens,
            block_hashes=hashes,
        )
        self._allocations[request.request_id] = allocation

        # Register the hashes of freshly computed *full* prompt blocks so other
        # requests (and later iterations of the same agent) can reuse them.
        full_prompt_blocks = request.num_prompt_tokens // self.block_size
        if self.enabled and not defer_registration:
            start = len(cached_block_ids)
            self.allocator.register_hashes(
                zip(block_ids[start:full_prompt_blocks], hashes[start:full_prompt_blocks])
            )
            allocation.num_registered_blocks = full_prompt_blocks
        else:
            allocation.num_registered_blocks = len(cached_block_ids)

        request.block_ids = block_ids
        request.num_cached_tokens = num_cached_tokens
        self.prompt_tokens_seen += request.num_prompt_tokens
        self.cached_token_hits += num_cached_tokens
        return allocation

    def register_prefill_progress(
        self, request: LLMRequest, num_computed_tokens: int, now: float = 0.0
    ) -> None:
        """Publish hashes of prompt blocks completed by a prefill chunk.

        Called by the engine at each chunk boundary with the request's total
        computed-prompt-token count.  Blocks that became full since the last
        boundary are registered so concurrent requests sharing the prefix can
        start hitting them mid-prefill -- the chunk-granular analogue of the
        atomic path's admission-time registration.
        """
        if not self.enabled:
            return
        allocation = self._allocations.get(request.request_id)
        if allocation is None:
            raise KeyError(f"request {request.request_id} has no allocation")
        full_prompt_blocks = request.num_prompt_tokens // self.block_size
        computed_blocks = min(num_computed_tokens // self.block_size, full_prompt_blocks)
        start = allocation.num_registered_blocks
        if computed_blocks <= start:
            return
        self.allocator.register_hashes(
            zip(
                allocation.block_ids[start:computed_blocks],
                allocation.block_hashes[start:computed_blocks],
            )
        )
        allocation.num_registered_blocks = computed_blocks

    # -- decode -------------------------------------------------------------
    def append_token(self, request: LLMRequest, now: float = 0.0) -> bool:
        """Reserve KV space for one generated token; False if out of memory."""
        allocation = self._allocations.get(request.request_id)
        if allocation is None:
            raise KeyError(f"request {request.request_id} has no allocation")
        new_context = request.context_length + 1
        blocks_needed = -(-new_context // self.block_size)
        if blocks_needed <= len(allocation.block_ids):
            return True
        if not self.allocator.can_allocate(1):
            return False
        new_block = self.allocator.allocate(1, now=now)[0]
        allocation.block_ids.append(new_block)
        request.block_ids = allocation.block_ids
        return True

    def reserve_tokens(self, request: LLMRequest, num_tokens: int, now: float = 0.0) -> bool:
        """Reserve KV space for ``num_tokens`` upcoming tokens in one call.

        Used by the engine's approximate decode chunking, which grows the
        context by a whole chunk in one simulated step.  Allocates every
        block the grown context needs (not just one), so block accounting
        stays exact; returns ``False`` without allocating anything when the
        free pool cannot cover the growth.
        """
        allocation = self._allocations.get(request.request_id)
        if allocation is None:
            raise KeyError(f"request {request.request_id} has no allocation")
        target_blocks = -(-(request.context_length + num_tokens) // self.block_size)
        extra = target_blocks - len(allocation.block_ids)
        if extra <= 0:
            return True
        if not self.allocator.can_allocate(extra):
            return False
        allocation.block_ids.extend(self.allocator.allocate(extra, now=now))
        request.block_ids = allocation.block_ids
        return True

    # -- teardown -----------------------------------------------------------
    def free_sequence(self, request: LLMRequest, now: float = 0.0) -> None:
        """Release the request's blocks, caching full blocks of its context."""
        allocation = self._allocations.pop(request.request_id, None)
        if allocation is None:
            return
        if self.enabled:
            # Cache every full block of prompt + generated tokens so the next
            # LLM call of this agent (whose prompt extends this context) hits.
            all_tokens = request.all_token_ids()
            # Resume the hash chain after the request's memoized prompt
            # hashes: prompt + output shares its full-block prompt prefix.
            hashes = block_hashes(
                all_tokens, self.block_size,
                prefix_hashes=request.prompt_block_hashes(self.block_size),
            )
            computed = request.num_computed_tokens
            if 0 < computed < request.num_prompt_tokens:
                # Chunked prefill was interrupted mid-prompt: only blocks
                # whose KV entries were actually computed may be published.
                limit = computed // self.block_size
                self.allocator.register_hashes(
                    zip(allocation.block_ids[:limit], hashes[:limit])
                )
            else:
                self.allocator.register_hashes(zip(allocation.block_ids, hashes))
        self.allocator.release_many(allocation.block_ids, now=now)
        request.block_ids = []

    def release_for_preemption(self, request: LLMRequest, now: float = 0.0) -> None:
        """Free blocks of a preempted request (recompute-style preemption)."""
        self.free_sequence(request, now=now)
        request.num_cached_tokens = 0
        request.num_computed_tokens = 0
