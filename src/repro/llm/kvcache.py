"""Paged KV-cache block allocator (PagedAttention-style).

GPU memory left over after weights and activation workspace is carved into
fixed-size blocks of ``block_size`` tokens.  Sequences own lists of blocks via
reference counts; blocks whose reference count drops to zero but that carry a
content hash stay *evictable* -- they still hold reusable KV state for prefix
caching and are only recycled (LRU) when a fresh allocation needs space.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.llm.hardware import ClusterSpec
from repro.llm.models import ModelSpec


@dataclass(frozen=True)
class KVCacheConfig:
    """Sizing and behaviour of the paged KV cache."""

    block_size: int = 16
    num_blocks: int = 0
    bytes_per_block: float = 0.0
    enable_prefix_caching: bool = True

    @classmethod
    def from_hardware(
        cls,
        model: ModelSpec,
        cluster: ClusterSpec,
        block_size: int = 16,
        enable_prefix_caching: bool = True,
        capacity_fraction: float = 1.0,
    ) -> "KVCacheConfig":
        """Size the cache from the hardware's post-weights memory budget.

        ``capacity_fraction`` scales the derived block count (1.0 = the full
        budget): shrinking it models a smaller prefix-cache working set
        without changing the hardware spec, the capacity axis of the
        sessions study.
        """
        bytes_per_block = model.kv_bytes_per_token * block_size
        num_blocks = int(cluster.kv_cache_bytes(model) // bytes_per_block)
        if capacity_fraction != 1.0:
            if not 0 < capacity_fraction <= 1:
                raise ValueError("capacity_fraction must be in (0, 1]")
            num_blocks = max(1, int(num_blocks * capacity_fraction))
        return cls(
            block_size=block_size,
            num_blocks=num_blocks,
            bytes_per_block=bytes_per_block,
            enable_prefix_caching=enable_prefix_caching,
        )


@dataclass(slots=True)
class Block:
    """One KV-cache block."""

    block_id: int
    ref_count: int = 0
    content_hash: Optional[int] = None
    last_used: float = 0.0


class KVCacheOutOfMemory(Exception):
    """Raised when an allocation cannot be satisfied even after eviction."""


class BlockAllocator:
    """Reference-counted block pool with LRU eviction of cached blocks."""

    def __init__(self, config: KVCacheConfig):
        if config.num_blocks <= 0:
            raise ValueError("KV cache must have at least one block")
        self.config = config
        # Block records and the fresh-id pool materialize lazily: a cluster
        # holds hundreds of thousands of blocks and most runs touch a small
        # fraction, so eagerly building both lists dominates engine setup.
        # ``_free`` holds only *released* ids; untouched ids are handed out
        # from ``_next_fresh`` downward, exactly the order the historical
        # eager free list (``list(range(n)).pop()``) produced.
        self.blocks: Dict[int, Block] = {}
        self._free: List[int] = []
        self._next_fresh: int = config.num_blocks - 1
        # Evictable cached blocks in LRU order (block_id -> None).
        self._evictable: "OrderedDict[int, None]" = OrderedDict()
        # content hash -> block id for cached (evictable or referenced) blocks.
        self.hash_to_block: Dict[int, int] = {}
        self.eviction_count: int = 0

    # -- capacity ------------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        return self.config.num_blocks

    @property
    def num_free_blocks(self) -> int:
        """Blocks available for new allocations (never-used + evictable)."""
        return len(self._free) + self._next_fresh + 1 + len(self._evictable)

    @property
    def num_active_blocks(self) -> int:
        """Blocks currently referenced by at least one sequence."""
        return self.config.num_blocks - self.num_free_blocks

    @property
    def active_bytes(self) -> float:
        return self.num_active_blocks * self.config.bytes_per_block

    def can_allocate(self, n_blocks: int) -> bool:
        return n_blocks <= self.num_free_blocks

    # -- allocation ------------------------------------------------------------
    def allocate(self, n_blocks: int, now: float = 0.0) -> List[int]:
        """Allocate ``n_blocks`` fresh blocks, evicting cached blocks if needed."""
        if n_blocks < 0:
            raise ValueError("cannot allocate a negative number of blocks")
        if not self.can_allocate(n_blocks):
            raise KVCacheOutOfMemory(
                f"requested {n_blocks} blocks, only {self.num_free_blocks} free"
            )
        allocated: List[int] = []
        for _ in range(n_blocks):
            if self._free:
                block_id = self._free.pop()
            elif self._next_fresh >= 0:
                block_id = self._next_fresh
                self._next_fresh -= 1
            else:
                block_id, _ = self._evictable.popitem(last=False)  # LRU
                self._evict(block_id)
            block = self._block(block_id)
            block.ref_count = 1
            block.content_hash = None
            block.last_used = now
            allocated.append(block_id)
        return allocated

    def _block(self, block_id: int) -> Block:
        block = self.blocks.get(block_id)
        if block is None:
            block = Block(block_id=block_id)
            self.blocks[block_id] = block
        return block

    def _evict(self, block_id: int) -> None:
        block = self._block(block_id)
        if block.content_hash is not None:
            self.hash_to_block.pop(block.content_hash, None)
            block.content_hash = None
        self.eviction_count += 1

    # -- reference counting -----------------------------------------------------
    def acquire(self, block_id: int, now: float = 0.0) -> None:
        """Take an additional reference on a (possibly evictable) cached block."""
        block = self._block(block_id)
        if block.ref_count == 0:
            self._evictable.pop(block_id, None)
        block.ref_count += 1
        block.last_used = now

    def release(self, block_id: int, now: float = 0.0) -> None:
        """Drop a reference; unreferenced blocks become evictable or free."""
        block = self._block(block_id)
        if block.ref_count <= 0:
            raise ValueError(f"release of unreferenced block {block_id}")
        block.ref_count -= 1
        block.last_used = now
        if block.ref_count == 0:
            if block.content_hash is not None and self.config.enable_prefix_caching:
                self._evictable[block_id] = None
                self._evictable.move_to_end(block_id)
            else:
                block.content_hash = None
                self._free.append(block_id)

    def acquire_many(self, block_ids: "Iterable[int]", now: float = 0.0) -> None:
        """:meth:`acquire` for a run of blocks, resolving shared state once.

        Sequence setup and teardown touch every block of a request (often
        hundreds), so these batch variants inline the per-block logic with
        the instance dicts bound to locals.  Each performs the identical
        state transitions in the identical order to calling the scalar
        method per block.
        """
        blocks = self.blocks
        evictable = self._evictable
        for block_id in block_ids:
            block = blocks.get(block_id)
            if block is None:
                block = Block(block_id=block_id)
                blocks[block_id] = block
            if block.ref_count == 0:
                evictable.pop(block_id, None)
            block.ref_count += 1
            block.last_used = now

    def release_many(self, block_ids: "Iterable[int]", now: float = 0.0) -> None:
        """:meth:`release` for a run of blocks (see :meth:`acquire_many`)."""
        blocks = self.blocks
        evictable = self._evictable
        free = self._free
        caching = self.config.enable_prefix_caching
        for block_id in block_ids:
            block = blocks.get(block_id)
            if block is None:
                block = Block(block_id=block_id)
                blocks[block_id] = block
            if block.ref_count <= 0:
                raise ValueError(f"release of unreferenced block {block_id}")
            block.ref_count -= 1
            block.last_used = now
            if block.ref_count == 0:
                if block.content_hash is not None and caching:
                    evictable[block_id] = None
                    evictable.move_to_end(block_id)
                else:
                    block.content_hash = None
                    free.append(block_id)

    def register_hashes(
        self, pairs: "Iterable[tuple[int, int]]"
    ) -> None:
        """:meth:`register_hash` for ``(block_id, content_hash)`` pairs."""
        if not self.config.enable_prefix_caching:
            return
        blocks = self.blocks
        hash_to_block = self.hash_to_block
        for block_id, content_hash in pairs:
            block = blocks.get(block_id)
            if block is None:
                block = Block(block_id=block_id)
                blocks[block_id] = block
            existing = hash_to_block.get(content_hash)
            if existing is not None and existing != block_id:
                continue
            block.content_hash = content_hash
            hash_to_block[content_hash] = block_id

    # -- prefix-cache integration -----------------------------------------------
    def register_hash(self, block_id: int, content_hash: int) -> None:
        """Record that ``block_id`` holds the KV state for ``content_hash``."""
        if not self.config.enable_prefix_caching:
            return
        block = self._block(block_id)
        existing = self.hash_to_block.get(content_hash)
        if existing is not None and existing != block_id:
            # Another block already caches this content; keep the existing one.
            return
        block.content_hash = content_hash
        self.hash_to_block[content_hash] = block_id

    def lookup_hash(self, content_hash: int) -> Optional[int]:
        return self.hash_to_block.get(content_hash)

    # -- introspection -----------------------------------------------------------
    def ref_count(self, block_id: int) -> int:
        block = self.blocks.get(block_id)
        return block.ref_count if block is not None else 0

    def cached_block_count(self) -> int:
        return len(self.hash_to_block)
