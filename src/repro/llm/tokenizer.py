"""Synthetic tokenizer and prompt representation.

The reproduction does not need real text, but it does need *token identity*:
prefix caching only works if the same logical content produces the same token
ids every time it is embedded in a prompt, and the paper's token-breakdown
analysis (Fig. 8) needs every prompt token attributed to a segment category
(instruction / few-shot / user / LLM history / tool history).

Prompts are therefore lists of :class:`TokenSpan` objects.  A span carries a
segment kind and a tuple of integer token ids; ids are derived
deterministically from text (word hashing) or from a named synthetic stream,
so identical content always maps to identical ids.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Sequence, Tuple


class SegmentKind(str, Enum):
    """Prompt segment categories from the paper's token-breakdown analysis."""

    INSTRUCTION = "instruction"
    FEW_SHOT = "few_shot"
    USER = "user"
    LLM_HISTORY = "llm_history"
    TOOL_HISTORY = "tool_history"
    OUTPUT = "output"


@dataclass(frozen=True)
class TokenSpan:
    """A run of tokens with a single segment kind."""

    kind: SegmentKind
    tokens: Tuple[int, ...]

    def __len__(self) -> int:
        return len(self.tokens)


@dataclass
class Prompt:
    """A prompt assembled from labelled token spans."""

    spans: List[TokenSpan] = field(default_factory=list)

    def append(self, span: TokenSpan) -> "Prompt":
        if span.tokens:
            self.spans.append(span)
        return self

    def extend(self, spans: Iterable[TokenSpan]) -> "Prompt":
        for span in spans:
            self.append(span)
        return self

    def copy(self) -> "Prompt":
        return Prompt(spans=list(self.spans))

    @property
    def token_ids(self) -> Tuple[int, ...]:
        ids: List[int] = []
        for span in self.spans:
            ids.extend(span.tokens)
        return tuple(ids)

    def __len__(self) -> int:
        return sum(len(span) for span in self.spans)

    def count_by_kind(self) -> Dict[SegmentKind, int]:
        """Token counts per segment kind (missing kinds map to zero)."""
        counts = {kind: 0 for kind in SegmentKind}
        for span in self.spans:
            counts[span.kind] += len(span)
        return counts


class SyntheticTokenizer:
    """Deterministic text/stream -> token-id mapping.

    Two entry points:

    * :meth:`encode` hashes whitespace-separated words of real text into a
      stable id per word (plus a sub-token expansion factor, so token counts
      look like BPE counts rather than word counts).
    * :meth:`synthetic_tokens` produces ``count`` ids that are a pure function
      of a stream name -- used for generated content whose only relevant
      property is its length and identity (LLM outputs, synthetic documents).
    """

    def __init__(self, vocab_size: int = 128256, tokens_per_word: float = 1.3):
        if vocab_size <= 1:
            raise ValueError("vocab_size must be > 1")
        self.vocab_size = vocab_size
        self.tokens_per_word = tokens_per_word
        # Both mappings are pure functions of their key (given the tokenizer
        # config), so memoizing them is invisible except for speed: agent
        # prompts re-encode the same instruction text and re-emit the same
        # content streams on every LLM call of an episode.
        self._word_cache: Dict[str, Tuple[int, ...]] = {}
        self._stream_cache: Dict[str, Tuple[int, ...]] = {}

    def _hash_id(self, text: str, salt: int = 0) -> int:
        digest = hashlib.blake2b(
            f"{salt}:{text}".encode("utf-8"), digest_size=8
        ).digest()
        return int.from_bytes(digest, "little") % self.vocab_size

    def encode(self, text: str) -> Tuple[int, ...]:
        """Encode real text into deterministic token ids."""
        if not text:
            return ()
        ids: List[int] = []
        cache = self._word_cache
        for word in text.split():
            cached = cache.get(word)
            if cached is None:
                n_sub = max(1, round(len(word) * self.tokens_per_word / 5.0))
                cached = tuple(self._hash_id(word, salt=sub) for sub in range(n_sub))
                cache[word] = cached
            ids.extend(cached)
        return tuple(ids)

    def count(self, text: str) -> int:
        """Token count of ``text`` without materialising ids."""
        return len(self.encode(text))

    def synthetic_tokens(self, stream: str, count: int, start: int = 0) -> Tuple[int, ...]:
        """Deterministic token ids ``[start, count)`` of a named content stream.

        Ids come in independent 8-id blocks -- one 32-byte digest of
        ``"{stream}:{block_index}"`` each -- so a suffix can be produced
        without materialising the prefix: ``synthetic_tokens(s, n, start=k)``
        equals ``synthetic_tokens(s, n)[k:]`` by construction.  The engine's
        decode replay uses this to extend a request's output stream in
        amortised constant time per token.
        """
        if count <= start or count <= 0:
            return ()
        cached = self._stream_cache.get(stream, ())
        if len(cached) < count:
            # Grow the memoized stream by whole blocks (the cache length is
            # always a multiple of 8, so the next digest index is exact).
            vocab = self.vocab_size
            ids = list(cached)
            append = ids.append
            block_index = len(ids) // 8
            while len(ids) < count:
                digest = hashlib.blake2b(
                    f"{stream}:{block_index}".encode("utf-8"), digest_size=32
                ).digest()
                for offset in range(0, len(digest), 4):
                    append(
                        int.from_bytes(digest[offset : offset + 4], "little")
                        % vocab
                    )
                block_index += 1
            cached = tuple(ids)
            self._stream_cache[stream] = cached
        if start == 0 and count == len(cached):
            return cached
        return cached[start:count]

    def span(self, kind: SegmentKind, stream: str, count: int) -> TokenSpan:
        """Convenience constructor for a synthetic span."""
        return TokenSpan(kind=kind, tokens=self.synthetic_tokens(stream, count))

    def text_span(self, kind: SegmentKind, text: str) -> TokenSpan:
        return TokenSpan(kind=kind, tokens=self.encode(text))


def block_hashes(
    token_ids: Sequence[int],
    block_size: int,
    prefix_hashes: Sequence[int] = (),
) -> List[int]:
    """Chained hashes of full token blocks, as used by vLLM prefix caching.

    Block ``i``'s hash covers all tokens of blocks ``0..i``, so two sequences
    share hashes exactly for their common full-block prefix.

    ``prefix_hashes`` optionally carries already-computed hashes for the
    leading blocks of ``token_ids`` (e.g. a request's prompt hashes when
    hashing prompt + generated tokens at free time); the chain resumes after
    them instead of re-hashing the shared prefix.  Hashing is the dominant
    cost of prefix-cache bookkeeping, so callers that see the same sequence
    repeatedly should cache and pass these.

    Like vLLM's original prefix-cache keys, the per-block hash is Python's
    built-in tuple hash over (parent hash, block tokens).  For int tuples
    this is deterministic across processes (PYTHONHASHSEED only perturbs
    str/bytes), and cache hits only ever compare hashes of equal content,
    so the choice of hash function does not affect hit patterns.
    """
    hashes: List[int] = list(prefix_hashes)
    previous = hashes[-1] if hashes else 0
    full_blocks = len(token_ids) // block_size
    for block_index in range(len(hashes), full_blocks):
        previous = hash(
            (previous, tuple(token_ids[block_index * block_size : (block_index + 1) * block_size]))
        )
        hashes.append(previous)
    return hashes
