"""Decode-length prediction with configurable accuracy.

The behaviour oracle fixes every call's output length up front, so the
simulator can expose either a *perfect* predictor (the idealized upper bound
for prediction-driven schedulers and routers) or a *noisy* one whose relative
error is configurable -- the realistic regime for learned output-length
predictors.  Predictions are deterministic per request (derived from the
experiment seed and the request id) and cached on the request metadata so the
scheduler and the pool router always agree on the same estimate.
"""

from __future__ import annotations

from repro.llm.request import LLMRequest
from repro.sim.distributions import RandomStream

#: metadata key under which a request's (noisy) prediction is cached.
PREDICTED_DECODE_KEY = "predicted_decode"


class DecodeLengthPredictor:
    """Predicts a request's decode length with a configurable relative error.

    ``relative_error`` is the standard deviation of the multiplicative noise:
    the prediction is ``true_length * (1 + eps)`` with
    ``eps ~ Normal(0, relative_error)``, floored at one token.  With
    ``relative_error=0`` the predictor is exact (the perfect oracle the
    built-in SJF policy historically assumed).

    Noise is derived from the request *content* (a prompt digest plus the
    true length), never from process-global state, so the same logical
    request gets the same prediction on every run of the same experiment --
    and, like a real learned predictor, identical inputs always yield the
    same estimate.
    """

    def __init__(self, relative_error: float = 0.0, seed: int = 0):
        if relative_error < 0:
            raise ValueError("relative_error must be >= 0")
        self.relative_error = relative_error
        self.seed = seed

    @property
    def is_exact(self) -> bool:
        return self.relative_error == 0

    @staticmethod
    def _request_key(request: LLMRequest) -> str:
        """Stable per-request identity (prompt-tail digest + true length)."""
        digest = 0
        # The tail distinguishes requests that share a long system/few-shot
        # prefix; the head would collide across every request of one agent.
        for token in request.prompt_token_ids[-64:]:
            digest = (digest * 1000003 + token) % (2**61 - 1)
        return (
            f"{request.num_prompt_tokens}:{digest}:"
            f"{request.sampling.effective_output_tokens}"
        )

    def predict(self, request: LLMRequest) -> float:
        """Predicted decode length in tokens (deterministic per request)."""
        exact = float(request.sampling.effective_output_tokens)
        if self.is_exact:
            return exact
        cached = request.metadata.get(PREDICTED_DECODE_KEY)
        if cached is None:
            noise = RandomStream(
                self.seed, f"decode-predictor/{self._request_key(request)}"
            ).normal(0.0, self.relative_error)
            cached = max(1.0, exact * (1.0 + noise))
            request.metadata[PREDICTED_DECODE_KEY] = cached
        return float(cached)
