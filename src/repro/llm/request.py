"""Request and result objects exchanged with the simulated LLM engine."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional, Tuple

from repro.llm.tokenizer import Prompt, SegmentKind, TokenSpan, block_hashes

_request_counter = itertools.count()


def reset_request_ids() -> None:
    """Restart request-id numbering from zero.

    Request ids are drawn from a process-global counter, so two otherwise
    identical experiments run in the same process would number their
    requests differently.  ``run_experiment`` resets the counter at the
    start of every experiment so results are reproducible regardless of
    process history -- which is also what makes process-parallel study
    execution bit-for-bit identical to serial execution.
    """
    global _request_counter
    _request_counter = itertools.count()


class RequestState(str, Enum):
    WAITING = "waiting"
    RUNNING = "running"
    FINISHED = "finished"


@dataclass(frozen=True, slots=True)
class SamplingParams:
    """Generation parameters.

    ``output_tokens`` is the number of tokens the simulated model will
    generate for this call (decided by the behaviour oracle); ``max_tokens``
    caps it, mirroring the real API knob.
    """

    output_tokens: int
    max_tokens: int = 4096
    temperature: float = 0.7

    @property
    def effective_output_tokens(self) -> int:
        return max(1, min(self.output_tokens, self.max_tokens))


@dataclass(slots=True)
class RequestTimings:
    """Timestamps and accumulated durations for one LLM request."""

    arrival: float = 0.0
    first_scheduled: Optional[float] = None
    first_token: Optional[float] = None
    finished: Optional[float] = None
    prefill_time: float = 0.0
    decode_time: float = 0.0

    @property
    def queue_time(self) -> float:
        if self.first_scheduled is None:
            return 0.0
        return max(0.0, self.first_scheduled - self.arrival)

    @property
    def e2e_latency(self) -> float:
        if self.finished is None:
            return 0.0
        return self.finished - self.arrival


class LLMRequest:
    """A single LLM inference call tracked by the engine."""

    __slots__ = (
        "request_id",
        "prompt",
        "prompt_token_ids",
        "sampling",
        "metadata",
        "state",
        "timings",
        "output_token_ids",
        "num_cached_tokens",
        "num_computed_tokens",
        "block_ids",
        "completion_event",
        "_prompt_hashes",
    )

    def __init__(
        self,
        prompt: Prompt,
        sampling: SamplingParams,
        arrival_time: float = 0.0,
        metadata: Optional[Dict[str, Any]] = None,
    ):
        self.request_id: int = next(_request_counter)
        self.prompt = prompt
        self.prompt_token_ids: Tuple[int, ...] = prompt.token_ids
        self.sampling = sampling
        self.metadata: Dict[str, Any] = metadata or {}
        self.state = RequestState.WAITING
        self.timings = RequestTimings(arrival=arrival_time)

        self.output_token_ids: List[int] = []
        self.num_cached_tokens: int = 0
        # Prompt tokens whose KV entries exist (cached prefix + chunks
        # computed so far).  Only chunked prefill advances this in stages;
        # atomic prefill goes 0 -> num_prompt_tokens in one step.
        self.num_computed_tokens: int = 0
        self.block_ids: List[int] = []
        self.completion_event: Any = None  # set by the client/engine
        # Memoized chained block hashes of the (immutable) prompt, keyed by
        # block size.  The scheduler re-hashes waiting prompts on every
        # admission attempt otherwise, which dominates contended runs.
        self._prompt_hashes: Optional[Tuple[int, List[int]]] = None

    # -- sizes --------------------------------------------------------------
    @property
    def num_prompt_tokens(self) -> int:
        return len(self.prompt_token_ids)

    @property
    def num_output_tokens(self) -> int:
        return len(self.output_token_ids)

    @property
    def target_output_tokens(self) -> int:
        return self.sampling.effective_output_tokens

    @property
    def context_length(self) -> int:
        return self.num_prompt_tokens + self.num_output_tokens

    @property
    def is_finished(self) -> bool:
        return self.state == RequestState.FINISHED

    @property
    def remaining_output_tokens(self) -> int:
        return max(0, self.target_output_tokens - self.num_output_tokens)

    def all_token_ids(self) -> Tuple[int, ...]:
        return self.prompt_token_ids + tuple(self.output_token_ids)

    def prompt_block_hashes(self, block_size: int) -> List[int]:
        """Chained block hashes of the prompt, computed once per request."""
        cached = self._prompt_hashes
        if cached is not None and cached[0] == block_size:
            return cached[1]
        hashes = block_hashes(self.prompt_token_ids, block_size)
        self._prompt_hashes = (block_size, hashes)
        return hashes

    def to_result(self) -> "LLMResult":
        counts = self.prompt.count_by_kind()
        return LLMResult(
            request_id=self.request_id,
            prompt_tokens=self.num_prompt_tokens,
            cached_prompt_tokens=self.num_cached_tokens,
            output_tokens=self.num_output_tokens,
            output_token_ids=tuple(self.output_token_ids),
            prompt_tokens_by_kind={k: v for k, v in counts.items() if v},
            queue_time=self.timings.queue_time,
            prefill_time=self.timings.prefill_time,
            decode_time=self.timings.decode_time,
            e2e_latency=self.timings.e2e_latency,
            arrival_time=self.timings.arrival,
            finish_time=self.timings.finished or self.timings.arrival,
            metadata=dict(self.metadata),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LLMRequest {self.request_id} {self.state.value} "
            f"prompt={self.num_prompt_tokens} out={self.num_output_tokens}"
            f"/{self.target_output_tokens}>"
        )


@dataclass(frozen=True)
class LLMResult:
    """Outcome of one LLM call, returned to the agent that issued it."""

    request_id: int
    prompt_tokens: int
    cached_prompt_tokens: int
    output_tokens: int
    output_token_ids: Tuple[int, ...]
    prompt_tokens_by_kind: Dict[SegmentKind, int]
    queue_time: float
    prefill_time: float
    decode_time: float
    e2e_latency: float
    arrival_time: float
    finish_time: float
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.output_tokens

    def output_span(self) -> TokenSpan:
        """The generated tokens as an LLM-history span for the next prompt."""
        return TokenSpan(kind=SegmentKind.LLM_HISTORY, tokens=self.output_token_ids)
