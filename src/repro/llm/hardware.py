"""GPU and cluster hardware specifications.

The paper's testbed is GCP ``a2-highgpu-1g`` (1x A100-40GB) for the 8B model
and ``a2-highgpu-8g`` (8x A100-40GB, tensor parallel) for the 70B model.  The
specification carries the roofline inputs (peak FLOPs, HBM bandwidth, memory
capacity), the power-state model used for energy accounting, and an hourly
price used for cost accounting.

Beyond the paper's A100-40GB, a small catalog of GPU generations
(:data:`GPU_CATALOG`, extensible via :func:`register_gpu`) lets experiments
mix hardware across replica pools: :class:`HardwareSpec` is the frozen,
serialisable handle specs carry (``gpu=`` names a catalog entry), and
``HardwareSpec.resolve()`` turns it into the :class:`ClusterSpec` the engine
consumes.  Leaving ``hardware=None`` on a spec keeps today's
:func:`cluster_for_model` defaults bit-for-bit.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Mapping, Tuple

from repro.llm.models import ModelSpec, LLAMA_3_1_70B, LLAMA_3_1_8B


@dataclass(frozen=True)
class GPUSpec:
    """Per-GPU hardware characteristics."""

    name: str
    peak_flops: float            # dense bf16 FLOP/s
    mem_bandwidth: float         # HBM bytes/s
    mem_capacity: float          # bytes
    idle_power_w: float          # power while the engine has no work
    decode_power_w: float        # power during memory-bound decode steps
    prefill_power_w: float       # power during compute-bound prefill steps
    mfu_prefill: float = 0.52    # achieved fraction of peak FLOPs in prefill
    mbu_decode: float = 0.62     # achieved fraction of HBM bandwidth in decode
    cost_per_hour: float = 0.0   # USD per GPU-hour (on-demand, no discounts)


# Catalog prices are GCP us-central1 on-demand, per GPU-hour: the
# accelerator-optimized machine-type hourly price divided by its GPU count
# (a2-highgpu-1g for A100-40GB, a2-ultragpu-1g for A100-80GB, a3-highgpu-8g
# for H100-80GB, g2-standard-4 for L4).  Rooflines are vendor datasheet
# numbers (dense bf16, no sparsity); power states follow the same
# idle/decode/prefill calibration style as the paper's A100-40GB entry.
A100_40GB = GPUSpec(
    name="A100-SXM4-40GB",
    peak_flops=312e12,
    mem_bandwidth=1.555e12,
    mem_capacity=40e9,
    idle_power_w=62.0,
    decode_power_w=272.0,
    prefill_power_w=388.0,
    cost_per_hour=3.67,
)

A100_80GB = GPUSpec(
    name="A100-SXM4-80GB",
    peak_flops=312e12,
    mem_bandwidth=2.039e12,
    mem_capacity=80e9,
    idle_power_w=66.0,
    decode_power_w=285.0,
    prefill_power_w=400.0,
    cost_per_hour=5.07,
)

H100_80GB = GPUSpec(
    name="H100-SXM5-80GB",
    peak_flops=989e12,
    mem_bandwidth=3.35e12,
    mem_capacity=80e9,
    idle_power_w=90.0,
    decode_power_w=480.0,
    prefill_power_w=650.0,
    cost_per_hour=11.06,
)

L4_24GB = GPUSpec(
    name="L4-24GB",
    peak_flops=121e12,
    mem_bandwidth=0.3e12,
    mem_capacity=24e9,
    idle_power_w=20.0,
    decode_power_w=55.0,
    prefill_power_w=70.0,
    cost_per_hour=0.70,
)


# Name -> GPUSpec, keyed by normalized (lowercase) name.  Entries registered
# under aliases point at the same spec instance.
GPU_CATALOG: Dict[str, GPUSpec] = {}


def _normalize_gpu_name(name: str) -> str:
    return name.strip().lower()


def register_gpu(spec: GPUSpec, aliases: Tuple[str, ...] = ()) -> GPUSpec:
    """Add a GPU to the catalog under its name (plus optional aliases)."""
    if not isinstance(spec, GPUSpec):
        raise TypeError(f"expected a GPUSpec, got {type(spec).__name__}")
    for key in (spec.name, *aliases):
        GPU_CATALOG[_normalize_gpu_name(key)] = spec
    return spec


def get_gpu(name: str) -> GPUSpec:
    """Look up a catalog GPU by name or alias (case-insensitive)."""
    key = _normalize_gpu_name(name)
    if key not in GPU_CATALOG:
        raise KeyError(
            f"unknown GPU: {name!r} (known: {available_gpus()})"
        )
    return GPU_CATALOG[key]


def available_gpus() -> Tuple[str, ...]:
    """Canonical names of every distinct GPU in the catalog."""
    seen = []
    for spec in GPU_CATALOG.values():
        if spec.name not in seen:
            seen.append(spec.name)
    return tuple(sorted(seen))


register_gpu(A100_40GB, aliases=("A100-40GB",))
register_gpu(A100_80GB, aliases=("A100-80GB",))
register_gpu(H100_80GB, aliases=("H100-80GB",))
register_gpu(L4_24GB, aliases=("L4",))


# The step-overhead / power / KV calibration below was only ever validated
# for tensor-parallel groups of 1-8 GPUs (the paper's largest testbed is
# 8x A100); reject larger degrees rather than extrapolate silently.
MAX_TENSOR_PARALLEL = 8


@dataclass(frozen=True)
class ClusterSpec:
    """A tensor-parallel group of identical GPUs serving one model replica."""

    gpu: GPUSpec = A100_40GB
    tensor_parallel: int = 1
    # Fraction of GPU memory vLLM may use (its gpu_memory_utilization knob).
    gpu_memory_utilization: float = 0.90
    # Non-weight, non-KV overhead reserved per GPU (activations, CUDA graphs).
    activation_overhead_bytes: float = 2.0e9
    # Fixed per-engine-step overheads (kernel launch, sampling, scheduling);
    # tensor parallelism adds all-reduce latency per step.
    step_overhead_s: float = 0.004
    tp_comm_overhead_s: float = 0.0015
    # Memory-bound decode keeps large TP groups less busy per GPU, which shows
    # up as lower per-GPU power draw (calibrated to the paper's 70B energy).
    tp_power_efficiency: float = 0.62

    def __post_init__(self) -> None:
        if not 1 <= self.tensor_parallel <= MAX_TENSOR_PARALLEL:
            raise ValueError(
                f"tensor_parallel={self.tensor_parallel} is outside the "
                f"calibrated range 1..{MAX_TENSOR_PARALLEL} for {self.gpu.name}"
            )

    @property
    def num_gpus(self) -> int:
        return self.tensor_parallel

    @property
    def total_peak_flops(self) -> float:
        return self.gpu.peak_flops * self.tensor_parallel

    @property
    def total_mem_bandwidth(self) -> float:
        return self.gpu.mem_bandwidth * self.tensor_parallel

    @property
    def step_overhead(self) -> float:
        extra = self.tp_comm_overhead_s if self.tensor_parallel > 1 else 0.0
        return self.step_overhead_s + extra

    @property
    def cost_per_hour(self) -> float:
        """USD per replica-hour: per-GPU on-demand price x TP degree."""
        return self.gpu.cost_per_hour * self.tensor_parallel

    def kv_cache_bytes(self, model: ModelSpec) -> float:
        """GPU bytes available for the KV cache after weights and overheads."""
        usable = self.gpu.mem_capacity * self.gpu_memory_utilization * self.tensor_parallel
        reserved = model.weight_bytes + self.activation_overhead_bytes * self.tensor_parallel
        available = usable - reserved
        if available <= 0:
            raise ValueError(
                f"model {model.name} does not fit on {self.tensor_parallel}x {self.gpu.name}"
            )
        return available

    def decode_seconds_per_token(self, model: ModelSpec) -> float:
        """Roofline lower bound on one decode step for ``model`` (seconds).

        Decode is memory-bound: every step streams the full weights through
        HBM at the achieved bandwidth fraction, plus the fixed step overhead.
        Used by cost-aware routing to rank pools by decode speed without
        building an engine.
        """
        stream = model.weight_bytes / (self.gpu.mbu_decode * self.total_mem_bandwidth)
        return stream + self.step_overhead

    def power_w(self, state: str) -> float:
        """Cluster-wide power draw (all GPUs) for an engine power state."""
        gpu = self.gpu
        if state == "idle":
            per_gpu = gpu.idle_power_w
        elif state == "decode":
            per_gpu = gpu.decode_power_w
        elif state == "prefill":
            per_gpu = gpu.prefill_power_w
        elif state == "draft":
            # Speculative draft passes run on the same GPUs at decode-like
            # (memory-bound) intensity; the draft energy premium comes from
            # the extra dwell *time*, not a distinct power level.
            per_gpu = gpu.decode_power_w
        else:
            raise ValueError(f"unknown power state: {state!r}")
        if state != "idle" and self.tensor_parallel > 1:
            active = per_gpu - gpu.idle_power_w
            per_gpu = gpu.idle_power_w + active * self.tp_power_efficiency
        return per_gpu * self.tensor_parallel


@dataclass(frozen=True)
class HardwareSpec:
    """Declarative, serialisable hardware selection for a replica pool.

    ``gpu`` names a :data:`GPU_CATALOG` entry (a :class:`GPUSpec` instance is
    accepted and coerced to its name), so the spec stays a plain string/number
    record that round-trips through ``to_dict``/``from_dict``.  ``resolve()``
    produces the :class:`ClusterSpec` the engine consumes.
    """

    gpu: str = "A100-40GB"
    tensor_parallel: int = 1
    gpu_memory_utilization: float = 0.90

    def __post_init__(self) -> None:
        if isinstance(self.gpu, GPUSpec):
            object.__setattr__(self, "gpu", self.gpu.name)
        # Canonicalise aliases so equal hardware compares equal; raises
        # KeyError naming the catalog when the GPU is unknown.
        object.__setattr__(self, "gpu", get_gpu(self.gpu).name)
        if not 1 <= int(self.tensor_parallel) <= MAX_TENSOR_PARALLEL:
            raise ValueError(
                f"tensor_parallel={self.tensor_parallel} is outside the "
                f"calibrated range 1..{MAX_TENSOR_PARALLEL}"
            )
        if not 0.0 < self.gpu_memory_utilization <= 1.0:
            raise ValueError(
                "gpu_memory_utilization must be in (0, 1], got "
                f"{self.gpu_memory_utilization}"
            )

    def resolve(self) -> ClusterSpec:
        """The concrete cluster this hardware selection describes."""
        return ClusterSpec(
            gpu=get_gpu(self.gpu),
            tensor_parallel=self.tensor_parallel,
            gpu_memory_utilization=self.gpu_memory_utilization,
        )

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "HardwareSpec":
        return cls(**dict(data))


def cluster_for_model(model: ModelSpec) -> ClusterSpec:
    """The paper's default cluster for a given backend model."""
    if model.name == LLAMA_3_1_8B.name:
        return ClusterSpec(gpu=A100_40GB, tensor_parallel=1)
    if model.name == LLAMA_3_1_70B.name:
        return ClusterSpec(gpu=A100_40GB, tensor_parallel=8)
    # Default: smallest calibrated TP degree that fits the weights plus some
    # KV headroom.  Degrees beyond MAX_TENSOR_PARALLEL were never calibrated
    # (power_w / kv_cache_bytes assume 1-8 GPUs), so they are not tried.
    for tp in (1, 2, 4, 8):
        cluster = ClusterSpec(gpu=A100_40GB, tensor_parallel=tp)
        try:
            cluster.kv_cache_bytes(model)
        except ValueError:
            continue
        return cluster
    raise ValueError(
        f"no tensor-parallel degree up to {MAX_TENSOR_PARALLEL} fits model "
        f"{model.name} on {A100_40GB.name}; pick a larger-memory GPU from "
        f"the catalog ({', '.join(available_gpus())}) via HardwareSpec"
    )
