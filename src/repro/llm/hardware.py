"""GPU and cluster hardware specifications.

The paper's testbed is GCP ``a2-highgpu-1g`` (1x A100-40GB) for the 8B model
and ``a2-highgpu-8g`` (8x A100-40GB, tensor parallel) for the 70B model.  The
specification carries the roofline inputs (peak FLOPs, HBM bandwidth, memory
capacity) and the power-state model used for energy accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.llm.models import ModelSpec, LLAMA_3_1_70B, LLAMA_3_1_8B


@dataclass(frozen=True)
class GPUSpec:
    """Per-GPU hardware characteristics."""

    name: str
    peak_flops: float            # dense bf16 FLOP/s
    mem_bandwidth: float         # HBM bytes/s
    mem_capacity: float          # bytes
    idle_power_w: float          # power while the engine has no work
    decode_power_w: float        # power during memory-bound decode steps
    prefill_power_w: float       # power during compute-bound prefill steps
    mfu_prefill: float = 0.52    # achieved fraction of peak FLOPs in prefill
    mbu_decode: float = 0.62     # achieved fraction of HBM bandwidth in decode


A100_40GB = GPUSpec(
    name="A100-SXM4-40GB",
    peak_flops=312e12,
    mem_bandwidth=1.555e12,
    mem_capacity=40e9,
    idle_power_w=62.0,
    decode_power_w=272.0,
    prefill_power_w=388.0,
)


@dataclass(frozen=True)
class ClusterSpec:
    """A tensor-parallel group of identical GPUs serving one model replica."""

    gpu: GPUSpec = A100_40GB
    tensor_parallel: int = 1
    # Fraction of GPU memory vLLM may use (its gpu_memory_utilization knob).
    gpu_memory_utilization: float = 0.90
    # Non-weight, non-KV overhead reserved per GPU (activations, CUDA graphs).
    activation_overhead_bytes: float = 2.0e9
    # Fixed per-engine-step overheads (kernel launch, sampling, scheduling);
    # tensor parallelism adds all-reduce latency per step.
    step_overhead_s: float = 0.004
    tp_comm_overhead_s: float = 0.0015
    # Memory-bound decode keeps large TP groups less busy per GPU, which shows
    # up as lower per-GPU power draw (calibrated to the paper's 70B energy).
    tp_power_efficiency: float = 0.62

    @property
    def num_gpus(self) -> int:
        return self.tensor_parallel

    @property
    def total_peak_flops(self) -> float:
        return self.gpu.peak_flops * self.tensor_parallel

    @property
    def total_mem_bandwidth(self) -> float:
        return self.gpu.mem_bandwidth * self.tensor_parallel

    @property
    def step_overhead(self) -> float:
        extra = self.tp_comm_overhead_s if self.tensor_parallel > 1 else 0.0
        return self.step_overhead_s + extra

    def kv_cache_bytes(self, model: ModelSpec) -> float:
        """GPU bytes available for the KV cache after weights and overheads."""
        usable = self.gpu.mem_capacity * self.gpu_memory_utilization * self.tensor_parallel
        reserved = model.weight_bytes + self.activation_overhead_bytes * self.tensor_parallel
        available = usable - reserved
        if available <= 0:
            raise ValueError(
                f"model {model.name} does not fit on {self.tensor_parallel}x {self.gpu.name}"
            )
        return available

    def power_w(self, state: str) -> float:
        """Cluster-wide power draw (all GPUs) for an engine power state."""
        gpu = self.gpu
        if state == "idle":
            per_gpu = gpu.idle_power_w
        elif state == "decode":
            per_gpu = gpu.decode_power_w
        elif state == "prefill":
            per_gpu = gpu.prefill_power_w
        elif state == "draft":
            # Speculative draft passes run on the same GPUs at decode-like
            # (memory-bound) intensity; the draft energy premium comes from
            # the extra dwell *time*, not a distinct power level.
            per_gpu = gpu.decode_power_w
        else:
            raise ValueError(f"unknown power state: {state!r}")
        if state != "idle" and self.tensor_parallel > 1:
            active = per_gpu - gpu.idle_power_w
            per_gpu = gpu.idle_power_w + active * self.tp_power_efficiency
        return per_gpu * self.tensor_parallel


def cluster_for_model(model: ModelSpec) -> ClusterSpec:
    """The paper's default cluster for a given backend model."""
    if model.name == LLAMA_3_1_8B.name:
        return ClusterSpec(gpu=A100_40GB, tensor_parallel=1)
    if model.name == LLAMA_3_1_70B.name:
        return ClusterSpec(gpu=A100_40GB, tensor_parallel=8)
    # Default: smallest TP that fits the weights plus some KV headroom.
    for tp in (1, 2, 4, 8, 16):
        cluster = ClusterSpec(gpu=A100_40GB, tensor_parallel=tp)
        try:
            cluster.kv_cache_bytes(model)
        except ValueError:
            continue
        return cluster
    raise ValueError(f"no cluster configuration fits model {model.name}")
