"""OpenAI-style client facade over the simulated engine.

Agent code never touches the engine directly; it builds a :class:`Prompt`
(labelled token spans) and calls :meth:`LLMClient.generate`, yielding the
returned event inside its simulation process.  The event fires with an
:class:`LLMResult` once the engine finishes the request, exactly like an
``await client.completions.create(...)`` against a real vLLM server.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.llm.engine import LLMEngine
from repro.llm.request import LLMRequest, LLMResult, SamplingParams
from repro.llm.tokenizer import Prompt, SyntheticTokenizer
from repro.sim import Environment, Event


class LLMClient:
    """Thin request-construction layer shared by all agents and workers."""

    def __init__(self, env: Environment, engine: LLMEngine):
        self.env = env
        self.engine = engine
        self.tokenizer: SyntheticTokenizer = engine.tokenizer
        self.calls_issued: int = 0

    @property
    def model_name(self) -> str:
        return self.engine.model.name

    def generate(
        self,
        prompt: Prompt,
        output_tokens: int,
        max_tokens: int = 4096,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> Event:
        """Submit one LLM call; returns the completion event (value: LLMResult)."""
        if len(prompt) == 0:
            raise ValueError("prompt must contain at least one token")
        sampling = SamplingParams(output_tokens=output_tokens, max_tokens=max_tokens)
        request = LLMRequest(
            prompt=prompt,
            sampling=sampling,
            arrival_time=self.env.now,
            metadata=metadata,
        )
        self.calls_issued += 1
        return self.engine.submit(request)

    def generate_many(
        self,
        prompts_and_lengths: list[tuple[Prompt, int]],
        metadata: Optional[Dict[str, Any]] = None,
    ) -> Event:
        """Submit several calls at once (parallel LLM calls, e.g. LATS expansion).

        Returns an event that fires when *all* calls complete, with a dict of
        ``index -> LLMResult``.
        """
        events = [
            self.generate(prompt, output_tokens, metadata=metadata)
            for prompt, output_tokens in prompts_and_lengths
        ]
        return self.env.all_of(events)
