"""Model specifications for the backend LLMs used in the paper.

The paper serves Llama-3.1-8B-Instruct on a single A100-40GB and
Llama-3.1-70B-Instruct on eight A100-40GB GPUs (tensor parallel).  The
performance and memory models only need a handful of architectural numbers:
parameter count, layer/head geometry (for KV-cache sizing) and weight dtype.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ModelSpec:
    """Architecture description of a decoder-only transformer."""

    name: str
    n_params: float
    n_layers: int
    hidden_size: int
    n_heads: int
    n_kv_heads: int
    intermediate_size: int
    vocab_size: int
    max_model_len: int = 32768
    dtype_bytes: int = 2  # bf16 weights and KV cache

    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.n_heads

    @property
    def weight_bytes(self) -> float:
        """Total bytes of model weights."""
        return self.n_params * self.dtype_bytes

    @property
    def kv_bytes_per_token(self) -> float:
        """KV-cache bytes stored per token (keys + values, all layers)."""
        return 2.0 * self.n_layers * self.n_kv_heads * self.head_dim * self.dtype_bytes

    def flops_per_token(self, context_len: float = 0.0) -> float:
        """Approximate forward FLOPs to process one token.

        ``2 * params`` covers the dense matmuls; the attention term grows
        linearly with the context length already resident in the KV cache.
        """
        dense = 2.0 * self.n_params
        attention = 4.0 * self.n_layers * self.hidden_size * max(context_len, 0.0)
        return dense + attention

    def prefill_flops(self, n_new_tokens: int, n_cached_tokens: int = 0) -> float:
        """FLOPs for prefilling ``n_new_tokens`` on top of a cached prefix."""
        if n_new_tokens <= 0:
            return 0.0
        # Average context seen by the new tokens: cached prefix plus half of
        # the new tokens themselves (causal attention).
        avg_context = n_cached_tokens + n_new_tokens / 2.0
        return n_new_tokens * self.flops_per_token(avg_context)


LLAMA_3_1_8B = ModelSpec(
    name="llama-3.1-8b-instruct",
    n_params=8.03e9,
    n_layers=32,
    hidden_size=4096,
    n_heads=32,
    n_kv_heads=8,
    intermediate_size=14336,
    vocab_size=128256,
)

LLAMA_3_1_70B = ModelSpec(
    name="llama-3.1-70b-instruct",
    n_params=70.6e9,
    n_layers=80,
    hidden_size=8192,
    n_heads=64,
    n_kv_heads=8,
    intermediate_size=28672,
    vocab_size=128256,
)

_MODELS = {
    "8b": LLAMA_3_1_8B,
    "70b": LLAMA_3_1_70B,
    LLAMA_3_1_8B.name: LLAMA_3_1_8B,
    LLAMA_3_1_70B.name: LLAMA_3_1_70B,
}


def get_model(name: str) -> ModelSpec:
    """Look up a model spec by short ("8b"/"70b") or full name."""
    key = name.lower()
    if key not in _MODELS:
        raise KeyError(f"unknown model: {name!r} (known: {sorted(_MODELS)})")
    return _MODELS[key]
