"""Multi-turn sessions: conversations whose turns share a growing KV prefix.

The serving stack historically modelled every arrival as a single-shot
request, so the economics the paper cares about -- prefill cost collapsing
on warm prefix-cache hits, admission decisions that respect an in-progress
interaction -- never materialised across a conversation.  This module
introduces the session vocabulary (grounded in fairserve's
``Interaction``/``InteractionStage`` model):

* :class:`SessionSpec` -- the frozen, declarative description of a
  multi-turn conversation shape: ``turns`` per session, ``followup_tokens``
  of fresh user prompt per later turn, and a think-time distribution
  (``think_time_s`` mean, ``think_time`` = ``"exponential"`` or
  ``"constant"``) between a turn's completion and the next turn's arrival.
* :class:`SessionState` -- one live conversation inside the serving driver:
  its identity, its accumulated context (the previous turns' prompt +
  output token spans, i.e. exactly the token sequence the prefix cache
  registered when the previous turn's KV blocks were freed), and per-turn
  accounting.
* :class:`SessionStats` -- the aggregate report attached to
  :class:`~repro.serving.server.ServingResult`: session/turn counts and the
  cross-turn prefix-cache hit rate (cached prompt tokens on turns >= 2
  divided by prompt tokens offered on turns >= 2 -- the fraction of
  conversation re-prefill the cache absorbed).

Sessions attach to :class:`~repro.api.spec.ArrivalSpec` (every class) or
per :class:`~repro.api.spec.WeightedWorkload` (that class only); the
arrival plan is unchanged -- each planned arrival becomes a session's
*first* turn, and later turns re-enter the cluster closed-loop after the
think-time gap.  Think times draw from dedicated per-session substreams,
so sessionless specs remain bit-for-bit identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Mapping, Optional, Tuple

#: Think-time distributions a session may declare.
THINK_TIME_DISTRIBUTIONS: Tuple[str, ...] = ("exponential", "constant")


@dataclass(frozen=True)
class SessionSpec:
    """Declarative description of a multi-turn conversation shape.

    ``turns`` is the number of LLM-serving round trips per session
    (``1`` degenerates to the single-shot model).  Each turn after the
    first carries the full prior conversation (previous prompts + model
    outputs) as a shared prefix plus ``followup_tokens`` of fresh user
    input, and arrives ``think_time_s``-distributed seconds after the
    previous turn completes (``think_time="exponential"`` draws from an
    exponential with that mean; ``"constant"`` waits exactly that long).
    Serialises through ``dataclasses.asdict`` like every other spec type.
    """

    turns: int = 4
    followup_tokens: int = 64
    think_time_s: float = 5.0
    think_time: str = "exponential"

    def __post_init__(self) -> None:
        if self.turns < 1:
            raise ValueError("session turns must be >= 1")
        if self.followup_tokens < 1:
            raise ValueError("session followup_tokens must be >= 1")
        if self.think_time_s < 0:
            raise ValueError("session think_time_s must be >= 0")
        if self.think_time not in THINK_TIME_DISTRIBUTIONS:
            raise ValueError(
                f"session think_time must be one of {THINK_TIME_DISTRIBUTIONS}, "
                f"got {self.think_time!r}"
            )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SessionSpec":
        """Rebuild from a plain-dict form (inverse of ``dataclasses.asdict``)."""
        return cls(**dict(payload))


@dataclass
class SessionState:
    """One live conversation inside the serving driver.

    ``context`` accumulates the token spans of every completed turn
    (prompt spans followed by the turn's output span) -- by construction
    the exact token sequence whose full KV blocks the engine registered in
    its prefix cache when the turn's sequence was freed, so the next
    turn's prompt hits that cache block-for-block on the replica that
    served it.
    """

    session_id: str
    spec: SessionSpec
    task: Any
    label: Optional[str]
    tenant: Any
    #: Accumulated conversation token spans (grows by one turn at a time).
    context: List[Any] = field(default_factory=list)
    #: Turns completed so far.
    turns_done: int = 0

    @property
    def next_turn(self) -> int:
        """1-based index of the turn about to run."""
        return self.turns_done + 1

    @property
    def finished(self) -> bool:
        return self.turns_done >= self.spec.turns


@dataclass
class SessionStats:
    """Aggregate session accounting for one serving run.

    Cross-turn figures cover turns >= 2 only: the first turn of a session
    has no conversation prefix to reuse, so including it would dilute the
    signal the study cares about (how much *re*-prefill the cache absorbs).
    """

    #: Sessions started (first turn admitted).
    num_sessions: int = 0
    #: Sessions whose final turn completed.
    completed_sessions: int = 0
    #: Turns completed across all sessions.
    total_turns: int = 0
    #: Prompt tokens offered on turns >= 2.
    cross_turn_prompt_tokens: int = 0
    #: Prompt tokens served from the prefix cache on turns >= 2.
    cross_turn_cached_tokens: int = 0
    #: Session-affinity invalidations (spill or replica shrink re-pinned
    #: a session away from the replica holding its warm prefix).
    affinity_invalidations: int = 0

    @property
    def cross_turn_hit_rate(self) -> float:
        """Fraction of turn->turn re-prefill served from the prefix cache."""
        if self.cross_turn_prompt_tokens == 0:
            return 0.0
        return self.cross_turn_cached_tokens / self.cross_turn_prompt_tokens

    @property
    def mean_turns_per_session(self) -> float:
        """Turns served per started session (0.0 with no sessions)."""
        if self.num_sessions == 0:
            return 0.0
        return self.total_turns / self.num_sessions

    def as_dict(self) -> dict:
        """Flat dict form for summaries and JSON dumps."""
        return {
            "num_sessions": self.num_sessions,
            "completed_sessions": self.completed_sessions,
            "total_turns": self.total_turns,
            "cross_turn_prompt_tokens": self.cross_turn_prompt_tokens,
            "cross_turn_cached_tokens": self.cross_turn_cached_tokens,
            "cross_turn_hit_rate": self.cross_turn_hit_rate,
            "affinity_invalidations": self.affinity_invalidations,
        }
