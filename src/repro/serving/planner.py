"""Frontier-driven fleet planning.

A :class:`FleetPlanner` turns a hardware-layout study (a
:class:`repro.api.study.StudyResult` whose points vary pool hardware,
replica counts, or traffic shape) into an operating-point decision.  It
evaluates the study's cost/quality Pareto frontier once, then answers the
two questions a capacity planner actually asks:

* :meth:`FleetPlanner.plan_for_budget` -- "I can spend at most X; which
  layout gives the best quality within that?"
* :meth:`FleetPlanner.plan_for_target` -- "I must hold quality Y; which
  layout does that cheapest?"

Both return a :class:`FleetPlan` carrying the selected study point, its
evaluated cost/quality coordinates, and ``pool_targets`` -- the per-pool
replica counts of the winning layout -- ready to hand to a live
:class:`repro.serving.autoscaler.Autoscaler` via
:meth:`Autoscaler.set_planned_target`, so the control loop re-plans as
shaped traffic moves instead of reacting from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # repro.api imports repro.serving; avoid the cycle at runtime
    from repro.api.study import Metric, ParetoPoint, StudyPoint, StudyResult


@dataclass(frozen=True)
class FleetPlan:
    """One selected operating point: the layout to run and why."""

    point: StudyPoint
    cost: float
    quality: float
    #: Axis labels of the winning point (e.g. ``{"fleet": "mixed-h100-l4"}``).
    labels: Dict[str, str] = field(default_factory=dict)
    #: Replica count per pool in the winning layout; single-pool specs map
    #: the implicit pool name ``"default"`` to ``spec.replicas``.
    pool_targets: Dict[str, int] = field(default_factory=dict)

    def describe(self) -> str:
        """A one-line human summary of the plan."""
        layout = ", ".join(f"{k}={v}" for k, v in self.labels.items()) or "base spec"
        pools = ", ".join(f"{name}x{n}" for name, n in self.pool_targets.items())
        return (
            f"plan[{layout}] cost={self.cost:.4g} quality={self.quality:.4g}"
            f" pools({pools})"
        )


def _pool_targets(point: StudyPoint) -> Dict[str, int]:
    spec = point.spec
    if spec.pools:
        return {pool.name: pool.replicas for pool in spec.pools}
    return {"default": spec.replicas}


class FleetPlanner:
    """Select fleet operating points from a study's Pareto frontier.

    ``cost`` and ``quality`` are study metric names (see
    :func:`repro.api.study.resolve_metric`); ``minimize_cost`` /
    ``minimize_quality`` carry the same meaning as in
    :meth:`StudyResult.pareto_frontier`.  The frontier is evaluated once
    and cached; planners are cheap to query repeatedly.
    """

    def __init__(
        self,
        result: StudyResult,
        cost: Metric = "cost_per_1k_tokens",
        quality: Metric = "class_attainment:chat",
        minimize_cost: bool = True,
        minimize_quality: bool = False,
    ) -> None:
        if not result.points:
            raise ValueError("FleetPlanner needs a study with at least one point")
        self.result = result
        self.cost_metric = cost
        self.quality_metric = quality
        self.minimize_cost = minimize_cost
        self.minimize_quality = minimize_quality
        self._frontier: Optional[List[ParetoPoint]] = None

    @property
    def frontier(self) -> List[ParetoPoint]:
        """The cached cost/quality Pareto frontier, sorted by cost."""
        if self._frontier is None:
            self._frontier = self.result.pareto_frontier(
                cost=self.cost_metric,
                quality=self.quality_metric,
                minimize_cost=self.minimize_cost,
                minimize_quality=self.minimize_quality,
            )
        return self._frontier

    def _plan(self, entry: ParetoPoint) -> FleetPlan:
        return FleetPlan(
            point=entry.point,
            cost=entry.cost,
            quality=entry.quality,
            labels=dict(entry.point.labels),
            pool_targets=_pool_targets(entry.point),
        )

    def _quality_key(self, entry: ParetoPoint) -> float:
        return -entry.quality if not self.minimize_quality else entry.quality

    def plan_for_budget(self, cost_budget: float) -> FleetPlan:
        """The best-quality frontier point whose cost fits the budget.

        Falls back to the cheapest frontier point when nothing fits, so
        callers always get an actionable plan (the returned plan's
        ``cost`` tells them the budget was blown).
        """
        sign = 1.0 if self.minimize_cost else -1.0
        affordable = [
            entry for entry in self.frontier if sign * entry.cost <= sign * cost_budget
        ]
        if affordable:
            return self._plan(min(affordable, key=self._quality_key))
        cheapest = min(self.frontier, key=lambda entry: sign * entry.cost)
        return self._plan(cheapest)

    def plan_for_target(self, quality_target: float) -> FleetPlan:
        """The cheapest frontier point meeting the quality target.

        Falls back to the best-quality frontier point when no point meets
        the target -- the closest the studied layouts can get.
        """
        quality_sign = 1.0 if self.minimize_quality else -1.0
        cost_sign = 1.0 if self.minimize_cost else -1.0
        meeting = [
            entry
            for entry in self.frontier
            if quality_sign * entry.quality <= quality_sign * quality_target
        ]
        if meeting:
            return self._plan(min(meeting, key=lambda entry: cost_sign * entry.cost))
        best = min(self.frontier, key=self._quality_key)
        return self._plan(best)

    def apply(self, plan: FleetPlan, autoscalers: Dict[str, "object"]) -> None:
        """Push a plan's per-pool targets into live autoscalers.

        ``autoscalers`` maps pool name to an object exposing
        ``set_planned_target`` (normally
        :class:`repro.serving.autoscaler.Autoscaler`).  Pools the plan
        does not mention are cleared back to purely-reactive control.
        """
        for name, scaler in autoscalers.items():
            scaler.set_planned_target(plan.pool_targets.get(name))
