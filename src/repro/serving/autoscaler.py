"""Elastic-capacity controller: grows/shrinks a replica pool during a run.

The :class:`Autoscaler` is a periodic simulation process watching one
:class:`~repro.serving.cluster.ReplicaPool`.  It runs in one of two modes:

**reactive** (the default, and the historical behaviour, golden-pinned):
every ``check_interval_s`` it evaluates two load signals -- queue depth
(pending requests per provisioned replica) and the rolling p95 of
LLM-request latencies completed within the last ``p95_window_s`` -- and
scales the pool between ``min_replicas`` and ``max_replicas``:

* **up** when queue depth exceeds ``scale_up_pending_per_replica`` or the
  rolling p95 violates ``p95_slo_s`` (when set); the new replica pays for
  capacity immediately but only takes traffic after ``warmup_s`` (cold-start
  cost),
* **down** when queue depth falls below ``scale_down_pending_per_replica``
  and no SLO pressure remains; the drained replica stops accruing
  replica-seconds at once.

**predictive**: instead of waiting for queue pressure, the controller asks
an :class:`~repro.serving.forecast.ArrivalForecaster` for the arrival rate
expected over the next ``horizon_s``, converts it into a decode-token
demand (forecast arrivals x the mean decode tokens recent requests cost,
plus the predictor-estimated backlog already enqueued), divides by the
decode-token rate one active replica has recently sustained, and provisions
the resulting target *now* -- so capacity that needs ``warmup_s`` to boot
is warm when the forecast burst lands.  Hysteresis is in replica space
(scale up when the target exceeds provisioned capacity, down only when it
falls a whole replica below *and* the queue is quiet) and ``cooldown_s``
applies to both directions.  Until the pool has completed enough work to
estimate its service rate, the predictive controller falls back to the
reactive signals (scaling on ignorance would thrash the fleet).

``cooldown_s`` suppresses flapping after either action.  Scaling decisions
are recorded on the pool as :class:`~repro.serving.cluster.ScalingEvent` s,
and the pool's replica-seconds give the cost side of the elasticity
trade-off.  Predictive runs additionally record *scale-ahead lead times*:
for each forecast-triggered grow, the delay until the reactive trigger
(queue pressure) would have fired -- the head start prediction bought.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.core.metrics import percentile
from repro.llm.predictor import DecodeLengthPredictor
from repro.serving.cluster import ReplicaPool
from repro.serving.forecast import ArrivalForecaster
from repro.sim import Environment

#: Autoscaler operating modes.
AUTOSCALER_MODES = ("reactive", "predictive")


def rolling_window_completions(replicas, window_s: float, now: float) -> List:
    """LLM requests completed within the trailing ``window_s`` across replicas.

    ``completed_requests`` is append-ordered by finish time, so the window is
    the tail of each replica's list.  This is the rolling-window load signal
    shared by the :class:`Autoscaler` (p95 of the completions) and SLO-aware
    admission control (recent decode throughput; see
    :class:`repro.serving.admission.ClusterLoadProbe`).
    """
    cutoff = now - window_s
    window: List = []
    for engine in replicas:
        for request in reversed(engine.completed_requests):
            finished = request.timings.finished
            if finished is None or finished < cutoff:
                break
            window.append(request)
    return window


class Autoscaler:
    """Feedback controller that elastically sizes one replica pool."""

    def __init__(
        self,
        env: Environment,
        pool: ReplicaPool,
        min_replicas: int = 1,
        max_replicas: int = 4,
        check_interval_s: float = 2.0,
        warmup_s: float = 5.0,
        cooldown_s: float = 0.0,
        scale_up_pending_per_replica: float = 4.0,
        scale_down_pending_per_replica: float = 1.0,
        p95_slo_s: Optional[float] = None,
        p95_window_s: float = 30.0,
        mode: str = "reactive",
        forecaster: Optional[ArrivalForecaster] = None,
        horizon_s: float = 10.0,
        predictor: Optional[DecodeLengthPredictor] = None,
    ):
        if min_replicas < 1:
            raise ValueError("min_replicas must be >= 1")
        if max_replicas < min_replicas:
            raise ValueError("max_replicas must be >= min_replicas")
        if check_interval_s <= 0:
            raise ValueError("check_interval_s must be > 0")
        if scale_down_pending_per_replica >= scale_up_pending_per_replica:
            raise ValueError("scale-down threshold must be below scale-up threshold")
        if mode not in AUTOSCALER_MODES:
            raise ValueError(
                f"unknown autoscaler mode {mode!r}; known: {list(AUTOSCALER_MODES)}"
            )
        if mode == "predictive" and forecaster is None:
            raise ValueError("predictive autoscaling requires an arrival forecaster")
        if horizon_s <= 0:
            raise ValueError("horizon_s must be > 0")
        self.env = env
        self.pool = pool
        self.mode = mode
        self.forecaster = forecaster
        self.horizon_s = horizon_s
        self.predictor = predictor or DecodeLengthPredictor()
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.check_interval_s = check_interval_s
        self.warmup_s = warmup_s
        self.cooldown_s = cooldown_s
        self.scale_up_pending_per_replica = scale_up_pending_per_replica
        self.scale_down_pending_per_replica = scale_down_pending_per_replica
        self.p95_slo_s = p95_slo_s
        self.p95_window_s = p95_window_s
        self._last_action_time = float("-inf")
        # Planner-derived replica target (see FleetPlanner): the controller
        # grows toward it and refuses to shrink below it.  None (the default)
        # leaves the signal-driven behaviour untouched.
        self.planned_target: Optional[int] = None
        # Forecast-triggered grows whose reactive counterpart has not fired
        # yet: (grow time, pre-grow provisioned count) pairs waiting for the
        # first heartbeat at which the counterfactual reactive trigger fires.
        self._pending_lead_probes: List[Tuple[float, int]] = []
        # (time, num_active) heartbeat samples over the trailing window: the
        # completion window's tokens were produced by the *historical* active
        # counts, so per-replica rate must divide by their mean -- dividing
        # by the instantaneous count would transiently halve the measured
        # rate every time a scale-up lands and overshoot the next target.
        self._active_samples: Deque[Tuple[float, int]] = deque()
        #: Scale-ahead lead times (seconds of head start per predictive grow).
        self.scale_ahead_leads: List[float] = []
        # The heartbeat timeout currently pending; exposed so the serving
        # driver can tell autoscaler heartbeats apart from foreground work
        # when checking run liveness.
        self.sleep_event = None
        self.process = env.process(self._run())

    # -- control loop ---------------------------------------------------------
    def _run(self):
        while True:
            self.sleep_event = self.env.timeout(self.check_interval_s)
            yield self.sleep_event
            self._apply_planned_target()
            if self.mode == "predictive":
                self._evaluate_predictive()
            else:
                self._evaluate()

    # -- planner coupling ------------------------------------------------------
    def set_planned_target(self, target: Optional[int]) -> None:
        """Install a planner-derived replica target (``None`` clears it).

        The controller grows toward the target at its next heartbeat (paying
        ``warmup_s`` as usual) and refuses to shrink below it; signal-driven
        scale-ups *above* the target still apply, so the planner sets the
        floor of the operating point and the load signals handle transients.
        The target is clamped to ``[min_replicas, max_replicas]``.
        """
        if target is None:
            self.planned_target = None
            return
        self.planned_target = max(
            self.min_replicas, min(self.max_replicas, int(target))
        )

    def _above_planned_floor(self, provisioned: int) -> bool:
        """Whether a shrink would keep capacity at or above the planned target."""
        return self.planned_target is None or provisioned > self.planned_target

    def _apply_planned_target(self) -> None:
        """Grow toward the planned target (shrink is handled by the floor)."""
        if self.planned_target is None:
            return
        pool = self.pool
        provisioned = pool.num_provisioned
        if provisioned < self.planned_target:
            reason = f"planned target={self.planned_target}"
            for _ in range(self.planned_target - provisioned):
                pool.grow(warmup_s=self.warmup_s, reason=reason)
            self._last_action_time = self.env.now

    def _evaluate(self) -> None:
        now = self.env.now
        if now - self._last_action_time < self.cooldown_s:
            return
        pool = self.pool
        provisioned = pool.num_provisioned
        pending_per_replica = pool.num_pending_requests / max(provisioned, 1)
        # The rolling-p95 scan is only paid for when an SLO watches it.
        rolling_p95 = 0.0 if self.p95_slo_s is None else self.rolling_p95(now)
        slo_violated = self.p95_slo_s is not None and rolling_p95 > self.p95_slo_s
        if provisioned < self.max_replicas and (
            pending_per_replica > self.scale_up_pending_per_replica or slo_violated
        ):
            reason = (
                f"p95={rolling_p95:.2f}s>SLO"
                if slo_violated
                else f"pending/replica={pending_per_replica:.2f}"
            )
            pool.grow(warmup_s=self.warmup_s, reason=reason)
            self._last_action_time = now
            return
        if (
            pool.num_active > self.min_replicas
            and provisioned > self.min_replicas
            and self._above_planned_floor(provisioned)
            and pending_per_replica < self.scale_down_pending_per_replica
            and not slo_violated
        ):
            pool.shrink(reason=f"pending/replica={pending_per_replica:.2f}")
            self._last_action_time = now

    def _evaluate_predictive(self) -> None:
        now = self.env.now
        self._record_active_sample(now)
        # One rolling-window scan per heartbeat: rate, mean decode length,
        # and the SLO check are all derived from the same completion window.
        window = self.recent_completions(now)
        slo_violated = self.p95_slo_s is not None and (
            percentile(
                [request.timings.e2e_latency for request in window], 95.0
            )
            > self.p95_slo_s
        )
        self._resolve_lead_probes(now, slo_violated)
        if now - self._last_action_time < self.cooldown_s:
            return
        per_replica_rate = self._per_replica_token_rate(window, now)
        if per_replica_rate <= 0.0:
            # Cold start: no service-rate signal yet, so a token-demand target
            # would be division by ignorance.  React to queue pressure instead.
            self._evaluate()
            return
        pool = self.pool
        provisioned = pool.num_provisioned
        forecast_rate = self.forecaster.forecast_rate(now, self.horizon_s)
        mean_tokens = (
            sum(request.num_output_tokens for request in window) / len(window)
            if window
            else 0.0
        )
        target = self._target_replicas(
            per_replica_rate, forecast_rate, mean_tokens
        )
        if target > provisioned:
            # The counterfactual must be judged at the PRE-grow capacity: a
            # reactive fleet would not have these replicas, so its trigger
            # fires against the smaller provisioned count.
            pre_pressure = slo_violated or (
                pool.num_pending_requests / max(provisioned, 1)
                > self.scale_up_pending_per_replica
            )
            reason = f"forecast={forecast_rate:.2f}qps target={target}"
            for _ in range(target - provisioned):
                pool.grow(warmup_s=self.warmup_s, reason=reason)
            self._last_action_time = now
            if not pre_pressure:
                # A genuine scale-ahead: capacity provisioned before queue
                # pressure would have forced the reactive controller's hand.
                self._pending_lead_probes.append((now, provisioned))
            return
        # Hysteresis: scale down only when the target sits a whole replica
        # below provisioned capacity, the queue is actually quiet, AND no SLO
        # pressure remains (matching the reactive controller's refusal to
        # shrink mid-violation), so a noisy forecast cannot flap the fleet
        # around its operating point.
        if (
            target < provisioned
            and not slo_violated
            and pool.num_active > self.min_replicas
            and provisioned > self.min_replicas
            and self._above_planned_floor(provisioned)
            and pool.num_pending_requests / max(provisioned, 1)
            < self.scale_down_pending_per_replica
        ):
            pool.shrink(reason=f"target={target}<provisioned={provisioned}")
            self._last_action_time = now

    def _resolve_lead_probes(self, now: float, slo_violated: bool) -> None:
        """Close lead probes whose reactive counterfactual trigger just fired.

        Each probe remembers the capacity the fleet had *before* its grow:
        the reactive controller would still be at that size, so its queue
        pressure is the current backlog divided by the pre-grow count.
        """
        if not self._pending_lead_probes:
            return
        pending = self.pool.num_pending_requests
        remaining: List[Tuple[float, int]] = []
        for grew_at, provisioned_before in self._pending_lead_probes:
            fired = slo_violated or (
                pending / max(provisioned_before, 1)
                > self.scale_up_pending_per_replica
            )
            if fired:
                self.scale_ahead_leads.append(now - grew_at)
            else:
                remaining.append((grew_at, provisioned_before))
        self._pending_lead_probes = remaining

    # -- load signals ---------------------------------------------------------
    def rolling_p95(self, now: Optional[float] = None) -> float:
        """p95 of LLM-request latencies completed within the rolling window."""
        now = self.env.now if now is None else now
        window = rolling_window_completions(self.pool.replicas, self.p95_window_s, now)
        return percentile([request.timings.e2e_latency for request in window], 95.0)

    def recent_completions(self, now: Optional[float] = None) -> List:
        """Pool requests completed within the trailing ``p95_window_s``."""
        now = self.env.now if now is None else now
        return rolling_window_completions(self.pool.replicas, self.p95_window_s, now)

    def _record_active_sample(self, now: float) -> None:
        self._active_samples.append((now, self.pool.num_active))
        cutoff = now - self.p95_window_s
        while self._active_samples and self._active_samples[0][0] < cutoff:
            self._active_samples.popleft()

    def _mean_active_over_window(self) -> float:
        """Mean active-replica count across the window's heartbeat samples."""
        if not self._active_samples:
            return float(max(self.pool.num_active, 1))
        return sum(count for _, count in self._active_samples) / len(
            self._active_samples
        )

    def _per_replica_token_rate(self, window: List, now: float) -> float:
        if not window:
            return 0.0
        span = min(self.p95_window_s, now) if now > 0 else self.p95_window_s
        if span <= 0:
            return 0.0
        total = sum(request.num_output_tokens for request in window)
        return total / span / max(self._mean_active_over_window(), 1.0)

    def per_replica_token_rate(self, now: float) -> float:
        """Decode tokens/s one active replica recently sustained (0 when cold)."""
        return self._per_replica_token_rate(self.recent_completions(now), now)

    def mean_tokens_per_request(self, now: float) -> float:
        """Mean decode tokens of recently completed pool requests."""
        window = self.recent_completions(now)
        if not window:
            return 0.0
        return sum(request.num_output_tokens for request in window) / len(window)

    def _target_replicas(
        self, per_replica_rate: float, forecast_rate: float, mean_tokens: float
    ) -> int:
        backlog = self.pool.pending_predicted_tokens(self.predictor)
        demand = backlog + forecast_rate * self.horizon_s * mean_tokens
        per_replica_budget = per_replica_rate * self.horizon_s
        target = math.ceil(demand / per_replica_budget) if per_replica_budget > 0 else 0
        return max(self.min_replicas, min(self.max_replicas, target))

    def target_replicas(
        self, now: float, per_replica_rate: float, forecast_rate: float
    ) -> int:
        """Replicas needed to clear backlog + forecast demand within the horizon.

        Demand is measured in decode tokens: the predictor-estimated backlog
        already enqueued on the pool, plus the forecast arrival count over
        ``horizon_s`` priced at the mean decode tokens recent requests cost.
        Dividing by what one replica clears per horizon gives the target,
        clamped to ``[min_replicas, max_replicas]``.
        """
        return self._target_replicas(
            per_replica_rate, forecast_rate, self.mean_tokens_per_request(now)
        )

    def forecast_mae(self, now: Optional[float] = None) -> Optional[float]:
        """Mean absolute forecast-rate error over matured forecasts."""
        if self.forecaster is None:
            return None
        now = self.env.now if now is None else now
        return self.forecaster.mean_absolute_error(now)
