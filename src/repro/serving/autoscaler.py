"""Elastic-capacity controller: grows/shrinks a replica pool during a run.

The :class:`Autoscaler` is a periodic simulation process watching one
:class:`~repro.serving.cluster.ReplicaPool`.  Every ``check_interval_s`` it
evaluates two load signals -- queue depth (pending requests per provisioned
replica) and the rolling p95 of LLM-request latencies completed within the
last ``p95_window_s`` -- and scales the pool between ``min_replicas`` and
``max_replicas``:

* **up** when queue depth exceeds ``scale_up_pending_per_replica`` or the
  rolling p95 violates ``p95_slo_s`` (when set); the new replica pays for
  capacity immediately but only takes traffic after ``warmup_s`` (cold-start
  cost),
* **down** when queue depth falls below ``scale_down_pending_per_replica``
  and no SLO pressure remains; the drained replica stops accruing
  replica-seconds at once.

``cooldown_s`` suppresses flapping after either action.  Scaling decisions
are recorded on the pool as :class:`~repro.serving.cluster.ScalingEvent` s,
and the pool's replica-seconds give the cost side of the elasticity
trade-off.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.metrics import percentile
from repro.serving.cluster import ReplicaPool
from repro.sim import Environment


def rolling_window_completions(replicas, window_s: float, now: float) -> List:
    """LLM requests completed within the trailing ``window_s`` across replicas.

    ``completed_requests`` is append-ordered by finish time, so the window is
    the tail of each replica's list.  This is the rolling-window load signal
    shared by the :class:`Autoscaler` (p95 of the completions) and SLO-aware
    admission control (recent decode throughput; see
    :class:`repro.serving.admission.ClusterLoadProbe`).
    """
    cutoff = now - window_s
    window: List = []
    for engine in replicas:
        for request in reversed(engine.completed_requests):
            finished = request.timings.finished
            if finished is None or finished < cutoff:
                break
            window.append(request)
    return window


class Autoscaler:
    """Feedback controller that elastically sizes one replica pool."""

    def __init__(
        self,
        env: Environment,
        pool: ReplicaPool,
        min_replicas: int = 1,
        max_replicas: int = 4,
        check_interval_s: float = 2.0,
        warmup_s: float = 5.0,
        cooldown_s: float = 0.0,
        scale_up_pending_per_replica: float = 4.0,
        scale_down_pending_per_replica: float = 1.0,
        p95_slo_s: Optional[float] = None,
        p95_window_s: float = 30.0,
    ):
        if min_replicas < 1:
            raise ValueError("min_replicas must be >= 1")
        if max_replicas < min_replicas:
            raise ValueError("max_replicas must be >= min_replicas")
        if check_interval_s <= 0:
            raise ValueError("check_interval_s must be > 0")
        if scale_down_pending_per_replica >= scale_up_pending_per_replica:
            raise ValueError("scale-down threshold must be below scale-up threshold")
        self.env = env
        self.pool = pool
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.check_interval_s = check_interval_s
        self.warmup_s = warmup_s
        self.cooldown_s = cooldown_s
        self.scale_up_pending_per_replica = scale_up_pending_per_replica
        self.scale_down_pending_per_replica = scale_down_pending_per_replica
        self.p95_slo_s = p95_slo_s
        self.p95_window_s = p95_window_s
        self._last_action_time = float("-inf")
        # The heartbeat timeout currently pending; exposed so the serving
        # driver can tell autoscaler heartbeats apart from foreground work
        # when checking run liveness.
        self.sleep_event = None
        self.process = env.process(self._run())

    # -- control loop ---------------------------------------------------------
    def _run(self):
        while True:
            self.sleep_event = self.env.timeout(self.check_interval_s)
            yield self.sleep_event
            self._evaluate()

    def _evaluate(self) -> None:
        now = self.env.now
        if now - self._last_action_time < self.cooldown_s:
            return
        pool = self.pool
        provisioned = pool.num_provisioned
        pending_per_replica = pool.num_pending_requests / max(provisioned, 1)
        # The rolling-p95 scan is only paid for when an SLO watches it.
        rolling_p95 = 0.0 if self.p95_slo_s is None else self.rolling_p95(now)
        slo_violated = self.p95_slo_s is not None and rolling_p95 > self.p95_slo_s
        if provisioned < self.max_replicas and (
            pending_per_replica > self.scale_up_pending_per_replica or slo_violated
        ):
            reason = (
                f"p95={rolling_p95:.2f}s>SLO"
                if slo_violated
                else f"pending/replica={pending_per_replica:.2f}"
            )
            pool.grow(warmup_s=self.warmup_s, reason=reason)
            self._last_action_time = now
            return
        if (
            pool.num_active > self.min_replicas
            and provisioned > self.min_replicas
            and pending_per_replica < self.scale_down_pending_per_replica
            and not slo_violated
        ):
            pool.shrink(reason=f"pending/replica={pending_per_replica:.2f}")
            self._last_action_time = now

    # -- load signals ---------------------------------------------------------
    def rolling_p95(self, now: Optional[float] = None) -> float:
        """p95 of LLM-request latencies completed within the rolling window."""
        now = self.env.now if now is None else now
        window = rolling_window_completions(self.pool.replicas, self.p95_window_s, now)
        return percentile([request.timings.e2e_latency for request in window], 95.0)
