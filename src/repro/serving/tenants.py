"""Multi-tenant population model and per-tenant fairness accounting.

The serving stack historically simulated an anonymous request stream: every
arrival was indistinguishable, so nothing could be said about *who* gets
served under overload.  This module introduces the tenant vocabulary:

* :class:`TenantSpec` -- the frozen, declarative description of a tenant
  population: ``num_users`` simulated users whose per-user request rates
  follow a Zipf law with exponent ``skew`` (rank 1 is the heaviest user),
  grouped into ``num_apps`` applications.
* :class:`Tenant` -- one sampled tenant identity carried per arrival
  (user id, app id, Zipf rank, population size).
* :class:`TenantPopulation` -- the lazy sampler.  Users are *never*
  materialised up front: ranks are drawn by rejection inversion of the
  Zipf(+1/2-shifted) CDF (Hormann & Derflinger), which inverts an analytic
  bound of the rank distribution's CDF in O(1) time and memory per draw,
  so a 1e6-user population costs memory proportional only to the tenants
  actually sampled (the memoised :class:`Tenant` objects), never
  O(population).
* :class:`TenantFairnessStats` -- the per-tenant service report attached to
  serving results: served-token max/min ratio across contending tenants,
  Jain's fairness index, and door throttle rates by population decile.

The population draws from a dedicated :class:`~repro.sim.distributions
.RandomStream` substream, so tenanted plans never perturb arrival times or
task picks and untenanted plans remain bit-for-bit identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.sim.distributions import RandomStream

#: Knuth multiplicative hash constant used to scatter ranks across apps
#: deterministically (seed-independent: the same rank always belongs to the
#: same app, so per-app accounting is stable across runs and seeds).
_APP_HASH = 2654435761
_HASH_MOD = 2**32


@dataclass(frozen=True)
class TenantSpec:
    """Declarative description of a tenant population.

    ``num_users`` simulated users send traffic at Zipf-distributed rates
    with exponent ``skew`` (``0.0`` = uniform; ``~1.2-1.6`` = the heavy
    production-like skew where a handful of whales dominate), grouped into
    ``num_apps`` applications by a deterministic hash of the user's rank.
    Serialises through ``dataclasses.asdict`` like every other spec type.
    """

    num_users: int = 10_000
    skew: float = 1.2
    num_apps: int = 10

    def __post_init__(self) -> None:
        if self.num_users < 1:
            raise ValueError("tenant num_users must be >= 1")
        if self.skew < 0:
            raise ValueError("tenant skew must be >= 0 (0 = uniform)")
        if self.num_apps < 1:
            raise ValueError("tenant num_apps must be >= 1")

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TenantSpec":
        """Rebuild from a plain-dict form (inverse of ``dataclasses.asdict``)."""
        return cls(**dict(payload))


@dataclass(frozen=True)
class Tenant:
    """One sampled tenant identity, carried per arrival.

    ``rank`` is the user's position in the population's Zipf rate order
    (1 = heaviest); ``population`` is the population size, kept so decile
    accounting does not need the spec at reporting time.
    """

    user: str
    app: str
    rank: int
    population: int

    @property
    def decile(self) -> int:
        """Population decile by rank (0 = the hottest 10% of users)."""
        return min(9, (self.rank - 1) * 10 // max(self.population, 1))


class _ZipfRankSampler:
    """Bounded Zipf(``skew``) rank sampler by rejection inversion.

    Hormann & Derflinger's rejection-inversion scheme: draw from the
    analytic inverse of ``H(x) = integral (1+x)^-s`` restricted to
    ``[0.5, N + 0.5]`` and accept with the exact mass ``k^-s``.  O(1)
    memory, a handful of draws per sample regardless of ``N`` -- the
    property that keeps 1e6-user populations lazy.
    """

    def __init__(self, num_users: int, skew: float):
        self.num_users = num_users
        self.skew = skew
        self._h_x1 = self._h_integral(1.5) - 1.0
        self._h_n = self._h_integral(num_users + 0.5)
        self._s = 2.0 - self._h_integral_inverse(self._h_integral(2.5) - self._h(2.0))

    def _h_integral(self, x: float) -> float:
        log_x = math.log(x)
        return _helper((1.0 - self.skew) * log_x) * log_x

    def _h(self, x: float) -> float:
        return math.exp(-self.skew * math.log(x))

    def _h_integral_inverse(self, x: float) -> float:
        t = x * (1.0 - self.skew)
        if t < -1.0:
            t = -1.0  # Numerical guard at the lower domain edge.
        return math.exp(_helper_inverse(t) * x)

    def sample(self, stream: RandomStream) -> int:
        while True:
            u = self._h_n + stream.random() * (self._h_x1 - self._h_n)
            x = self._h_integral_inverse(u)
            k = int(x + 0.5)
            if k < 1:
                k = 1
            elif k > self.num_users:
                k = self.num_users
            if k - x <= self._s or u >= self._h_integral(k + 0.5) - self._h(k):
                return k


def _helper(x: float) -> float:
    """``(exp(x) - 1) / x`` with the removable singularity handled."""
    if abs(x) > 1e-8:
        return math.expm1(x) / x
    return 1.0 + x / 2.0 * (1.0 + x / 3.0 * (1.0 + x / 4.0))


def _helper_inverse(x: float) -> float:
    """``log(1 + x) / x`` with the removable singularity handled."""
    if abs(x) > 1e-8:
        return math.log1p(x) / x
    return 1.0 - x / 2.0 + x * x / 3.0


class TenantPopulation:
    """Lazy sampler over a :class:`TenantSpec`'s user population.

    Memory is O(distinct tenants seen): the only per-user state is the
    memo of :class:`Tenant` objects already handed out, so sampling a few
    hundred arrivals from a million-user population touches a few hundred
    entries.  Sampling is deterministic given the stream it draws from.
    """

    def __init__(self, spec: TenantSpec):
        self.spec = spec
        self._sampler = _ZipfRankSampler(spec.num_users, spec.skew)
        self._seen: Dict[int, Tenant] = {}

    @property
    def distinct_seen(self) -> int:
        """Distinct tenants sampled so far (the memory footprint driver)."""
        return len(self._seen)

    def tenant_for_rank(self, rank: int) -> Tenant:
        tenant = self._seen.get(rank)
        if tenant is None:
            app_index = (rank * _APP_HASH) % _HASH_MOD % self.spec.num_apps
            tenant = Tenant(
                user=f"u{rank}",
                app=f"app{app_index}",
                rank=rank,
                population=self.spec.num_users,
            )
            self._seen[rank] = tenant
        return tenant

    def sample(self, stream: RandomStream) -> Tenant:
        """Draw one arrival's tenant (Zipf-weighted by rank)."""
        return self.tenant_for_rank(self._sampler.sample(stream))


def sample_tenants(
    spec: TenantSpec, count: int, stream: RandomStream
) -> List[Tenant]:
    """``count`` tenant draws from a fresh population on ``stream``."""
    population = TenantPopulation(spec)
    return [population.sample(stream) for _ in range(count)]


# ---------------------------------------------------------------------------
# Per-tenant fairness reporting
# ---------------------------------------------------------------------------


def jain_index(values: Iterable[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)`` (1.0 = fair)."""
    values = list(values)
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(value * value for value in values)
    if squares <= 0.0:
        return 1.0
    return (total * total) / (len(values) * squares)


@dataclass(frozen=True)
class TenantFairnessStats:
    """Per-tenant service accounting for one serving run.

    ``max_min_ratio`` is computed over *contending* tenants -- tenants
    offering at least ``contender_floor`` requests, the ones a fairness
    scheduler can actually equalise (a user who sent one request late in
    the run was not starved, merely brief).  ``inf`` means a contending
    tenant was fully starved within the contended window.  ``jain`` covers
    every offered tenant (zeros included).  Deciles are population deciles
    by Zipf rank: decile 0 is the hottest 10% of users.
    """

    num_tenants: int
    num_contenders: int
    contender_floor: int
    served_tokens_max: float
    served_tokens_min: float
    jain: float
    offered: int
    rejected: int
    decile_offered: Tuple[int, ...] = (0,) * 10
    decile_rejected: Tuple[int, ...] = (0,) * 10

    @property
    def max_min_ratio(self) -> float:
        """Served-token max/min ratio across contending tenants (1.0 = fair)."""
        if self.num_contenders < 2:
            return 1.0
        if self.served_tokens_min <= 0.0:
            return float("inf")
        return self.served_tokens_max / self.served_tokens_min

    @property
    def throttle_rate(self) -> float:
        """Door rejection fraction of all tenanted offers."""
        if self.offered == 0:
            return 0.0
        return self.rejected / self.offered

    def decile_throttle_rates(self) -> Tuple[Optional[float], ...]:
        """Rejected/offered per population decile (``None`` = no offers)."""
        return tuple(
            (rejected / offered) if offered else None
            for offered, rejected in zip(self.decile_offered, self.decile_rejected)
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "num_tenants": self.num_tenants,
            "num_contenders": self.num_contenders,
            "max_min_ratio": self.max_min_ratio,
            "jain": self.jain,
            "offered": self.offered,
            "rejected": self.rejected,
            "throttle_rate": self.throttle_rate,
            "decile_throttle_rates": list(self.decile_throttle_rates()),
        }


def tenant_fairness(
    served_tokens: Mapping[Tenant, float],
    door_counts: Mapping[Tenant, Tuple[int, int]],
    contender_floor: int = 2,
) -> Optional[TenantFairnessStats]:
    """Assemble the fairness report from per-tenant service and door counts.

    ``served_tokens`` maps each tenant to the tokens it was served inside
    the contended window; ``door_counts`` maps tenants to ``(offered,
    rejected)`` door totals.  Tenants appearing in either mapping are
    reported; ``None`` when the run carried no tenant labels at all.
    """
    tenants = set(served_tokens) | set(door_counts)
    if not tenants:
        return None
    floor = max(1, contender_floor)
    offered_total = 0
    rejected_total = 0
    decile_offered = [0] * 10
    decile_rejected = [0] * 10
    contender_served: List[float] = []
    all_served: List[float] = []
    for tenant in tenants:
        offered, rejected = door_counts.get(tenant, (0, 0))
        served = float(served_tokens.get(tenant, 0.0))
        offered_total += offered
        rejected_total += rejected
        decile = tenant.decile
        decile_offered[decile] += offered
        decile_rejected[decile] += rejected
        all_served.append(served)
        if offered >= floor:
            contender_served.append(served)
    return TenantFairnessStats(
        num_tenants=len(tenants),
        num_contenders=len(contender_served),
        contender_floor=floor,
        served_tokens_max=max(contender_served) if contender_served else 0.0,
        served_tokens_min=min(contender_served) if contender_served else 0.0,
        jain=jain_index(all_served),
        offered=offered_total,
        rejected=rejected_total,
        decile_offered=tuple(decile_offered),
        decile_rejected=tuple(decile_rejected),
    )
