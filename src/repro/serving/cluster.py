"""Multi-replica engine cluster with pluggable request routing.

A :class:`Cluster` runs N independent :class:`~repro.llm.engine.LLMEngine`
replicas inside one simulation environment and routes every submitted LLM
request to one of them through a :class:`RouterPolicy` (``round-robin`` |
``least-loaded`` | ``prefix-affinity``).  The cluster duck-types the small
engine surface :class:`~repro.llm.client.LLMClient` depends on (``submit``,
``tokenizer``, ``model``), so agents and workers are oblivious to how many
replicas serve them; with one replica and any router the cluster is
behaviourally identical to a bare engine.

Reporting methods aggregate the per-replica measurements (energy, runtime
breakdown, KV memory, preemptions, prefix-cache hits) so serving experiments
read cluster-level metrics exactly like single-engine ones.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Type

from repro.llm.energy import PowerState
from repro.llm.engine import EngineConfig, LLMEngine
from repro.llm.request import LLMRequest
from repro.registry import PolicyRegistry
from repro.sim import Environment, Event


# ---------------------------------------------------------------------------
# Routing policies
# ---------------------------------------------------------------------------


class RouterPolicy:
    """Picks the replica index that serves the next request."""

    name = "base"

    def select(self, request: LLMRequest, replicas: Sequence[LLMEngine]) -> int:
        raise NotImplementedError


class RoundRobinRouter(RouterPolicy):
    """Cycle through replicas in submission order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def select(self, request: LLMRequest, replicas: Sequence[LLMEngine]) -> int:
        index = self._next % len(replicas)
        self._next += 1
        return index


class LeastLoadedRouter(RouterPolicy):
    """Replica with the fewest in-flight requests (lowest index wins ties)."""

    name = "least-loaded"

    def select(self, request: LLMRequest, replicas: Sequence[LLMEngine]) -> int:
        loads = [engine.num_pending_requests for engine in replicas]
        return loads.index(min(loads))


class PrefixAffinityRouter(RouterPolicy):
    """Cache-aware routing: co-locate shared prefixes, spill on overload.

    Requests whose prompts start with the same leading tokens (the shared
    system/few-shot prefix) prefer the same replica, concentrating
    prefix-cache hits instead of diluting the prefix across every replica's
    cache.  Affinity yields to load: when the preferred replica carries
    ``spill_threshold`` more in-flight requests than the least-loaded one,
    the request spills there instead, so a single hot prefix still scales
    across the cluster.
    """

    name = "prefix-affinity"

    def __init__(self, prefix_tokens: int = 64, spill_threshold: int = 4) -> None:
        self.prefix_tokens = prefix_tokens
        self.spill_threshold = spill_threshold

    def select(self, request: LLMRequest, replicas: Sequence[LLMEngine]) -> int:
        digest = 0
        for token in request.prompt_token_ids[: self.prefix_tokens]:
            digest = (digest * 1000003 + token) % (2**61 - 1)
        preferred = digest % len(replicas)
        loads = [engine.num_pending_requests for engine in replicas]
        least = loads.index(min(loads))
        if loads[preferred] - loads[least] > self.spill_threshold:
            return least
        return preferred


ROUTER_POLICY_REGISTRY = PolicyRegistry("router policy")
#: name -> class mapping (keys are lower-case); kept for membership checks.
ROUTER_POLICIES: Dict[str, Type[RouterPolicy]] = ROUTER_POLICY_REGISTRY.policies


def register_router_policy(router_class: Type[RouterPolicy]) -> Type[RouterPolicy]:
    """Register a router class under its ``name`` (also usable as a decorator)."""
    return ROUTER_POLICY_REGISTRY.register(router_class)


register_router_policy(RoundRobinRouter)
register_router_policy(LeastLoadedRouter)
register_router_policy(PrefixAffinityRouter)


def available_router_policies() -> List[str]:
    return ROUTER_POLICY_REGISTRY.available()


def create_router_policy(name: str) -> RouterPolicy:
    """Instantiate a registered router policy by name."""
    return ROUTER_POLICY_REGISTRY.create(name)


# ---------------------------------------------------------------------------
# Cluster
# ---------------------------------------------------------------------------


class ClusterEnergySnapshot:
    """Per-replica energy snapshots taken at one instant."""

    def __init__(self, snapshots: List[object]):
        self.snapshots = snapshots


class ClusterEnergyWindow:
    """Aggregated energy spent across all replicas since a snapshot."""

    def __init__(self, windows: List[object]):
        self.windows = windows

    @property
    def total_wh(self) -> float:
        return sum(window.total_wh for window in self.windows)

    @property
    def joules_by_state(self) -> Dict[PowerState, float]:
        combined: Dict[PowerState, float] = {}
        for window in self.windows:
            for state, joules in window.joules_by_state.items():
                combined[state] = combined.get(state, 0.0) + joules
        return combined


class Cluster:
    """N engine replicas behind one routing policy.

    Exposes the same ``submit``/``tokenizer``/``model`` surface as a single
    :class:`LLMEngine`, so an :class:`~repro.llm.client.LLMClient` can be
    bound to a cluster transparently.
    """

    def __init__(
        self,
        env: Environment,
        config: EngineConfig,
        num_replicas: int = 1,
        router: "RouterPolicy | str" = "round-robin",
    ):
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        self.env = env
        self.config = config
        self.replicas: List[LLMEngine] = [
            LLMEngine(env, config) for _ in range(num_replicas)
        ]
        self.router: RouterPolicy = (
            create_router_policy(router) if isinstance(router, str) else router
        )
        self.routed_counts: List[int] = [0] * num_replicas

    # -- engine-compatible surface ------------------------------------------
    @property
    def num_replicas(self) -> int:
        return len(self.replicas)

    @property
    def model(self):
        return self.replicas[0].model

    @property
    def tokenizer(self):
        return self.replicas[0].tokenizer

    def submit(self, request: LLMRequest) -> Event:
        """Route ``request`` to a replica; returns its completion event."""
        index = self.router.select(request, self.replicas)
        if not 0 <= index < len(self.replicas):
            raise ValueError(
                f"router {self.router.name!r} picked invalid replica {index}"
            )
        self.routed_counts[index] += 1
        request.metadata.setdefault("replica", index)
        return self.replicas[index].submit(request)

    @property
    def num_pending_requests(self) -> int:
        return sum(engine.num_pending_requests for engine in self.replicas)

    # -- aggregated reporting -------------------------------------------------
    def energy_snapshot(self) -> ClusterEnergySnapshot:
        return ClusterEnergySnapshot([engine.energy.snapshot() for engine in self.replicas])

    def energy_since(self, snapshot: ClusterEnergySnapshot) -> ClusterEnergyWindow:
        return ClusterEnergyWindow(
            [
                engine.energy.since(engine_snapshot)
                for engine, engine_snapshot in zip(self.replicas, snapshot.snapshots)
            ]
        )

    def runtime_breakdown(self, start: float = 0.0, end: Optional[float] = None) -> Dict[str, float]:
        """Summed seconds per step kind across replicas within ``[start, end]``."""
        combined: Dict[str, float] = {"prefill": 0.0, "decode": 0.0, "idle": 0.0}
        for engine in self.replicas:
            for kind, seconds in engine.runtime_breakdown(start, end).items():
                combined[kind] = combined.get(kind, 0.0) + seconds
        return combined

    def kv_memory_stats(self, start: float = 0.0, end: Optional[float] = None) -> Dict[str, float]:
        """Cluster-wide KV footprint: per-replica averages and maxima summed."""
        average = 0.0
        maximum = 0.0
        for engine in self.replicas:
            stats = engine.kv_memory_stats(start, end)
            average += stats["average_bytes"]
            maximum += stats["max_bytes"]
        return {"average_bytes": average, "max_bytes": maximum}

    @property
    def preemption_count(self) -> int:
        return sum(engine.scheduler.preemption_count for engine in self.replicas)

    def prefix_cache_hit_rate(self) -> float:
        """Token-weighted hit rate across every replica's prefix cache."""
        hits = sum(engine.kv_cache.cached_token_hits for engine in self.replicas)
        seen = sum(engine.kv_cache.prompt_tokens_seen for engine in self.replicas)
        if seen == 0:
            return 0.0
        return hits / seen

    @property
    def completed_requests(self) -> List[LLMRequest]:
        finished: List[LLMRequest] = []
        for engine in self.replicas:
            finished.extend(engine.completed_requests)
        return finished
