"""Heterogeneous replica fleet: named pools of engines behind pool-aware routing.

The serving layer is organised as a :class:`Cluster` of named
:class:`ReplicaPool` s.  Each pool owns its replicas (each an independent
:class:`~repro.llm.engine.LLMEngine` with the pool's own
:class:`~repro.llm.engine.EngineConfig` -- so pools may mix model sizes and
scheduler policies), an intra-pool :class:`RouterPolicy` (``round-robin`` |
``least-loaded`` | ``prefix-affinity``), and elastic capacity: pools can grow
(with a warm-up delay before the new replica takes traffic) and shrink
(draining replicas finish their in-flight work but stop receiving new
requests), and account **replica-seconds** for cost reporting.

Cluster-level routing is two-staged: a request is first *classified* to a
pool -- by its ``traffic_class`` metadata tag (stamped by the mixture load
generator) or, failing that, by predicted decode length against the pools'
declared bounds -- and may then *spill* to a less-loaded pool when the
preferred pool is overloaded; inside the chosen pool the pool's router picks
the replica.  With a single pool and any router the cluster is behaviourally
identical to the flat replica list it replaces, so legacy single-pool
experiments reproduce bit-for-bit.

The cluster duck-types the small engine surface
:class:`~repro.llm.client.LLMClient` depends on (``submit``, ``tokenizer``,
``model``), so agents and workers are oblivious to how many pools or
replicas serve them.  Reporting methods aggregate the per-replica
measurements (energy, runtime breakdown, KV memory, preemptions,
prefix-cache hits) across every pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Type

from repro.llm.energy import PowerState
from repro.llm.engine import EngineConfig, LLMEngine
from repro.llm.predictor import DecodeLengthPredictor
from repro.llm.request import LLMRequest
from repro.registry import PolicyRegistry
from repro.sim import Environment, Event


# ---------------------------------------------------------------------------
# Routing policies (intra-pool replica selection)
# ---------------------------------------------------------------------------


class RouterPolicy:
    """Picks the replica index that serves the next request."""

    name = "base"

    def select(self, request: LLMRequest, replicas: Sequence[LLMEngine]) -> int:
        raise NotImplementedError


class RoundRobinRouter(RouterPolicy):
    """Cycle through replicas in submission order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def select(self, request: LLMRequest, replicas: Sequence[LLMEngine]) -> int:
        index = self._next % len(replicas)
        self._next += 1
        return index


class LeastLoadedRouter(RouterPolicy):
    """Replica with the fewest in-flight requests (lowest index wins ties)."""

    name = "least-loaded"

    def select(self, request: LLMRequest, replicas: Sequence[LLMEngine]) -> int:
        loads = [engine.num_pending_requests for engine in replicas]
        return loads.index(min(loads))


class PrefixAffinityRouter(RouterPolicy):
    """Cache-aware routing: co-locate shared prefixes, spill on overload.

    Requests whose prompts start with the same leading tokens (the shared
    system/few-shot prefix) prefer the same replica, concentrating
    prefix-cache hits instead of diluting the prefix across every replica's
    cache.  Affinity yields to load: when the preferred replica carries
    ``spill_threshold`` more in-flight requests than the least-loaded one,
    the request spills there instead, so a single hot prefix still scales
    across the cluster.
    """

    name = "prefix-affinity"

    def __init__(self, prefix_tokens: int = 64, spill_threshold: int = 4) -> None:
        self.prefix_tokens = prefix_tokens
        self.spill_threshold = spill_threshold

    def select(self, request: LLMRequest, replicas: Sequence[LLMEngine]) -> int:
        digest = 0
        for token in request.prompt_token_ids[: self.prefix_tokens]:
            digest = (digest * 1000003 + token) % (2**61 - 1)
        preferred = digest % len(replicas)
        loads = [engine.num_pending_requests for engine in replicas]
        least = loads.index(min(loads))
        if loads[preferred] - loads[least] > self.spill_threshold:
            return least
        return preferred


class SessionAffinityRouter(RouterPolicy):
    """Session-sticky routing: keep a conversation on the replica holding
    its warm prefix.

    Each multi-turn session (identified by the ``session`` metadata tag the
    serving driver stamps on every turn's requests) is pinned to the replica
    that served its first turn, so later turns land on the engine whose
    prefix cache still holds the conversation's KV blocks.  Requests without
    a session tag fall back to least-loaded -- which is also how a session's
    *first* turn picks its home, so concurrent sessions spread across the
    pool instead of concentrating on one replica the way content-hash
    ``prefix-affinity`` does when sessions share a task pool.

    Stickiness yields to load and capacity: when the pinned replica carries
    ``spill_threshold`` more in-flight requests than the least-loaded one,
    or has left the active set (replica shrink), the turn re-pins to the
    least-loaded replica.  Either way the old affinity -- and the cross-turn
    cache hit it promised -- is *invalidated* (counted in
    :attr:`invalidations`): the conversation's blocks live on the old
    replica, so the re-pinned turn pays full re-prefill there.
    """

    name = "session-affinity"

    def __init__(self, spill_threshold: int = 4) -> None:
        self.spill_threshold = spill_threshold
        #: session id -> the engine holding the session's warm prefix.
        self._homes: Dict[str, LLMEngine] = {}
        #: Affinity invalidations (spill or shrink re-pinned a session).
        self.invalidations = 0

    def select(self, request: LLMRequest, replicas: Sequence[LLMEngine]) -> int:
        loads = [engine.num_pending_requests for engine in replicas]
        least = loads.index(min(loads))
        session = request.metadata.get("session") if request.metadata else None
        if session is None:
            return least
        home = self._homes.get(session)
        preferred = -1
        if home is not None:
            for index, engine in enumerate(replicas):
                if engine is home:
                    preferred = index
                    break
        if preferred < 0:
            # First turn, or the home replica was drained out of the active
            # set: (re-)pin to the least-loaded replica.
            if home is not None:
                self.invalidations += 1
            self._homes[session] = replicas[least]
            return least
        if loads[preferred] - loads[least] > self.spill_threshold:
            self.invalidations += 1
            self._homes[session] = replicas[least]
            return least
        return preferred


ROUTER_POLICY_REGISTRY = PolicyRegistry("router policy")
#: name -> class mapping (keys are lower-case); kept for membership checks.
ROUTER_POLICIES: Dict[str, Type[RouterPolicy]] = ROUTER_POLICY_REGISTRY.policies


def register_router_policy(router_class: Type[RouterPolicy]) -> Type[RouterPolicy]:
    """Register a router class under its ``name`` (also usable as a decorator)."""
    return ROUTER_POLICY_REGISTRY.register(router_class)


register_router_policy(RoundRobinRouter)
register_router_policy(LeastLoadedRouter)
register_router_policy(PrefixAffinityRouter)
register_router_policy(SessionAffinityRouter)


def available_router_policies() -> List[str]:
    return ROUTER_POLICY_REGISTRY.available()


def create_router_policy(name: str) -> RouterPolicy:
    """Instantiate a registered router policy by name."""
    return ROUTER_POLICY_REGISTRY.create(name)


# ---------------------------------------------------------------------------
# Replica pools
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScalingEvent:
    """One elastic-capacity action taken on a pool."""

    time: float
    pool: str
    action: str          # "grow" | "shrink"
    num_provisioned: int  # replicas paying for capacity after the action
    reason: str = ""


class ReplicaPool:
    """A named group of identical replicas with elastic capacity.

    Every replica runs the pool's :class:`EngineConfig`; the pool's
    :class:`RouterPolicy` picks among the *active* replicas.  ``grow`` adds
    capacity with a ``warmup_s`` delay before the replica takes traffic
    (replica-seconds accrue from the grow instant -- capacity is paid for
    while it boots); ``shrink`` deactivates a replica, which drains its
    in-flight requests but receives no new ones and stops accruing
    replica-seconds.  Deactivated replicas are reused by later grows.
    """

    def __init__(
        self,
        env: Environment,
        config: EngineConfig,
        name: str = "default",
        num_replicas: int = 1,
        router: "RouterPolicy | str" = "round-robin",
        traffic_classes: Sequence[str] = (),
        max_predicted_decode: Optional[int] = None,
        accepts_spill: bool = True,
    ):
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        self.env = env
        self.name = name
        self.config = config
        self.router: RouterPolicy = (
            create_router_policy(router) if isinstance(router, str) else router
        )
        self.traffic_classes: Tuple[str, ...] = tuple(c.lower() for c in traffic_classes)
        self.max_predicted_decode = max_predicted_decode
        self.accepts_spill = accepts_spill
        # The concrete hardware every replica of this pool runs on (the
        # config's explicit cluster, or the model's default), cached for cost
        # accounting and cost-aware classification.
        self.hardware = config.resolved_cluster()
        #: Roofline decode seconds per token on this pool's hardware.
        self.decode_seconds_per_token = self.hardware.decode_seconds_per_token(
            config.model
        )

        self.replicas: List[LLMEngine] = []
        self.routed_counts: List[int] = []
        self._active: List[bool] = []
        # Per replica: when the current paid-capacity span started (grow or
        # construction time), or None while deactivated.
        self._span_start: List[Optional[float]] = []
        self._accrued_replica_seconds = 0.0
        self.scaling_events: List[ScalingEvent] = []
        self.spilled_in = 0
        self.spilled_out = 0
        # Door-level admission accounting attributed to this pool: requests
        # the admission controller shed instead of enqueueing here, and the
        # estimated decode tokens that shedding avoided.
        self.rejected_requests = 0
        self.shed_tokens = 0.0
        # Warm-up timeouts currently pending (background events for liveness
        # checks, like the autoscaler heartbeat).
        self.activation_timers: List[Event] = []
        # replica index -> simulated time its pending warm-up completes.
        # Cooperative admission reads this to know how much capacity is
        # already in flight and when it lands.
        self.warming_etas: Dict[int, float] = {}
        for _ in range(num_replicas):
            index = self._new_replica()
            self._active[index] = True
            self._span_start[index] = self.env.now

    # -- capacity -------------------------------------------------------------
    def _new_replica(self) -> int:
        self.replicas.append(LLMEngine(self.env, self.config))
        self.routed_counts.append(0)
        self._active.append(False)
        self._span_start.append(None)
        return len(self.replicas) - 1

    @property
    def num_replicas(self) -> int:
        return len(self.replicas)

    @property
    def num_active(self) -> int:
        return sum(self._active)

    @property
    def num_provisioned(self) -> int:
        """Replicas currently paying for capacity (active or warming up)."""
        return sum(1 for start in self._span_start if start is not None)

    def active_indices(self) -> List[int]:
        return [index for index, active in enumerate(self._active) if active]

    def grow(self, warmup_s: float = 0.0, reason: str = "") -> int:
        """Provision one replica; it takes traffic after ``warmup_s``."""
        now = self.env.now
        for index, start in enumerate(self._span_start):
            if start is None:
                break
        else:
            index = self._new_replica()
        self._span_start[index] = now
        if warmup_s > 0:
            self.warming_etas[index] = now + warmup_s
            self.env.process(self._activate_after(index, warmup_s))
        else:
            self._active[index] = True
        self.scaling_events.append(
            ScalingEvent(now, self.name, "grow", self.num_provisioned, reason)
        )
        return index

    def _activate_after(self, index: int, warmup_s: float):
        timer = self.env.timeout(warmup_s)
        self.activation_timers.append(timer)
        yield timer
        self.activation_timers.remove(timer)
        self.warming_etas.pop(index, None)
        if self._span_start[index] is not None:
            self._active[index] = True

    @property
    def num_warming(self) -> int:
        """Replicas provisioned but still inside their warm-up window."""
        return sum(
            1
            for index in self.warming_etas
            if self._span_start[index] is not None
        )

    def warming_replicas_within(self, now: float, horizon_s: float) -> int:
        """In-flight scale-ups whose warm-up completes within the horizon."""
        deadline = now + horizon_s
        return sum(
            1
            for index, eta in self.warming_etas.items()
            if self._span_start[index] is not None and eta <= deadline
        )

    def shrink(self, reason: str = "") -> Optional[int]:
        """Deactivate the active replica with the least in-flight work.

        Refuses to drain the last active replica (returns ``None``): a pool
        must always be able to serve the traffic routed to it.
        """
        candidates = self.active_indices()
        if len(candidates) <= 1:
            return None
        index = min(
            candidates,
            key=lambda i: (self.replicas[i].num_pending_requests, -i),
        )
        now = self.env.now
        self._active[index] = False
        self._accrued_replica_seconds += now - self._span_start[index]
        self._span_start[index] = None
        self.scaling_events.append(
            ScalingEvent(now, self.name, "shrink", self.num_provisioned, reason)
        )
        return index

    def replica_seconds_until(self, now: Optional[float] = None) -> float:
        """Total replica-seconds paid for up to ``now`` (cost accounting)."""
        now = self.env.now if now is None else now
        open_spans = sum(
            now - start for start in self._span_start if start is not None
        )
        return self._accrued_replica_seconds + open_spans

    @property
    def cost_per_hour(self) -> float:
        """USD per replica-hour of this pool's hardware (GPU price x TP)."""
        return self.hardware.cost_per_hour

    def cost_until(self, now: Optional[float] = None) -> float:
        """USD spent on this pool's replica-seconds up to ``now``."""
        return self.replica_seconds_until(now) / 3600.0 * self.cost_per_hour

    # -- load & submission ----------------------------------------------------
    @property
    def num_pending_requests(self) -> int:
        return sum(engine.num_pending_requests for engine in self.replicas)

    @property
    def pending_per_active_replica(self) -> float:
        return self.num_pending_requests / max(self.num_active, 1)

    def pending_predicted_tokens(self, predictor: DecodeLengthPredictor) -> float:
        """Predicted decode tokens enqueued on this pool (waiting + remaining).

        Waiting requests count their full predicted decode; running requests
        count the predicted remainder.  This is the backlog signal SLO-aware
        admission consults before new work is enqueued.
        """
        total = 0.0
        for engine in self.replicas:
            scheduler = engine.scheduler
            for request in scheduler.waiting:
                total += predictor.predict(request)
            for request in scheduler.running:
                total += max(
                    0.0, predictor.predict(request) - request.num_output_tokens
                )
        return total

    def submit(self, request: LLMRequest) -> Event:
        """Route ``request`` to one of the pool's active replicas."""
        indices = self.active_indices()
        if not indices:
            # Unreachable through the public surface (construction activates
            # >= 1 replica and shrink keeps the last one), kept as a guard.
            raise RuntimeError(f"pool {self.name!r} has no active replicas")
        subset = [self.replicas[i] for i in indices]
        pick = self.router.select(request, subset)
        if not 0 <= pick < len(subset):
            raise ValueError(
                f"router {self.router.name!r} picked invalid replica {pick}"
            )
        index = indices[pick]
        self.routed_counts[index] += 1
        request.metadata.setdefault("replica", index)
        request.metadata.setdefault("pool", self.name)
        return self.replicas[index].submit(request)

    # -- reporting -------------------------------------------------------------
    @property
    def preemption_count(self) -> int:
        return sum(engine.scheduler.preemption_count for engine in self.replicas)

    def prefix_cache_hit_rate(self) -> float:
        hits = sum(engine.kv_cache.cached_token_hits for engine in self.replicas)
        seen = sum(engine.kv_cache.prompt_tokens_seen for engine in self.replicas)
        if seen == 0:
            return 0.0
        return hits / seen

    @property
    def completed_requests(self) -> List[LLMRequest]:
        finished: List[LLMRequest] = []
        for engine in self.replicas:
            finished.extend(engine.completed_requests)
        return finished


# ---------------------------------------------------------------------------
# Cluster
# ---------------------------------------------------------------------------


class ClusterEnergySnapshot:
    """Per-engine energy snapshots taken at one instant (keyed by engine id)."""

    def __init__(self, snapshots: Dict[int, object]):
        self.snapshots = snapshots

    def for_engine(self, engine: LLMEngine):
        """Snapshot for ``engine``; an empty baseline for engines born later."""
        snapshot = self.snapshots.get(id(engine))
        if snapshot is None:
            from repro.llm.energy import EnergySnapshot

            snapshot = EnergySnapshot(joules_by_state={}, seconds_by_state={})
        return snapshot


class ClusterEnergyWindow:
    """Aggregated energy spent across all replicas since a snapshot."""

    def __init__(self, windows: List[object]):
        self.windows = windows

    @property
    def total_wh(self) -> float:
        return sum(window.total_wh for window in self.windows)

    @property
    def joules_by_state(self) -> Dict[PowerState, float]:
        combined: Dict[PowerState, float] = {}
        for window in self.windows:
            for state, joules in window.joules_by_state.items():
                combined[state] = combined.get(state, 0.0) + joules
        return combined


class Cluster:
    """Named replica pools behind two-stage (classify, then spill) routing.

    Exposes the same ``submit``/``tokenizer``/``model`` surface as a single
    :class:`LLMEngine`, so an :class:`~repro.llm.client.LLMClient` can be
    bound to a cluster transparently.  The legacy constructor shape --
    ``Cluster(env, config, num_replicas=N, router=...)`` -- builds one
    ``"default"`` pool and behaves exactly like the historical flat replica
    list; pass ``pools=[ReplicaPool(...), ...]`` for a heterogeneous fleet.
    """

    def __init__(
        self,
        env: Environment,
        config: Optional[EngineConfig] = None,
        num_replicas: int = 1,
        router: "RouterPolicy | str" = "round-robin",
        pools: Optional[Sequence[ReplicaPool]] = None,
        predictor: Optional[DecodeLengthPredictor] = None,
        pool_spill_threshold: Optional[float] = 4.0,
        classification: str = "static",
        class_slos: Optional[Dict[str, float]] = None,
        default_slo: Optional[float] = None,
    ):
        if classification not in ("static", "cost-aware"):
            raise ValueError(
                f"unknown pool classification {classification!r}; "
                "known: ['static', 'cost-aware']"
            )
        self.env = env
        if pools:
            names = [pool.name for pool in pools]
            if len(set(names)) != len(names):
                raise ValueError(f"duplicate pool names: {names}")
            self.pools: Dict[str, ReplicaPool] = {pool.name: pool for pool in pools}
        else:
            if config is None:
                raise ValueError("Cluster needs an EngineConfig or explicit pools")
            self.pools = {
                "default": ReplicaPool(
                    env, config, name="default", num_replicas=num_replicas, router=router
                )
            }
        self.predictor = predictor or DecodeLengthPredictor()
        self.pool_spill_threshold = pool_spill_threshold
        self.classification = classification
        #: traffic-class label (lower-cased) -> p95 SLO seconds, for the
        #: cost-aware classifier; ``default_slo`` covers unlabelled classes.
        self.class_slos = {
            str(label).lower(): slo for label, slo in (class_slos or {}).items()
        }
        self.default_slo = default_slo

    # -- pool access ----------------------------------------------------------
    @property
    def default_pool(self) -> ReplicaPool:
        return next(iter(self.pools.values()))

    def pool(self, name: str) -> ReplicaPool:
        if name not in self.pools:
            raise KeyError(f"unknown pool {name!r}; known: {sorted(self.pools)}")
        return self.pools[name]

    @property
    def engines(self) -> Iterator[LLMEngine]:
        for pool in self.pools.values():
            yield from pool.replicas

    # -- engine-compatible surface ------------------------------------------
    @property
    def replicas(self) -> List[LLMEngine]:
        """Every replica across pools (pool declaration order)."""
        return list(self.engines)

    @property
    def routed_counts(self) -> List[int]:
        """Per-replica routed counts, flattened across pools."""
        counts: List[int] = []
        for pool in self.pools.values():
            counts.extend(pool.routed_counts)
        return counts

    @property
    def router(self) -> RouterPolicy:
        return self.default_pool.router

    @property
    def config(self) -> EngineConfig:
        return self.default_pool.config

    @property
    def num_replicas(self) -> int:
        return sum(pool.num_replicas for pool in self.pools.values())

    @property
    def model(self):
        return self.default_pool.replicas[0].model

    @property
    def tokenizer(self):
        return self.default_pool.replicas[0].tokenizer

    @property
    def num_pending_requests(self) -> int:
        return sum(pool.num_pending_requests for pool in self.pools.values())

    @property
    def scaling_events(self) -> List[ScalingEvent]:
        events: List[ScalingEvent] = []
        for pool in self.pools.values():
            events.extend(pool.scaling_events)
        events.sort(key=lambda event: event.time)
        return events

    def replica_seconds_until(self, now: Optional[float] = None) -> float:
        return sum(pool.replica_seconds_until(now) for pool in self.pools.values())

    def pending_predicted_tokens(self) -> float:
        """Fleet-wide enqueued backlog in predicted decode tokens."""
        return sum(
            pool.pending_predicted_tokens(self.predictor)
            for pool in self.pools.values()
        )

    # -- routing --------------------------------------------------------------
    def submit(self, request: LLMRequest) -> Event:
        """Classify ``request`` to a pool (with spill) and route it there."""
        pool = self._classify(request)
        pool = self._maybe_spill(pool, request)
        return pool.submit(request)

    def _classify(self, request: LLMRequest) -> ReplicaPool:
        pools = list(self.pools.values())
        if len(pools) == 1:
            return pools[0]
        if self.classification == "cost-aware":
            pool = self._classify_cost_aware(request, pools)
            if pool is not None:
                return pool
        traffic_class = request.metadata.get("traffic_class")
        if traffic_class:
            key = str(traffic_class).lower()
            for pool in pools:
                if key in pool.traffic_classes:
                    return pool
        bounded = [pool for pool in pools if pool.max_predicted_decode is not None]
        if bounded:
            predicted = self.predictor.predict(request)
            for pool in sorted(bounded, key=lambda p: p.max_predicted_decode):
                if predicted <= pool.max_predicted_decode:
                    return pool
            unbounded = [pool for pool in pools if pool.max_predicted_decode is None]
            if unbounded:
                return unbounded[0]
            return max(bounded, key=lambda p: p.max_predicted_decode)
        return self.default_pool

    def _classify_cost_aware(
        self, request: LLMRequest, pools: List[ReplicaPool]
    ) -> Optional[ReplicaPool]:
        """Cheapest pool whose predicted decode still meets the class SLO.

        Pools are scanned in ascending replica-hour price; a pool qualifies
        when its roofline decode time for the request's predicted decode
        length -- plus its share of the pool's enqueued predicted backlog --
        fits the SLO governing the request's traffic class.  When no pool
        qualifies, the fastest pool is the best effort.  Requests whose class
        has no declared SLO return ``None`` and fall back to static
        classification (spill still runs after either path).
        """
        traffic_class = request.metadata.get("traffic_class")
        slo = None
        if traffic_class:
            slo = self.class_slos.get(str(traffic_class).lower())
        if slo is None:
            slo = self.default_slo
        if slo is None:
            return None
        predicted = self.predictor.predict(request)
        ranked = sorted(pools, key=lambda pool: (pool.cost_per_hour, pool.name))
        for pool in ranked:
            backlog = pool.pending_predicted_tokens(self.predictor)
            queued = backlog / max(pool.num_active, 1)
            if (predicted + queued) * pool.decode_seconds_per_token <= slo:
                return pool
        return min(ranked, key=lambda pool: pool.decode_seconds_per_token)

    def _maybe_spill(self, chosen: ReplicaPool, request: LLMRequest) -> ReplicaPool:
        """Overflow to a less-loaded pool when ``chosen`` is overloaded."""
        if self.pool_spill_threshold is None or len(self.pools) == 1:
            return chosen
        eligible = [
            pool
            for pool in self.pools.values()
            if pool.accepts_spill or pool is chosen
        ]
        if len(eligible) < 2:
            return chosen
        loads = {pool.name: pool.pending_per_active_replica for pool in eligible}
        best = min(eligible, key=lambda pool: loads[pool.name])
        if best is not chosen and loads[chosen.name] - loads[best.name] > self.pool_spill_threshold:
            chosen.spilled_out += 1
            best.spilled_in += 1
            request.metadata.setdefault("spilled_from", chosen.name)
            return best
        return chosen

    # -- aggregated reporting -------------------------------------------------
    def energy_snapshot(self) -> ClusterEnergySnapshot:
        return ClusterEnergySnapshot(
            {id(engine): engine.energy.snapshot() for engine in self.engines}
        )

    def energy_since(self, snapshot: ClusterEnergySnapshot) -> ClusterEnergyWindow:
        return ClusterEnergyWindow(
            [
                engine.energy.since(snapshot.for_engine(engine))
                for engine in self.engines
            ]
        )

    def runtime_breakdown(self, start: float = 0.0, end: Optional[float] = None) -> Dict[str, float]:
        """Summed seconds per step kind across replicas within ``[start, end]``."""
        combined: Dict[str, float] = {
            "prefill": 0.0, "decode": 0.0, "mixed": 0.0, "idle": 0.0
        }
        for engine in self.engines:
            for kind, seconds in engine.runtime_breakdown(start, end).items():
                combined[kind] = combined.get(kind, 0.0) + seconds
        return combined

    def kv_memory_stats(self, start: float = 0.0, end: Optional[float] = None) -> Dict[str, float]:
        """Cluster-wide KV footprint: per-replica averages and maxima summed."""
        average = 0.0
        maximum = 0.0
        for engine in self.engines:
            stats = engine.kv_memory_stats(start, end)
            average += stats["average_bytes"]
            maximum += stats["max_bytes"]
        return {"average_bytes": average, "max_bytes": maximum}

    @property
    def preemption_count(self) -> int:
        return sum(pool.preemption_count for pool in self.pools.values())

    def prefix_cache_hit_rate(self) -> float:
        """Token-weighted hit rate across every replica's prefix cache."""
        hits = sum(engine.kv_cache.cached_token_hits for engine in self.engines)
        seen = sum(engine.kv_cache.prompt_tokens_seen for engine in self.engines)
        if seen == 0:
            return 0.0
        return hits / seen

    @property
    def completed_requests(self) -> List[LLMRequest]:
        finished: List[LLMRequest] = []
        for engine in self.engines:
            finished.extend(engine.completed_requests)
        return finished
