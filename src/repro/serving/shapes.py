"""Rate shapes: the time-varying half of the traffic-program vocabulary.

The paper's datacenter scenario (Table IV) is about *time-varying* mixed
traffic, but constant-rate Poisson arrivals cannot express it.  A
:class:`RateShape` is a dimensionless modulation of an arrival process's
base rate: at simulated time ``t`` the effective arrival rate is
``qps * shape.level(t)``, so a shape composes with any base rate (QPS
sweeps keep sweeping) and any arrival process (Poisson arrivals are
modulated by thinning, deterministic arrivals by rate integration).

Built-in shapes (the registry accepts external ones too):

* :class:`ConstantShape` -- ``level`` everywhere (``level=1.0`` is the
  legacy constant-rate behaviour; ``level=0.0`` is silence, useful as a
  piecewise segment),
* :class:`RampShape` -- linear from ``start_level`` to ``end_level`` over
  ``ramp_s``, holding ``end_level`` afterwards (load migrations, launches),
* :class:`SquareWaveShape` -- ``base_level`` with a ``burst_level`` window
  of ``burst_s`` starting at ``burst_start_s`` in every ``period_s``
  (recurring bursts; one period models a single square burst),
* :class:`DiurnalShape` -- sinusoid ``mean_level + amplitude * sin(...)``
  with ``period_s`` and ``phase_s`` (day/night cycles),
* :class:`TraceShape` -- piecewise-constant replay of a recorded rate
  timeline ``(times, levels)`` (production traces),
* :class:`PiecewiseShape` -- ``(duration_s, shape)`` segments played back
  to back, each on its own local clock; the final segment's shape
  continues past the programmed end.

Every shape is a frozen dataclass: validated on construction, hashable,
serialisable through :meth:`RateShape.to_dict` / :func:`shape_from_dict`
(the ``kind`` field is the registry discriminator), and usable directly as
an :class:`~repro.api.spec.ArrivalSpec` / ``WeightedWorkload`` field.

:func:`deterministic_trace` integrates a shape into deterministic arrival
times (``t += 1 / rate(t)``) -- the synthetic ramp/burst/diurnal traces the
forecaster-accuracy tests pin are generated this way.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple, Type

from repro.registry import PolicyRegistry


class RateShape:
    """A dimensionless, time-varying modulation of an arrival process's rate.

    Subclasses implement :meth:`level` (the multiplier at time ``t``; the
    effective rate is ``qps * level(t)``), :attr:`max_level` (a finite
    upper bound on ``level``, the thinning envelope), and optionally
    :meth:`next_change` (the next step discontinuity after ``t`` --
    ``None`` for continuous shapes; deterministic generators use it to
    skip zero-rate spans without scanning).
    """

    name = "base"

    # -- contract -------------------------------------------------------------
    def level(self, t: float) -> float:
        """Rate multiplier at simulated time ``t`` (>= 0)."""
        raise NotImplementedError

    @property
    def max_level(self) -> float:
        """Finite upper bound on :meth:`level` (the thinning envelope)."""
        raise NotImplementedError

    def next_change(self, t: float) -> Optional[float]:
        """Next step-discontinuity time strictly after ``t`` (``None`` if none)."""
        return None

    def next_positive(self, t: float) -> Optional[float]:
        """Earliest time >= ``t`` at which the level can be positive.

        ``t`` itself when the level is positive there (or vanishes only at
        isolated points, like a diurnal trough -- continuous shapes
        override); otherwise the walk over step discontinuities finds the
        next positive span.  ``None`` means the rate never recovers -- the
        arrival stream is over.  Generators use this to skip zero-rate
        spans without spinning through doomed candidates.
        """
        for _ in range(10_000):
            if self.level(t) > 0:
                return t
            boundary = self.next_change(t)
            if boundary is None or boundary <= t:
                return None
            t = boundary
        return None

    # -- serialisation --------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-ready); inverse of :func:`shape_from_dict`."""
        return asdict(self)  # type: ignore[call-overload]


SHAPE_REGISTRY = PolicyRegistry("rate shape")
#: name -> class mapping (keys are lower-case); kept for membership checks.
RATE_SHAPES: Dict[str, Type[RateShape]] = SHAPE_REGISTRY.policies


def register_shape(shape_class: Type[RateShape]) -> Type[RateShape]:
    """Register a shape under its ``name`` (also usable as a decorator)."""
    return SHAPE_REGISTRY.register(shape_class)


def available_shapes() -> List[str]:
    return SHAPE_REGISTRY.available()


@register_shape
@dataclass(frozen=True)
class ConstantShape(RateShape):
    """The same multiplier everywhere; ``level=1.0`` is the legacy constant rate."""

    name = "constant"

    level_value: float = 1.0
    kind: str = field(default="constant", init=False)

    def __post_init__(self) -> None:
        if self.level_value < 0:
            raise ValueError("constant shape level_value must be >= 0")

    def level(self, t: float) -> float:
        return self.level_value

    @property
    def max_level(self) -> float:
        return self.level_value

    @property
    def is_identity(self) -> bool:
        """True for the multiplier-of-one shape (bit-for-bit legacy arrivals)."""
        return self.level_value == 1.0


@register_shape
@dataclass(frozen=True)
class RampShape(RateShape):
    """Linear ``start_level`` -> ``end_level`` over ``ramp_s``, then hold."""

    name = "ramp"

    start_level: float = 1.0
    end_level: float = 2.0
    ramp_s: float = 60.0
    kind: str = field(default="ramp", init=False)

    def __post_init__(self) -> None:
        if self.start_level < 0 or self.end_level < 0:
            raise ValueError("ramp levels must be >= 0")
        if max(self.start_level, self.end_level) <= 0:
            raise ValueError("ramp must reach a positive level")
        if self.ramp_s <= 0:
            raise ValueError("ramp ramp_s must be > 0")

    def level(self, t: float) -> float:
        if t <= 0:
            return self.start_level
        if t >= self.ramp_s:
            return self.end_level
        return self.start_level + (self.end_level - self.start_level) * t / self.ramp_s

    @property
    def max_level(self) -> float:
        return max(self.start_level, self.end_level)

    def next_positive(self, t: float) -> Optional[float]:
        if self.level(t) > 0:
            return t
        # The ramp is linear: a zero level either rises immediately (zero
        # start, positive end) or has decayed for good (zero end).
        if self.end_level > 0:
            return t
        return None


@register_shape
@dataclass(frozen=True)
class SquareWaveShape(RateShape):
    """``base_level`` with a repeating ``burst_level`` window each period.

    The burst occupies ``[burst_start_s, burst_start_s + burst_s)`` of every
    ``period_s``; a single square burst is one period of the wave (e.g.
    ``period_s=60, burst_start_s=20, burst_s=20`` over a 60 s plan).
    """

    name = "square-wave"

    base_level: float = 1.0
    burst_level: float = 4.0
    period_s: float = 60.0
    burst_start_s: float = 20.0
    burst_s: float = 20.0
    kind: str = field(default="square-wave", init=False)

    def __post_init__(self) -> None:
        if self.base_level < 0 or self.burst_level < 0:
            raise ValueError("square-wave levels must be >= 0")
        if max(self.base_level, self.burst_level) <= 0:
            raise ValueError("square-wave must reach a positive level")
        if self.period_s <= 0:
            raise ValueError("square-wave period_s must be > 0")
        if self.burst_s <= 0:
            raise ValueError("square-wave burst_s must be > 0")
        if self.burst_start_s < 0 or self.burst_start_s + self.burst_s > self.period_s:
            raise ValueError(
                "square-wave burst window must fit inside one period "
                f"([{self.burst_start_s}, {self.burst_start_s + self.burst_s}) "
                f"vs period {self.period_s})"
            )

    def _phase(self, t: float) -> float:
        return t % self.period_s

    def level(self, t: float) -> float:
        phase = self._phase(t)
        if self.burst_start_s <= phase < self.burst_start_s + self.burst_s:
            return self.burst_level
        return self.base_level

    @property
    def max_level(self) -> float:
        return max(self.base_level, self.burst_level)

    def next_change(self, t: float) -> Optional[float]:
        cycle = t - self._phase(t)
        # The next discontinuity is this cycle's burst start or end, or the
        # next cycle's burst start -- the last is always strictly after ``t``.
        return min(
            boundary
            for boundary in (
                cycle + self.burst_start_s,
                cycle + self.burst_start_s + self.burst_s,
                cycle + self.period_s + self.burst_start_s,
            )
            if boundary > t
        )


@register_shape
@dataclass(frozen=True)
class DiurnalShape(RateShape):
    """Sinusoid ``mean_level + amplitude * sin(2π (t + phase_s) / period_s)``.

    ``amplitude <= mean_level`` keeps the rate non-negative everywhere.
    """

    name = "diurnal"

    mean_level: float = 1.0
    amplitude: float = 0.5
    period_s: float = 60.0
    phase_s: float = 0.0
    kind: str = field(default="diurnal", init=False)

    def __post_init__(self) -> None:
        if self.mean_level <= 0:
            raise ValueError("diurnal mean_level must be > 0")
        if not 0 < self.amplitude <= self.mean_level:
            raise ValueError(
                "diurnal amplitude must be in (0, mean_level] "
                "(the rate must stay non-negative)"
            )
        if self.period_s <= 0:
            raise ValueError("diurnal period_s must be > 0")

    def level(self, t: float) -> float:
        return self.mean_level + self.amplitude * math.sin(
            2.0 * math.pi * (t + self.phase_s) / self.period_s
        )

    @property
    def max_level(self) -> float:
        return self.mean_level + self.amplitude

    def next_positive(self, t: float) -> Optional[float]:
        # amplitude <= mean_level keeps the sinusoid non-negative, touching
        # zero only at isolated trough instants -- always recoverable.
        return t


@register_shape
@dataclass(frozen=True)
class TraceShape(RateShape):
    """Piecewise-constant replay of a recorded rate timeline.

    ``levels[i]`` holds on ``[times[i], times[i+1])``; the final level holds
    forever.  ``times`` must start at 0 and increase strictly, so the shape
    is defined on the whole timeline.
    """

    name = "trace"

    times: Tuple[float, ...] = (0.0,)
    levels: Tuple[float, ...] = (1.0,)
    kind: str = field(default="trace", init=False)

    def __post_init__(self) -> None:
        if not isinstance(self.times, tuple):
            object.__setattr__(self, "times", tuple(self.times))
        if not isinstance(self.levels, tuple):
            object.__setattr__(self, "levels", tuple(self.levels))
        if not self.times or len(self.times) != len(self.levels):
            raise ValueError("trace needs matching, non-empty times and levels")
        if self.times[0] != 0.0:
            raise ValueError("trace times must start at 0.0")
        if any(b <= a for a, b in zip(self.times, self.times[1:])):
            raise ValueError("trace times must increase strictly")
        if any(level < 0 for level in self.levels):
            raise ValueError("trace levels must be >= 0")
        if max(self.levels) <= 0:
            raise ValueError("trace must reach a positive level")

    def level(self, t: float) -> float:
        index = bisect.bisect_right(self.times, t) - 1
        return self.levels[max(index, 0)]

    @property
    def max_level(self) -> float:
        return max(self.levels)

    def next_change(self, t: float) -> Optional[float]:
        index = bisect.bisect_right(self.times, t)
        if index >= len(self.times):
            return None
        return self.times[index]


@register_shape
@dataclass(frozen=True)
class PiecewiseShape(RateShape):
    """``(duration_s, shape)`` segments composed back to back.

    Each segment's child shape runs on its own local clock (``t`` relative
    to the segment start); after the final segment ends, the final shape
    keeps running on that local clock.  Zero-rate segments
    (``ConstantShape(level_value=0.0)``) model silences between bursts.
    """

    name = "piecewise"

    segments: Tuple[Tuple[float, RateShape], ...] = ()
    kind: str = field(default="piecewise", init=False)

    def __post_init__(self) -> None:
        if not isinstance(self.segments, tuple) or any(
            not isinstance(entry, tuple) for entry in self.segments
        ):
            object.__setattr__(
                self, "segments", tuple(tuple(entry) for entry in self.segments)
            )
        if not self.segments:
            raise ValueError("piecewise shape needs at least one segment")
        for duration, shape in self.segments:
            if duration <= 0:
                raise ValueError("piecewise segment durations must be > 0")
            if not isinstance(shape, RateShape):
                raise ValueError("piecewise segments must hold RateShape instances")
            if isinstance(shape, PiecewiseShape):
                raise ValueError("piecewise segments cannot nest piecewise shapes")
        if self.max_level <= 0:
            raise ValueError("piecewise shape must reach a positive level")

    def _locate(self, t: float) -> Tuple[RateShape, float, float]:
        """(shape, local time, segment start) covering time ``t``."""
        start = 0.0
        for duration, shape in self.segments[:-1]:
            if t < start + duration:
                return shape, t - start, start
            start += duration
        return self.segments[-1][1], t - start, start

    def level(self, t: float) -> float:
        shape, local, _ = self._locate(max(t, 0.0))
        return shape.level(local)

    @property
    def max_level(self) -> float:
        return max(shape.max_level for _, shape in self.segments)

    @property
    def total_duration_s(self) -> float:
        """Programmed span of the segments (the final shape continues after)."""
        return sum(duration for duration, _ in self.segments)

    def next_change(self, t: float) -> Optional[float]:
        shape, local, start = self._locate(max(t, 0.0))
        child = shape.next_change(local)
        boundaries: List[float] = []
        if child is not None:
            boundaries.append(start + child)
        # Segment boundaries are discontinuities in their own right.
        edge = 0.0
        for duration, _ in self.segments:
            edge += duration
            if edge > t:
                boundaries.append(edge)
                break
        if not boundaries:
            return None
        return min(boundaries)


def shape_from_dict(payload: Dict[str, Any]) -> RateShape:
    """Rebuild a shape from :meth:`RateShape.to_dict` output.

    The ``kind`` key selects the registered class; remaining keys are its
    constructor parameters.  Nested shapes (piecewise segments) are rebuilt
    recursively, and JSON round-trips (tuples decayed to lists) are healed.
    """
    if isinstance(payload, RateShape):
        return payload
    data = dict(payload)
    kind = data.pop("kind", None)
    if kind is None or kind.lower() not in RATE_SHAPES:
        raise ValueError(
            f"unknown rate shape {kind!r}; known: {available_shapes()}"
        )
    shape_class = RATE_SHAPES[kind.lower()]
    if shape_class is PiecewiseShape:
        data["segments"] = tuple(
            (duration, shape_from_dict(sub)) for duration, sub in data.get("segments", ())
        )
    if shape_class is TraceShape:
        data["times"] = tuple(data.get("times", ()))
        data["levels"] = tuple(data.get("levels", ()))
    return shape_class(**data)


def build_shape(name: str, **params: Any) -> RateShape:
    """Instantiate a registered shape by (case-insensitive) name."""
    key = name.lower()
    if key not in RATE_SHAPES:
        raise ValueError(f"unknown rate shape {name!r}; known: {available_shapes()}")
    return RATE_SHAPES[key](**params)


# ---------------------------------------------------------------------------
# Deterministic shaped traces (shared by loadgen and the forecaster tests)
# ---------------------------------------------------------------------------


def iter_deterministic_arrivals(
    shape: RateShape,
    qps: float = 1.0,
    stop_before: Optional[float] = None,
) -> Iterator[float]:
    """Yield deterministic arrival times at instantaneous rate ``qps * level(t)``.

    First-order rate integration: each arrival advances the clock by the
    current inter-arrival gap ``1 / rate(t)``.  Zero-rate spans are skipped
    to the shape's next step discontinuity; a zero-rate span with no
    upcoming discontinuity ends the stream (the rate never recovers).
    ``stop_before`` stops generation once the clock reaches it -- the final
    yielded arrival may land just past it, exactly like the historical
    trace generators -- while ``None`` streams forever (callers truncate).

    This is the single integrator behind both :func:`deterministic_trace`
    (offline traces) and the shaped ``uniform`` arrival plans, so boundary
    and zero-rate semantics cannot drift between them.
    """
    t = 0.0
    while stop_before is None or t < stop_before:
        rate = qps * shape.level(t)
        if rate <= 0:
            boundary = shape.next_change(t)
            if boundary is None or boundary <= t or (
                stop_before is not None and boundary >= stop_before
            ):
                return
            t = boundary
            continue
        t += 1.0 / rate
        yield t


def deterministic_trace(
    shape: RateShape,
    duration_s: float,
    qps: float = 1.0,
    max_arrivals: Optional[int] = None,
) -> List[float]:
    """Deterministic arrival times over ``[0, duration_s]`` (see the iterator).

    The generator the forecaster accuracy tests have always pinned their
    synthetic ramp/burst/diurnal traces on: ``t += 1 / rate(t)`` while the
    clock stays inside the span (the final arrival may land just past it).
    """
    if duration_s <= 0:
        raise ValueError("deterministic_trace duration_s must be > 0")
    if qps <= 0:
        raise ValueError("deterministic_trace qps must be > 0")
    arrivals = iter_deterministic_arrivals(shape, qps, stop_before=duration_s)
    if max_arrivals is None:
        return list(arrivals)
    import itertools

    return list(itertools.islice(arrivals, max_arrivals))
