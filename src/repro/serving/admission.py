"""SLO-aware admission control: pluggable door policies for the serving fleet.

Admission control generalises the historical ``ServingConfig.max_concurrency``
door gate into a policy registry.  A policy sees every request the moment it
arrives at the serving system -- *before* any work is enqueued on a replica
pool -- and answers with one of three decisions:

* ``admit``  -- spawn the request's worker immediately,
* ``delay``  -- hold the request at the door (it is re-offered when capacity
  frees up or, for rate limiting, when the bucket refills),
* ``reject`` -- shed the request: it never runs, and the fleet records the
  rejection and the decode tokens it avoided.

Built-in policies:

* :class:`UnlimitedAdmission` (``unlimited``) -- the open door (legacy
  default; requests are never delayed or rejected),
* :class:`ConcurrencyAdmission` (``concurrency``) -- at most N in-flight
  requests, excess queue at the door.  This reproduces the historical
  ``max_concurrency`` gate event-for-event (golden-pinned in
  ``tests/test_admission.py``),
* :class:`TokenBucketAdmission` (``token-bucket``) -- classic rate + burst
  limiting; the bucket holds ``burst`` tokens and refills continuously at
  ``rate_qps``.  Over-rate requests are delayed until the next token accrues
  (``overload_action="delay"``, the default) or shed outright (``"reject"``),
* :class:`SloShedAdmission` (``slo-shed``) -- deadline-aware shedding: the
  policy projects the p95 latency a newly admitted request would experience
  (rolling window of completed request latencies, the same signal the
  :class:`~repro.serving.autoscaler.Autoscaler` scales on, plus the time to
  drain the fleet's current backlog of
  :class:`~repro.llm.predictor.DecodeLengthPredictor`-predicted decode
  tokens) and sheds work while the projection violates the declared SLO.
  Engagement is hysteretic: shedding starts when the projection exceeds
  ``slo_p95_s * enter_factor`` and stops only once it falls below
  ``slo_p95_s * exit_factor``, so the gate does not flap around the SLO.
  With ``cooperative=True`` the projection additionally credits in-flight
  autoscaler scale-ups landing within the forecast horizon, so the gate
  sheds only when warm replicas cannot catch up in time,
* :class:`OITThrottleAdmission` (``oit-throttle``) -- interaction-aware
  per-tenant throttling: rolling per-user / per-app requests-per-minute
  windows that bite only while the cluster is under KV or queue pressure,
  and never sever an in-progress interaction (a tenant with work already
  in flight is always admitted).

Tenant-aware policies set the ``tenant_aware`` class flag and take the
arrival's :class:`~repro.serving.tenants.Tenant` as an extra argument to
``decide`` / ``admit`` / ``release``; the controller dispatches on the flag
so existing two-argument policies (including externally registered ones)
keep working unchanged.

Policies are consulted per traffic class through the
:class:`AdmissionController`, which owns the per-class policy table and all
accounting (offered/admitted/delayed/rejected counts and shed-token
estimates, also attributed to the replica pool that would have served the
request).  This is how a chat SLO sheds *agent* load: route the agent class
to an ``slo-shed`` policy whose ``protect_class`` is the chat class.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple, Type

from repro.core.metrics import percentile
from repro.registry import PolicyRegistry

#: Decision vocabulary returned by :meth:`AdmissionPolicy.decide`.
ADMIT = "admit"
DELAY = "delay"
REJECT = "reject"

#: Stats key under which requests without a traffic class are accounted.
UNLABELLED = ""


# ---------------------------------------------------------------------------
# Fleet load signals
# ---------------------------------------------------------------------------


class ClusterLoadProbe:
    """Read-only load signals an admission policy may consult.

    The probe is the cluster-layer half of admission control: it exposes the
    backlog currently enqueued across every replica pool (in
    predicted-decode-token terms, via the cluster's shared
    :class:`~repro.llm.predictor.DecodeLengthPredictor`) and the decode
    throughput recently sustained by the fleet, from which a policy can
    project how long newly admitted work would wait.
    """

    def __init__(self, cluster):
        self.cluster = cluster

    def pending_predicted_tokens(self) -> float:
        """Predicted decode tokens enqueued (waiting or mid-decode) fleet-wide."""
        return self.cluster.pending_predicted_tokens()

    def recent_decode_token_rate(self, now: float, window_s: float) -> float:
        """Decode tokens/s completed within the trailing window (0 when idle)."""
        from repro.serving.autoscaler import rolling_window_completions

        completed = rolling_window_completions(
            list(self.cluster.engines), window_s, now
        )
        if not completed:
            return 0.0
        span = min(window_s, now) if now > 0 else window_s
        if span <= 0:
            return 0.0
        return sum(request.num_output_tokens for request in completed) / span

    def backlog_drain_seconds(self, now: float, window_s: float) -> float:
        """Seconds the current backlog needs to drain at the recent decode rate.

        Zero when the fleet has no recent throughput signal (cold start): with
        nothing completed yet there is no basis for a projection, and admission
        should not shed on ignorance.
        """
        rate = self.recent_decode_token_rate(now, window_s)
        if rate <= 0.0:
            return 0.0
        return self.pending_predicted_tokens() / rate

    # -- scale-ahead signals (cooperative admission) -------------------------
    def active_replicas(self) -> int:
        """Replicas currently taking traffic across every pool."""
        return sum(pool.num_active for pool in self.cluster.pools.values())

    def warming_replicas_within(self, now: float, horizon_s: float) -> int:
        """In-flight scale-ups fleet-wide whose warm-up lands within the horizon."""
        return sum(
            pool.warming_replicas_within(now, horizon_s)
            for pool in self.cluster.pools.values()
        )

    def projected_drain_seconds(
        self, now: float, window_s: float, horizon_s: float
    ) -> float:
        """Backlog drain time at the rate the fleet sustains *after* in-flight
        scale-ups land.

        The recently sustained decode rate is credited pro-rata for every
        warming replica whose warm-up completes within ``horizon_s`` -- the
        signal cooperative admission sheds against, so load the autoscaler is
        already absorbing is not shed twice.
        """
        drain = self.backlog_drain_seconds(now, window_s)
        if drain <= 0.0:
            return drain
        active = self.active_replicas()
        landing = self.warming_replicas_within(now, horizon_s)
        if active > 0 and landing > 0:
            drain *= active / (active + landing)
        return drain

    # -- pressure signals (interaction-aware throttling) ---------------------
    def kv_utilization(self) -> float:
        """Highest KV-block occupancy across the fleet's engines (0..1).

        The max, not the mean: one saturated replica is already preempting
        and throttles should react to it even while its siblings are idle.
        """
        utilization = 0.0
        for engine in self.cluster.engines:
            total = engine.kv_cache.allocator.num_blocks
            if total <= 0:
                continue
            utilization = max(utilization, engine.kv_cache.active_blocks() / total)
        return utilization

    def pending_per_active_replica(self) -> float:
        """Requests enqueued fleet-wide per replica currently taking traffic."""
        return self.cluster.num_pending_requests / max(self.active_replicas(), 1)


# ---------------------------------------------------------------------------
# Policies
# ---------------------------------------------------------------------------


class AdmissionPolicy:
    """Decides, per arriving request, whether the fleet takes on the work.

    Lifecycle hooks: :meth:`decide` is called once per offer (and once per
    re-offer of a delayed request); :meth:`admit` / :meth:`release` bracket an
    admitted request's execution (slot accounting); :meth:`observe` sees every
    completion fleet-wide regardless of class (latency telemetry for
    SLO-tracking policies); :meth:`retry_at` tells the driver when a delayed
    request should be re-offered spontaneously (``None`` = only when a
    completion frees capacity).

    Tenant-aware policies set ``tenant_aware = True`` and accept the
    arrival's tenant as a third positional argument to ``decide`` /
    ``admit`` / ``release``; the controller checks the flag before passing
    it, so the base two-argument signature stays valid for every existing
    policy.
    """

    name = "base"
    #: When True, the controller passes the arrival's Tenant to
    #: decide/admit/release as an extra argument.
    tenant_aware = False

    def decide(self, now: float, traffic_class: Optional[str]) -> str:
        raise NotImplementedError

    def admit(self, now: float, traffic_class: Optional[str]) -> None:
        """An offered or re-offered request was admitted (slot bookkeeping)."""

    def release(self, now: float, traffic_class: Optional[str]) -> None:
        """A request this policy admitted finished (slot bookkeeping)."""

    def observe(
        self,
        now: float,
        traffic_class: Optional[str],
        latency: float,
        output_tokens: int,
    ) -> None:
        """A request completed somewhere in the fleet (any traffic class)."""

    def retry_at(self, now: float) -> Optional[float]:
        """Absolute time at which a delayed request should be re-offered."""
        return None


class UnlimitedAdmission(AdmissionPolicy):
    """The open door: every request is admitted immediately (legacy default)."""

    name = "unlimited"

    def decide(self, now: float, traffic_class: Optional[str]) -> str:
        return ADMIT


class ConcurrencyAdmission(AdmissionPolicy):
    """At most ``max_concurrency`` in-flight requests; excess wait at the door.

    Event-for-event identical to the historical enforced
    ``ServingConfig.max_concurrency`` gate: arrivals beyond the cap join a
    FIFO door queue and are admitted, oldest first, as completions free
    slots.
    """

    name = "concurrency"

    def __init__(self, max_concurrency: int):
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        self.max_concurrency = max_concurrency
        self.in_flight = 0

    def decide(self, now: float, traffic_class: Optional[str]) -> str:
        return ADMIT if self.in_flight < self.max_concurrency else DELAY

    def admit(self, now: float, traffic_class: Optional[str]) -> None:
        self.in_flight += 1

    def release(self, now: float, traffic_class: Optional[str]) -> None:
        self.in_flight -= 1


class TokenBucketAdmission(AdmissionPolicy):
    """Rate + burst limiting: ``burst`` tokens, refilled at ``rate_qps``.

    The bucket starts full and refills continuously (lazily, on every
    consultation).  Each admission consumes one token; with the bucket empty
    the request is delayed until the next token accrues
    (``overload_action="delay"``) or shed (``"reject"``).
    """

    name = "token-bucket"

    #: Tolerance below one whole token still counted as admittable; absorbs
    #: the float error of ``now + deficit/rate`` retry arithmetic (without it
    #: a retry could land a hair before the token accrues and re-arm itself
    #: at the same simulated instant forever).
    EPSILON = 1e-9

    def __init__(self, rate_qps: float, burst: int = 1, overload_action: str = "delay"):
        if rate_qps <= 0:
            raise ValueError("token-bucket rate_qps must be > 0")
        if burst < 1:
            raise ValueError("token-bucket burst must be >= 1")
        if overload_action not in (DELAY, REJECT):
            raise ValueError(
                f"token-bucket overload_action must be {DELAY!r} or {REJECT!r}"
            )
        self.rate_qps = rate_qps
        self.burst = burst
        self.overload_action = overload_action
        self.tokens = float(burst)
        self._last_refill = 0.0

    def _refill(self, now: float) -> None:
        if now > self._last_refill:
            self.tokens = min(
                float(self.burst), self.tokens + (now - self._last_refill) * self.rate_qps
            )
            self._last_refill = now

    def decide(self, now: float, traffic_class: Optional[str]) -> str:
        self._refill(now)
        if self.tokens >= 1.0 - self.EPSILON:
            self.tokens = max(0.0, self.tokens - 1.0)
            return ADMIT
        return self.overload_action

    def retry_at(self, now: float) -> Optional[float]:
        """When the next whole token accrues (re-offer time for delays).

        ``None`` in reject mode: an over-rate request is shed on the spot,
        nothing ever waits for a refill.
        """
        if self.overload_action == REJECT:
            return None
        self._refill(now)
        deficit = max(0.0, 1.0 - self.tokens)
        return now + deficit / self.rate_qps


class SloShedAdmission(AdmissionPolicy):
    """Deadline-aware shedding with hysteresis.

    The projection a decision is based on is
    ``rolling_p95 + backlog_drain_seconds``: the p95 of end-to-end latencies
    of requests completed within the trailing ``window_s`` (restricted to
    ``protect_class`` when set -- that is the class whose SLO this gate
    protects), plus the time the fleet needs to drain its current backlog of
    predictor-estimated decode tokens at its recently sustained decode rate.

    Hysteresis: shedding engages when the projection exceeds
    ``slo_p95_s * enter_factor`` and disengages only when it falls below
    ``slo_p95_s * exit_factor`` (``exit_factor <= enter_factor``), recorded
    in :attr:`transitions` as ``(time, shed_active)`` pairs.

    **Cooperative mode** (``cooperative=True``) couples the gate to the
    autoscaler instead of fighting it: the backlog-drain half of the
    projection is priced at the decode rate the fleet will sustain once
    in-flight scale-ups land within ``horizon_s``
    (:meth:`ClusterLoadProbe.projected_drain_seconds`), so the gate sheds
    only when warm replicas cannot catch up in time -- and un-sheds as they
    arrive, because each landing replica both raises the realised decode
    rate and leaves the warming count behind.

    While shedding, requests routed to this policy are rejected
    (``overload_action="reject"``, the default) or held at the door and
    re-offered every ``retry_interval_s`` (``"delay"``, the deprioritising
    variant).
    """

    name = "slo-shed"

    def __init__(
        self,
        slo_p95_s: float,
        window_s: float = 30.0,
        enter_factor: float = 1.0,
        exit_factor: float = 0.8,
        protect_class: Optional[str] = None,
        overload_action: str = "reject",
        load_probe: Optional[ClusterLoadProbe] = None,
        retry_interval_s: Optional[float] = None,
        cooperative: bool = False,
        horizon_s: float = 10.0,
    ):
        if slo_p95_s <= 0:
            raise ValueError("slo-shed slo_p95_s must be > 0")
        if window_s <= 0:
            raise ValueError("slo-shed window_s must be > 0")
        if not 0 < exit_factor <= enter_factor:
            raise ValueError("slo-shed needs 0 < exit_factor <= enter_factor")
        if overload_action not in (DELAY, REJECT):
            raise ValueError(
                f"slo-shed overload_action must be {DELAY!r} or {REJECT!r}"
            )
        if horizon_s <= 0:
            raise ValueError("slo-shed horizon_s must be > 0")
        self.slo_p95_s = slo_p95_s
        self.window_s = window_s
        self.enter_factor = enter_factor
        self.exit_factor = exit_factor
        self.protect_class = protect_class
        self.overload_action = overload_action
        self.load_probe = load_probe
        self.cooperative = cooperative
        self.horizon_s = horizon_s
        self.retry_interval_s = (
            window_s / 4.0 if retry_interval_s is None else retry_interval_s
        )
        self.shed_active = False
        #: (time, shed_active) hysteresis transitions, oldest first.
        self.transitions: List[Tuple[float, bool]] = []
        self._completions: Deque[Tuple[float, float]] = deque()
        # Projection memo for one simulated instant: a burst landing at the
        # same time (or a drain loop re-offering queued requests) pays for
        # the O(backlog) fleet scan once, not once per request.  Invalidated
        # by any completion (which moves both window and backlog).
        self._projection_memo: Optional[Tuple[float, float]] = None

    # -- telemetry ----------------------------------------------------------
    def observe(
        self,
        now: float,
        traffic_class: Optional[str],
        latency: float,
        output_tokens: int,
    ) -> None:
        # Any completion changes both the rolling window and the backlog.
        self._projection_memo = None
        if self.protect_class is not None and traffic_class != self.protect_class:
            return
        self._completions.append((now, latency))

    def rolling_p95(self, now: float) -> float:
        """p95 of protected-class latencies completed within the window."""
        cutoff = now - self.window_s
        while self._completions and self._completions[0][0] < cutoff:
            self._completions.popleft()
        return percentile([latency for _, latency in self._completions], 95.0)

    def projected_p95(self, now: float) -> float:
        """Latency a newly admitted protected request is projected to see.

        Cooperative gates project at the *forecast horizon*: the backlog is
        drained at the decode rate the fleet will sustain once in-flight
        scale-ups land, so capacity already bought is not shed against.
        """
        memo = self._projection_memo
        if memo is not None and memo[0] == now:
            return memo[1]
        projection = self.rolling_p95(now)
        if self.load_probe is not None:
            if self.cooperative:
                projection += self.load_probe.projected_drain_seconds(
                    now, self.window_s, self.horizon_s
                )
            else:
                projection += self.load_probe.backlog_drain_seconds(now, self.window_s)
        self._projection_memo = (now, projection)
        return projection

    # -- decisions ----------------------------------------------------------
    def decide(self, now: float, traffic_class: Optional[str]) -> str:
        projected = self.projected_p95(now)
        if self.shed_active:
            if projected <= self.slo_p95_s * self.exit_factor:
                self.shed_active = False
                self.transitions.append((now, False))
        elif projected > self.slo_p95_s * self.enter_factor:
            self.shed_active = True
            self.transitions.append((now, True))
        if self.shed_active:
            return self.overload_action
        return ADMIT

    def retry_at(self, now: float) -> Optional[float]:
        if self.overload_action != DELAY:
            return None
        return now + self.retry_interval_s


class OITThrottleAdmission(AdmissionPolicy):
    """Interaction-aware per-tenant overload throttling (``oit-throttle``).

    Two rolling admission windows -- per user (``user_rpm``) and per app
    (``app_rpm``), each a requests-per-minute allowance pro-rated over
    ``window_s`` -- guard the door, but only while the cluster is actually
    under pressure: KV-block utilisation at or above ``kv_threshold`` on any
    engine, or the fleet's pending queue at or above ``queue_threshold``
    requests per active replica (both read through the shared
    :class:`ClusterLoadProbe`; with no probe the throttle never bites).
    Off-pressure, heavy tenants run free -- the point of throttling on
    *interaction* state rather than rate alone.

    Interaction protection: a tenant with a request already in flight is
    always admitted, whatever its windows say, so a multi-request
    interaction that started before the overload is never severed halfway.
    Untenanted arrivals are always admitted (there is nobody to attribute
    them to).

    Over-allowance requests are shed (``overload_action="reject"``, the
    default) or held at the door and re-offered every ``retry_interval_s``
    (``"delay"``).
    """

    name = "oit-throttle"
    tenant_aware = True

    def __init__(
        self,
        user_rpm: Optional[float] = 60.0,
        app_rpm: Optional[float] = None,
        window_s: float = 60.0,
        kv_threshold: float = 0.85,
        queue_threshold: float = 4.0,
        overload_action: str = "reject",
        load_probe: Optional[ClusterLoadProbe] = None,
        retry_interval_s: Optional[float] = None,
    ):
        if user_rpm is None and app_rpm is None:
            raise ValueError("oit-throttle needs user_rpm and/or app_rpm")
        if user_rpm is not None and user_rpm <= 0:
            raise ValueError("oit-throttle user_rpm must be > 0 (or None)")
        if app_rpm is not None and app_rpm <= 0:
            raise ValueError("oit-throttle app_rpm must be > 0 (or None)")
        if window_s <= 0:
            raise ValueError("oit-throttle window_s must be > 0")
        if not 0 < kv_threshold <= 1:
            raise ValueError("oit-throttle kv_threshold must be in (0, 1]")
        if queue_threshold <= 0:
            raise ValueError("oit-throttle queue_threshold must be > 0")
        if overload_action not in (DELAY, REJECT):
            raise ValueError(
                f"oit-throttle overload_action must be {DELAY!r} or {REJECT!r}"
            )
        self.user_rpm = user_rpm
        self.app_rpm = app_rpm
        self.window_s = window_s
        self.kv_threshold = kv_threshold
        self.queue_threshold = queue_threshold
        self.overload_action = overload_action
        self.load_probe = load_probe
        self.retry_interval_s = (
            window_s / 4.0 if retry_interval_s is None else retry_interval_s
        )
        #: Admission timestamps per user / app key (pruned to the window).
        self._user_windows: Dict[str, Deque[float]] = {}
        self._app_windows: Dict[str, Deque[float]] = {}
        #: In-flight request count per user (the interaction signal).
        self._in_flight: Dict[str, int] = {}
        #: Throttle decisions taken (telemetry).
        self.throttled = 0

    # -- signals -------------------------------------------------------------
    def under_pressure(self, now: float) -> bool:
        """True while the cluster justifies throttling anyone at all."""
        probe = self.load_probe
        if probe is None:
            return False
        if probe.kv_utilization() >= self.kv_threshold:
            return True
        return probe.pending_per_active_replica() >= self.queue_threshold

    def _allowance(self, rpm: float) -> int:
        """Admissions permitted inside one rolling window (at least one)."""
        return max(1, int(rpm * self.window_s / 60.0))

    def _window_full(
        self, windows: Dict[str, Deque[float]], key: str, now: float, rpm: float
    ) -> bool:
        window = windows.get(key)
        if window is None:
            return False
        cutoff = now - self.window_s
        while window and window[0] <= cutoff:
            window.popleft()
        return len(window) >= self._allowance(rpm)

    # -- decisions -----------------------------------------------------------
    def decide(self, now: float, traffic_class: Optional[str], tenant=None) -> str:
        if tenant is None:
            return ADMIT
        if self._in_flight.get(tenant.user, 0) > 0:
            # Never sever an in-progress interaction.
            return ADMIT
        if not self.under_pressure(now):
            return ADMIT
        over_user = self.user_rpm is not None and self._window_full(
            self._user_windows, tenant.user, now, self.user_rpm
        )
        over_app = self.app_rpm is not None and self._window_full(
            self._app_windows, tenant.app, now, self.app_rpm
        )
        if over_user or over_app:
            self.throttled += 1
            return self.overload_action
        return ADMIT

    def admit(self, now: float, traffic_class: Optional[str], tenant=None) -> None:
        if tenant is None:
            return
        self._user_windows.setdefault(tenant.user, deque()).append(now)
        self._app_windows.setdefault(tenant.app, deque()).append(now)
        self._in_flight[tenant.user] = self._in_flight.get(tenant.user, 0) + 1

    def release(self, now: float, traffic_class: Optional[str], tenant=None) -> None:
        if tenant is None:
            return
        remaining = self._in_flight.get(tenant.user, 0) - 1
        if remaining > 0:
            self._in_flight[tenant.user] = remaining
        else:
            self._in_flight.pop(tenant.user, None)

    def retry_at(self, now: float) -> Optional[float]:
        if self.overload_action != DELAY:
            return None
        return now + self.retry_interval_s


ADMISSION_POLICY_REGISTRY = PolicyRegistry("admission policy")
#: name -> class mapping (keys are lower-case); kept for membership checks.
ADMISSION_POLICIES: Dict[str, Type[AdmissionPolicy]] = ADMISSION_POLICY_REGISTRY.policies


def register_admission_policy(
    policy_class: Type[AdmissionPolicy],
) -> Type[AdmissionPolicy]:
    """Register a policy class under its ``name`` (also usable as a decorator)."""
    return ADMISSION_POLICY_REGISTRY.register(policy_class)


register_admission_policy(UnlimitedAdmission)
register_admission_policy(ConcurrencyAdmission)
register_admission_policy(TokenBucketAdmission)
register_admission_policy(SloShedAdmission)
register_admission_policy(OITThrottleAdmission)


def available_admission_policies() -> List[str]:
    return ADMISSION_POLICY_REGISTRY.available()


def build_admission_policy(
    name: str,
    *,
    max_concurrency: Optional[int] = None,
    rate_qps: Optional[float] = None,
    burst: int = 1,
    overload_action: str = "",
    slo_p95_s: Optional[float] = None,
    window_s: float = 30.0,
    enter_factor: float = 1.0,
    exit_factor: float = 0.8,
    protect_class: Optional[str] = None,
    load_probe: Optional[ClusterLoadProbe] = None,
    cooperative: bool = False,
    horizon_s: float = 10.0,
    user_rpm: Optional[float] = None,
    app_rpm: Optional[float] = None,
    kv_threshold: float = 0.85,
    queue_threshold: float = 4.0,
) -> AdmissionPolicy:
    """Instantiate a registered admission policy from declarative parameters.

    ``overload_action=""`` picks the policy's default (token-bucket delays,
    slo-shed rejects).  Raises :class:`ValueError` for unknown names or
    missing required parameters.
    """
    key = name.lower()
    if key not in ADMISSION_POLICIES:
        raise ValueError(
            f"unknown admission policy {name!r}; known: {available_admission_policies()}"
        )
    if key == "unlimited":
        return UnlimitedAdmission()
    if key == "concurrency":
        if max_concurrency is None:
            raise ValueError("admission policy 'concurrency' requires max_concurrency")
        return ConcurrencyAdmission(max_concurrency)
    if key == "token-bucket":
        if rate_qps is None:
            raise ValueError("admission policy 'token-bucket' requires rate_qps")
        return TokenBucketAdmission(rate_qps, burst, overload_action or DELAY)
    if key == "slo-shed":
        if slo_p95_s is None:
            raise ValueError(
                "admission policy 'slo-shed' requires an SLO (slo_p95_s on the "
                "admission spec, or one declared in MeasurementSpec)"
            )
        return SloShedAdmission(
            slo_p95_s,
            window_s=window_s,
            enter_factor=enter_factor,
            exit_factor=exit_factor,
            protect_class=protect_class,
            overload_action=overload_action or REJECT,
            load_probe=load_probe,
            cooperative=cooperative,
            horizon_s=horizon_s,
        )
    if key == "oit-throttle":
        return OITThrottleAdmission(
            # A spec leaving both unset gets the per-user default allowance.
            user_rpm=user_rpm if (user_rpm is not None or app_rpm is not None) else 60.0,
            app_rpm=app_rpm,
            window_s=window_s,
            kv_threshold=kv_threshold,
            queue_threshold=queue_threshold,
            overload_action=overload_action or REJECT,
            load_probe=load_probe,
        )
    # Externally registered policies are built with their default
    # constructor; parameterise them by registering a pre-configured class.
    return ADMISSION_POLICY_REGISTRY.create(name)


# ---------------------------------------------------------------------------
# Controller: per-class policy table + accounting
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ClassAdmissionStats:
    """Door-level accounting for one traffic class over a serving run."""

    label: str
    offered: int
    admitted: int
    delayed: int
    rejected: int
    shed_tokens: float

    @property
    def rejection_rate(self) -> float:
        if self.offered == 0:
            return 0.0
        return self.rejected / self.offered

    def as_dict(self) -> Dict[str, object]:
        return {
            "class": self.label or "(all)",
            "offered": self.offered,
            "admitted": self.admitted,
            "delayed": self.delayed,
            "rejected": self.rejected,
            "rejection_rate": self.rejection_rate,
            "shed_tokens": self.shed_tokens,
        }


class _Counts:
    __slots__ = (
        "offered",
        "admitted",
        "delayed",
        "rejected",
        "completed",
        "output_tokens",
    )

    def __init__(self) -> None:
        self.offered = 0
        self.admitted = 0
        self.delayed = 0
        self.rejected = 0
        self.completed = 0
        self.output_tokens = 0


class AdmissionController:
    """Routes door decisions to per-traffic-class policies and keeps the books.

    ``class_policies`` maps traffic-class labels to policy instances; classes
    without an entry use ``default_policy``.  ``class_pools`` maps labels to
    the :class:`~repro.serving.cluster.ReplicaPool` that would have served the
    class, so rejections and shed tokens are also attributed per pool
    (``default_pool`` catches unmapped classes).

    Shed-token estimates: a rejected request never runs, so the decode tokens
    it would have cost are estimated from the mean output tokens of completed
    requests of the same class (falling back to the all-class mean).  The
    estimate is computed lazily -- at reporting time, from the whole run's
    completions -- so requests shed before the first completion are still
    priced.
    """

    def __init__(
        self,
        default_policy: AdmissionPolicy,
        class_policies: Optional[Dict[str, AdmissionPolicy]] = None,
        class_pools: Optional[Dict[str, object]] = None,
        default_pool: Optional[object] = None,
    ):
        self.default_policy = default_policy
        self.class_policies = dict(class_policies or {})
        self.class_pools = dict(class_pools or {})
        self.default_pool = default_pool
        self._counts: Dict[str, _Counts] = {}
        # Per-tenant [offered, rejected] door totals (Tenant is frozen and
        # hashable); feeds the per-run fairness report.
        self._tenant_counts: Dict[object, List[int]] = {}
        # Per-pool rejection labels of the current run (lazy shed pricing):
        # id(pool) -> (pool, {label: rejections}); base = shed_tokens carried
        # over from previous runs on the same system.
        self._pool_rejections: Dict[int, Tuple[object, Dict[str, int]]] = {}
        self._pool_shed_base: Dict[int, float] = {}
        # Unique policy instances, default first (observation fan-out order).
        self.policies: List[AdmissionPolicy] = [default_policy]
        for policy in self.class_policies.values():
            if all(policy is not seen for seen in self.policies):
                self.policies.append(policy)

    # -- lookup -------------------------------------------------------------
    def policy_for(self, traffic_class: Optional[str]) -> AdmissionPolicy:
        if traffic_class is not None and traffic_class in self.class_policies:
            return self.class_policies[traffic_class]
        return self.default_policy

    def _counts_for(self, traffic_class: Optional[str]) -> _Counts:
        key = UNLABELLED if traffic_class is None else traffic_class
        counts = self._counts.get(key)
        if counts is None:
            counts = self._counts[key] = _Counts()
        return counts

    def _pool_for(self, traffic_class: Optional[str]):
        # Pool traffic-class declarations are normalised to lower case by
        # ReplicaPool, so attribute rejections case-insensitively.
        if traffic_class is not None and traffic_class.lower() in self.class_pools:
            return self.class_pools[traffic_class.lower()]
        return self.default_pool

    # -- tenant-aware dispatch ----------------------------------------------
    @staticmethod
    def _decide(policy: AdmissionPolicy, now, traffic_class, tenant) -> str:
        if getattr(policy, "tenant_aware", False):
            return policy.decide(now, traffic_class, tenant)
        return policy.decide(now, traffic_class)

    @staticmethod
    def _admit(policy: AdmissionPolicy, now, traffic_class, tenant) -> None:
        if getattr(policy, "tenant_aware", False):
            policy.admit(now, traffic_class, tenant)
        else:
            policy.admit(now, traffic_class)

    @staticmethod
    def _release(policy: AdmissionPolicy, now, traffic_class, tenant) -> None:
        if getattr(policy, "tenant_aware", False):
            policy.release(now, traffic_class, tenant)
        else:
            policy.release(now, traffic_class)

    def _tenant_counts_for(self, tenant) -> Optional[List[int]]:
        if tenant is None:
            return None
        counts = self._tenant_counts.get(tenant)
        if counts is None:
            counts = self._tenant_counts[tenant] = [0, 0]
        return counts

    def tenant_counts(self) -> Dict[object, Tuple[int, int]]:
        """Per-tenant ``(offered, rejected)`` door totals for this run."""
        return {
            tenant: (offered, rejected)
            for tenant, (offered, rejected) in self._tenant_counts.items()
        }

    # -- decisions ----------------------------------------------------------
    def offer(
        self, now: float, traffic_class: Optional[str], tenant=None
    ) -> str:
        """First consultation for an arriving request; counts it as offered."""
        counts = self._counts_for(traffic_class)
        counts.offered += 1
        tenant_counts = self._tenant_counts_for(tenant)
        if tenant_counts is not None:
            tenant_counts[0] += 1
        policy = self.policy_for(traffic_class)
        decision = self._decide(policy, now, traffic_class, tenant)
        if decision == ADMIT:
            counts.admitted += 1
            self._admit(policy, now, traffic_class, tenant)
        elif decision == DELAY:
            counts.delayed += 1
        else:
            self._record_rejection(traffic_class, counts, tenant)
        return decision

    def readmit(
        self, now: float, traffic_class: Optional[str], tenant=None
    ) -> str:
        """Re-offer a request already waiting at the door (no offered count)."""
        counts = self._counts_for(traffic_class)
        policy = self.policy_for(traffic_class)
        decision = self._decide(policy, now, traffic_class, tenant)
        if decision == ADMIT:
            counts.admitted += 1
            self._admit(policy, now, traffic_class, tenant)
        elif decision == REJECT:
            self._record_rejection(traffic_class, counts, tenant)
        return decision

    def _record_rejection(
        self, traffic_class: Optional[str], counts: _Counts, tenant=None
    ) -> None:
        counts.rejected += 1
        tenant_counts = self._tenant_counts_for(tenant)
        if tenant_counts is not None:
            tenant_counts[1] += 1
        pool = self._pool_for(traffic_class)
        if pool is not None:
            pool.rejected_requests += 1
            key = id(pool)
            entry = self._pool_rejections.get(key)
            if entry is None:
                entry = self._pool_rejections[key] = (pool, {})
                self._pool_shed_base.setdefault(key, pool.shed_tokens)
            label = UNLABELLED if traffic_class is None else traffic_class
            entry[1][label] = entry[1].get(label, 0) + 1

    def on_complete(
        self,
        now: float,
        traffic_class: Optional[str],
        latency: float,
        output_tokens: int,
        tenant=None,
    ) -> None:
        """A worker finished: free its slot and feed latency telemetry."""
        counts = self._counts_for(traffic_class)
        counts.completed += 1
        counts.output_tokens += output_tokens
        self._release(self.policy_for(traffic_class), now, traffic_class, tenant)
        for policy in self.policies:
            policy.observe(now, traffic_class, latency, output_tokens)

    def on_turn_complete(
        self,
        now: float,
        traffic_class: Optional[str],
        latency: float,
        output_tokens: int,
        tenant=None,
    ) -> None:
        """A non-final session turn finished: telemetry only, no release.

        A multi-turn session is *one* interaction at the door: it is offered
        (and counted, and slot-accounted) exactly once, at its first turn,
        and its slot -- including ``oit-throttle``'s per-user in-flight
        protection -- is held across every think-time gap until the final
        turn completes through :meth:`on_complete`.  Later turns therefore
        never consult :meth:`AdmissionPolicy.decide` and can never be
        delayed or rejected: no policy can sever a conversation mid-way.
        Turn latencies still feed :meth:`AdmissionPolicy.observe` so
        SLO-tracking policies see every completion.
        """
        counts = self._counts_for(traffic_class)
        counts.completed += 1
        counts.output_tokens += output_tokens
        for policy in self.policies:
            policy.observe(now, traffic_class, latency, output_tokens)

    # -- estimates & reporting ----------------------------------------------
    def estimated_task_tokens(self, traffic_class: Optional[str]) -> float:
        """Mean output tokens of completed same-class requests (see class doc)."""
        counts = self._counts.get(
            UNLABELLED if traffic_class is None else traffic_class
        )
        if counts is not None and counts.completed > 0:
            return counts.output_tokens / counts.completed
        completed = sum(c.completed for c in self._counts.values())
        if completed > 0:
            tokens = sum(c.output_tokens for c in self._counts.values())
            return tokens / completed
        return 0.0

    @property
    def total_rejected(self) -> int:
        return sum(counts.rejected for counts in self._counts.values())

    def finalize_shed_estimates(self) -> None:
        """Price each pool's rejections at the run's final class token means.

        Idempotent: recomputes ``pool.shed_tokens`` from the base carried
        into this run plus the current estimates.
        """
        for key, (pool, by_label) in self._pool_rejections.items():
            base = self._pool_shed_base.get(key, 0.0)
            pool.shed_tokens = base + sum(
                count * self.estimated_task_tokens(label or None)
                for label, count in by_label.items()
            )

    def class_stats(self) -> Dict[str, ClassAdmissionStats]:
        """Frozen per-class snapshot of the door accounting."""
        return {
            label: ClassAdmissionStats(
                label=label,
                offered=counts.offered,
                admitted=counts.admitted,
                delayed=counts.delayed,
                rejected=counts.rejected,
                shed_tokens=counts.rejected
                * self.estimated_task_tokens(label or None),
            )
            for label, counts in self._counts.items()
        }

    def reset_counts(self) -> None:
        """Clear per-run accounting (policy state -- buckets, windows -- persists)."""
        self._counts.clear()
        self._tenant_counts.clear()
        self._pool_rejections.clear()
        self._pool_shed_base.clear()
