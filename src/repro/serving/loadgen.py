"""Load generation for the agent serving experiments (paper Section IV-C).

The paper drives its serving system with requests sampled uniformly from the
benchmark and arriving according to a Poisson process at a target QPS; this
module produces those arrival schedules and the accompanying task samples.
:func:`mixture_plan` generalises the single-workload generators to the
datacenter scenario (paper Table IV): one arrival process whose requests are
drawn from a weighted mixture of traffic classes (e.g. chatbot + agent), each
request tagged with its class so pool-aware routers can steer it.

Time-varying traffic programs build on the same generators:
:func:`shaped_plan` modulates a Poisson process by a
:class:`~repro.serving.shapes.RateShape` via Lewis thinning (candidate
arrivals at the peak rate, accepted with probability ``level(t)/max_level``)
or a deterministic process by rate integration, and :func:`mixture_plan`
accepts an overall shape plus per-class shapes so each traffic class can
burst independently (per-class shaped processes superposed by arrival time).
The identity shape reproduces the unshaped generators bit-for-bit: thinning
at a constant level-1 envelope accepts every candidate, and the acceptance
draws come from a separate substream, so the arrival times and task picks
are untouched.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.serving.shapes import ConstantShape, RateShape, iter_deterministic_arrivals
from repro.serving.tenants import Tenant, TenantPopulation, TenantSpec
from repro.sim.distributions import DeterministicArrivals, PoissonArrivals, RandomStream
from repro.workloads.base import Task, Workload

#: Safety cap on thinning candidates per accepted arrival (a degenerate shape
#: that is almost always near zero would otherwise spin unboundedly).
_MAX_REJECTS_PER_ARRIVAL = 100_000


@dataclass(frozen=True)
class ArrivalPlan:
    """A schedule of (arrival_time, task) pairs for one serving run.

    ``traffic_classes`` optionally labels each arrival with the traffic class
    it was sampled from (mixture plans); single-workload plans leave it
    ``None``.  ``tenants`` optionally labels each arrival with the
    :class:`~repro.serving.tenants.Tenant` that issued it (``None`` for
    untenanted plans, and per-entry ``None`` for arrivals of untenanted
    classes inside a partially tenanted mixture).
    """

    arrival_times: List[float]
    tasks: List[Task]
    traffic_classes: Optional[List[str]] = None
    tenants: Optional[List[Optional[Tenant]]] = None

    def __post_init__(self) -> None:
        if len(self.arrival_times) != len(self.tasks):
            raise ValueError("arrival_times and tasks must have the same length")
        if self.traffic_classes is not None and len(self.traffic_classes) != len(self.tasks):
            raise ValueError("traffic_classes must label every task")
        if self.tenants is not None and len(self.tenants) != len(self.tasks):
            raise ValueError("tenants must label every task")
        if any(b < a for a, b in zip(self.arrival_times, self.arrival_times[1:])):
            raise ValueError("arrival times must be non-decreasing")

    def labels(self) -> List[Optional[str]]:
        """Per-arrival traffic-class labels (``None`` s for unlabelled plans)."""
        if self.traffic_classes is None:
            return [None] * len(self.tasks)
        return list(self.traffic_classes)

    def tenant_labels(self) -> List[Optional[Tenant]]:
        """Per-arrival tenant identities (``None`` s for untenanted plans)."""
        if self.tenants is None:
            return [None] * len(self.tasks)
        return list(self.tenants)

    def __len__(self) -> int:
        return len(self.tasks)

    @property
    def duration(self) -> float:
        return self.arrival_times[-1] if self.arrival_times else 0.0

    @property
    def offered_qps(self) -> float:
        if not self.arrival_times or self.duration <= 0:
            return 0.0
        return len(self.arrival_times) / self.duration


def _sampled_tenants(
    tenants: Optional[TenantSpec],
    count: int,
    stream: Optional[RandomStream],
    substream: str = "tenants",
) -> Optional[List[Tenant]]:
    """Per-arrival tenant draws from a dedicated substream (``None`` = untenanted).

    Tenant draws come from their own substream, created only when a tenant
    spec is present, so untenanted plans consume exactly the same random
    numbers as before tenants existed (bit-for-bit golden pins hold).
    """
    if tenants is None:
        return None
    if stream is None:
        raise ValueError("tenanted plans need a RandomStream to draw tenants from")
    from repro.serving.tenants import sample_tenants

    return sample_tenants(tenants, count, stream.substream(substream))


def poisson_plan(
    workload: Workload,
    qps: float,
    num_requests: int,
    stream: RandomStream,
    task_pool_size: int = 64,
    tenants: Optional[TenantSpec] = None,
) -> ArrivalPlan:
    """Poisson arrivals at ``qps`` with tasks sampled (with replacement) from a pool."""
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    pool = workload.sample_tasks(max(task_pool_size, 1))
    arrivals = PoissonArrivals(qps, stream.substream("arrivals")).arrival_times(num_requests)
    pick_stream = stream.substream("task-pick")
    tasks = [pool[pick_stream.integers(0, len(pool))] for _ in range(num_requests)]
    return ArrivalPlan(
        arrival_times=arrivals,
        tasks=tasks,
        tenants=_sampled_tenants(tenants, num_requests, stream),
    )


def uniform_plan(
    workload: Workload,
    qps: float,
    num_requests: int,
    task_pool_size: int = 64,
    stream: RandomStream | None = None,
    tenants: Optional[TenantSpec] = None,
) -> ArrivalPlan:
    """Evenly spaced arrivals (deterministic), useful for calibration tests."""
    pool = workload.sample_tasks(max(task_pool_size, 1))
    arrivals = DeterministicArrivals(qps).arrival_times(num_requests)
    tasks = [pool[index % len(pool)] for index in range(num_requests)]
    return ArrivalPlan(
        arrival_times=arrivals,
        tasks=tasks,
        tenants=_sampled_tenants(tenants, num_requests, stream),
    )


def sequential_plan(workload: Workload, num_requests: int) -> ArrivalPlan:
    """All requests available at time zero (used for closed-loop sequential runs)."""
    tasks = workload.sample_tasks(num_requests)
    return ArrivalPlan(arrival_times=[0.0] * num_requests, tasks=tasks)


# ---------------------------------------------------------------------------
# Shaped (time-varying) arrival streams
# ---------------------------------------------------------------------------


class _ProductShape(RateShape):
    """Pointwise product of shapes (overall program x per-class modulation)."""

    def __init__(self, *shapes: RateShape):
        self.shapes = [shape for shape in shapes if shape is not None]

    def level(self, t: float) -> float:
        value = 1.0
        for shape in self.shapes:
            value *= shape.level(t)
        return value

    @property
    def max_level(self) -> float:
        value = 1.0
        for shape in self.shapes:
            value *= shape.max_level
        return value

    def next_change(self, t: float) -> Optional[float]:
        boundaries = [
            boundary
            for boundary in (shape.next_change(t) for shape in self.shapes)
            if boundary is not None and boundary > t
        ]
        return min(boundaries) if boundaries else None


def _is_identity(shape: Optional[RateShape]) -> bool:
    return shape is None or (isinstance(shape, ConstantShape) and shape.is_identity)


def _thinned_arrivals(
    shape: RateShape,
    qps: float,
    gap_stream: RandomStream,
    accept_stream: RandomStream,
) -> Iterator[float]:
    """Poisson arrivals at ``qps * level(t)`` by Lewis thinning.

    Candidates arrive at the peak rate ``qps * max_level`` and are accepted
    with probability ``level(t) / max_level``.  A level-1 constant shape
    accepts every candidate without touching the acceptance stream, which is
    what keeps unshaped plans bit-for-bit identical.

    Zero-rate spans are not spun through candidate by candidate: the
    Poisson process is memoryless, so when a candidate lands on a dead span
    the clock restarts at the shape's :meth:`~RateShape.next_positive` time
    (and a rate that never recovers ends the stream instead of stalling).
    """
    peak = qps * shape.max_level
    if peak <= 0:
        raise ValueError("shaped arrivals need qps * max_level > 0")
    t = 0.0
    rejects = 0
    while True:
        t += gap_stream.exponential(1.0 / peak)
        probability = qps * shape.level(t) / peak
        if probability <= 0.0:
            resume = shape.next_positive(t)
            if resume is None:
                return
            if resume > t:
                t = resume
                continue
        if probability >= 1.0 or accept_stream.random() < probability:
            rejects = 0
            yield t
        else:
            rejects += 1
            if rejects > _MAX_REJECTS_PER_ARRIVAL:
                raise ValueError(
                    "shaped arrival generation stalled: the shape's level is "
                    "negligible relative to its max_level for too long"
                )


def _collect_arrivals(
    arrivals: Iterator[float],
    num_requests: int,
    duration_s: Optional[float],
) -> List[float]:
    """Up to ``num_requests`` arrival times, stopping at ``duration_s`` if set."""
    times: List[float] = []
    for t in arrivals:
        if duration_s is not None and t > duration_s:
            break
        times.append(t)
        if len(times) >= num_requests:
            break
    return times


def shaped_plan(
    workload: Workload,
    qps: float,
    shape: RateShape,
    num_requests: int,
    stream: RandomStream,
    task_pool_size: int = 64,
    process: str = "poisson",
    duration_s: Optional[float] = None,
    tenants: Optional[TenantSpec] = None,
) -> ArrivalPlan:
    """One workload served by a shaped arrival process (a traffic program).

    The effective arrival rate at time ``t`` is ``qps * shape.level(t)``:
    Poisson processes are modulated by thinning, ``uniform`` (deterministic)
    processes by rate integration.  ``duration_s`` switches the plan from
    count semantics (exactly ``num_requests`` arrivals) to span semantics
    (every arrival inside ``[0, duration_s]``, with ``num_requests`` as a
    safety cap).  The identity shape delegates to the unshaped generators,
    so ``ConstantShape(1.0)`` plans are bit-for-bit the legacy plans.
    """
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    if not isinstance(shape, RateShape):
        raise ValueError(f"shaped_plan needs a RateShape, got {shape!r}")
    if duration_s is not None and duration_s <= 0:
        raise ValueError("duration_s must be > 0 (or None for count semantics)")
    if _is_identity(shape) and duration_s is None:
        if process == "poisson":
            return poisson_plan(
                workload, qps, num_requests, stream, task_pool_size, tenants=tenants
            )
        if process == "uniform":
            return uniform_plan(
                workload, qps, num_requests, task_pool_size, stream, tenants=tenants
            )
        raise ValueError(f"shaped plans support poisson/uniform, not {process!r}")
    if process == "poisson":
        arrivals = _thinned_arrivals(
            shape, qps, stream.substream("arrivals"), stream.substream("thinning")
        )
    elif process == "uniform":
        arrivals = iter_deterministic_arrivals(shape, qps, stop_before=duration_s)
    else:
        raise ValueError(f"shaped plans support poisson/uniform, not {process!r}")
    times = _collect_arrivals(arrivals, num_requests, duration_s)
    if not times:
        raise ValueError(
            "shaped plan generated no arrivals: the shape stays at zero rate "
            "for the whole plan span"
        )
    pool = workload.sample_tasks(max(task_pool_size, 1))
    if process == "poisson":
        pick_stream = stream.substream("task-pick")
        tasks = [pool[pick_stream.integers(0, len(pool))] for _ in times]
    else:
        tasks = [pool[index % len(pool)] for index in range(len(times))]
    return ArrivalPlan(
        arrival_times=times,
        tasks=tasks,
        tenants=_sampled_tenants(tenants, len(times), stream),
    )


#: One traffic class of a mixture: (label, workload, weight[, shape[, tenants]]).
MixtureComponent = Union[
    Tuple[str, Workload, float],
    Tuple[str, Workload, float, Optional[RateShape]],
    Tuple[str, Workload, float, Optional[RateShape], Optional[TenantSpec]],
]


class _MixtureTenants:
    """Lazy per-class tenant samplers for a mixture plan.

    Each tenanted class gets its own :class:`TenantPopulation` and
    ``tenants/{label}`` substream, created on first use, so untenanted
    classes never touch the random state and the plan's tenant column is
    ``None`` when no class is tenanted at all.
    """

    def __init__(
        self,
        stream: RandomStream,
        specs: Dict[str, Optional[TenantSpec]],
    ):
        self._stream = stream
        self._specs = specs
        self._populations: Dict[str, TenantPopulation] = {}
        self._streams: Dict[str, RandomStream] = {}
        self.any_tenanted = any(spec is not None for spec in specs.values())

    def sample(self, label: str) -> Optional[Tenant]:
        spec = self._specs[label]
        if spec is None:
            return None
        population = self._populations.get(label)
        if population is None:
            population = TenantPopulation(spec)
            self._populations[label] = population
            self._streams[label] = self._stream.substream(f"tenants/{label}")
        return population.sample(self._streams[label])

    def column(self, drawn: List[Optional[Tenant]]) -> Optional[List[Optional[Tenant]]]:
        return drawn if self.any_tenanted else None


def mixture_plan(
    components: Sequence[MixtureComponent],
    qps: float,
    num_requests: int,
    stream: RandomStream,
    task_pool_size: int = 64,
    process: str = "poisson",
    shape: Optional[RateShape] = None,
    duration_s: Optional[float] = None,
    tenants: Optional[TenantSpec] = None,
) -> ArrivalPlan:
    """One arrival process over a weighted mixture of traffic classes.

    ``components`` is a sequence of ``(label, workload, weight)``,
    ``(label, workload, weight, shape)`` or ``(label, workload, weight,
    shape, tenants)``; every arrival is tagged with the class label so the
    cluster can route it to the right pool.  A per-class :class:`TenantSpec`
    overrides the plan-level ``tenants`` default for that class; each
    tenanted class draws from its own user population on its own substream.

    Without shaping (the legacy path, bit-for-bit preserved): one arrival
    process at ``qps``, each arrival drawing its traffic class by weight and
    then a task (with replacement) from that class's pool.

    With shaping (an overall ``shape`` and/or per-class shapes): each class
    becomes its own shaped process at rate
    ``qps * normalized_weight * shape.level(t) * class_shape.level(t)``, so
    classes burst independently (the Table IV scenario: agent traffic
    spiking over a steady chat floor); the per-class processes are superposed
    by arrival time into one plan.
    """
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    if not components:
        raise ValueError("mixture needs at least one traffic class")
    if duration_s is not None and duration_s <= 0:
        raise ValueError("duration_s must be > 0 (or None for count semantics)")
    normalized = [
        (entry[0], entry[1], entry[2], entry[3] if len(entry) > 3 else None)
        for entry in components
    ]
    tenant_specs: Dict[str, Optional[TenantSpec]] = {
        entry[0]: (entry[4] if len(entry) > 4 and entry[4] is not None else tenants)
        for entry in components
    }
    total_weight = sum(weight for _, _, weight, _ in normalized)
    if total_weight <= 0:
        raise ValueError("mixture weights must sum to > 0")
    if process not in ("poisson", "uniform"):
        raise ValueError(f"mixture plans support poisson/uniform, not {process!r}")
    labels = [label for label, _, _, _ in normalized]
    mixture_tenants = _MixtureTenants(stream, tenant_specs)
    pools: Dict[str, List[Task]] = {
        label: workload.sample_tasks(max(task_pool_size, 1))
        for label, workload, _, _ in normalized
    }
    unshaped = (
        _is_identity(shape)
        and all(_is_identity(class_shape) for _, _, _, class_shape in normalized)
        and duration_s is None
    )
    if unshaped:
        # Legacy single-process path (golden-pinned): one arrival stream,
        # class drawn by weight per arrival.
        probabilities = [weight / total_weight for _, _, weight, _ in normalized]
        if process == "poisson":
            arrivals = PoissonArrivals(qps, stream.substream("arrivals")).arrival_times(
                num_requests
            )
        else:
            arrivals = DeterministicArrivals(qps).arrival_times(num_requests)
        class_stream = stream.substream("class-pick")
        pick_streams = {
            label: stream.substream(f"task-pick/{label}") for label in labels
        }
        chosen: List[str] = []
        tasks: List[Task] = []
        drawn: List[Optional[Tenant]] = []
        for _ in range(num_requests):
            label = class_stream.choice(labels, p=probabilities)
            pool = pools[label]
            tasks.append(pool[pick_streams[label].integers(0, len(pool))])
            chosen.append(label)
            drawn.append(mixture_tenants.sample(label))
        return ArrivalPlan(
            arrival_times=arrivals,
            tasks=tasks,
            traffic_classes=chosen,
            tenants=mixture_tenants.column(drawn),
        )
    # Shaped mixture: superposed per-class shaped processes.  Each class has
    # its own substreams so adding/reshaping one class never perturbs the
    # arrival times of another.
    merged: List[Tuple[float, int]] = []
    heapq.heapify(merged)
    streams: List[Iterator[float]] = []
    for index, (label, _, weight, class_shape) in enumerate(normalized):
        class_rate = qps * weight / total_weight
        program = _ProductShape(shape, class_shape)
        if process == "poisson":
            arrivals = _thinned_arrivals(
                program,
                class_rate,
                stream.substream(f"arrivals/{label}"),
                stream.substream(f"thinning/{label}"),
            )
        else:
            arrivals = iter_deterministic_arrivals(
                program, class_rate, stop_before=duration_s
            )
        streams.append(arrivals)
        first = next(arrivals, None)
        if first is not None:
            heapq.heappush(merged, (first, index))
    pick_streams = {
        label: stream.substream(f"task-pick/{label}") for label in labels
    }
    round_robin = [0] * len(normalized)
    times: List[float] = []
    tasks = []
    chosen = []
    drawn = []
    while merged and len(times) < num_requests:
        t, index = heapq.heappop(merged)
        if duration_s is not None and t > duration_s:
            # Streams yield non-decreasing times: once the earliest pending
            # arrival is past the span, every later one is too.
            break
        label = labels[index]
        pool = pools[label]
        if process == "poisson":
            tasks.append(pool[pick_streams[label].integers(0, len(pool))])
        else:
            tasks.append(pool[round_robin[index] % len(pool)])
            round_robin[index] += 1
        times.append(t)
        chosen.append(label)
        drawn.append(mixture_tenants.sample(label))
        upcoming = next(streams[index], None)
        if upcoming is not None:
            heapq.heappush(merged, (upcoming, index))
    if not times:
        raise ValueError(
            "shaped mixture generated no arrivals: every class stays at zero "
            "rate for the whole plan span"
        )
    return ArrivalPlan(
        arrival_times=times,
        tasks=tasks,
        traffic_classes=chosen,
        tenants=mixture_tenants.column(drawn),
    )
