"""Load generation for the agent serving experiments (paper Section IV-C).

The paper drives its serving system with requests sampled uniformly from the
benchmark and arriving according to a Poisson process at a target QPS; this
module produces those arrival schedules and the accompanying task samples.
:func:`mixture_plan` generalises the single-workload generators to the
datacenter scenario (paper Table IV): one arrival process whose requests are
drawn from a weighted mixture of traffic classes (e.g. chatbot + agent), each
request tagged with its class so pool-aware routers can steer it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.distributions import DeterministicArrivals, PoissonArrivals, RandomStream
from repro.workloads.base import Task, Workload


@dataclass(frozen=True)
class ArrivalPlan:
    """A schedule of (arrival_time, task) pairs for one serving run.

    ``traffic_classes`` optionally labels each arrival with the traffic class
    it was sampled from (mixture plans); single-workload plans leave it
    ``None``.
    """

    arrival_times: List[float]
    tasks: List[Task]
    traffic_classes: Optional[List[str]] = None

    def __post_init__(self) -> None:
        if len(self.arrival_times) != len(self.tasks):
            raise ValueError("arrival_times and tasks must have the same length")
        if self.traffic_classes is not None and len(self.traffic_classes) != len(self.tasks):
            raise ValueError("traffic_classes must label every task")
        if any(b < a for a, b in zip(self.arrival_times, self.arrival_times[1:])):
            raise ValueError("arrival times must be non-decreasing")

    def labels(self) -> List[Optional[str]]:
        """Per-arrival traffic-class labels (``None`` s for unlabelled plans)."""
        if self.traffic_classes is None:
            return [None] * len(self.tasks)
        return list(self.traffic_classes)

    def __len__(self) -> int:
        return len(self.tasks)

    @property
    def duration(self) -> float:
        return self.arrival_times[-1] if self.arrival_times else 0.0

    @property
    def offered_qps(self) -> float:
        if not self.arrival_times or self.duration <= 0:
            return 0.0
        return len(self.arrival_times) / self.duration


def poisson_plan(
    workload: Workload,
    qps: float,
    num_requests: int,
    stream: RandomStream,
    task_pool_size: int = 64,
) -> ArrivalPlan:
    """Poisson arrivals at ``qps`` with tasks sampled (with replacement) from a pool."""
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    pool = workload.sample_tasks(max(task_pool_size, 1))
    arrivals = PoissonArrivals(qps, stream.substream("arrivals")).arrival_times(num_requests)
    pick_stream = stream.substream("task-pick")
    tasks = [pool[pick_stream.integers(0, len(pool))] for _ in range(num_requests)]
    return ArrivalPlan(arrival_times=arrivals, tasks=tasks)


def uniform_plan(
    workload: Workload,
    qps: float,
    num_requests: int,
    task_pool_size: int = 64,
    stream: RandomStream | None = None,
) -> ArrivalPlan:
    """Evenly spaced arrivals (deterministic), useful for calibration tests."""
    pool = workload.sample_tasks(max(task_pool_size, 1))
    arrivals = DeterministicArrivals(qps).arrival_times(num_requests)
    tasks = [pool[index % len(pool)] for index in range(num_requests)]
    return ArrivalPlan(arrival_times=arrivals, tasks=tasks)


def sequential_plan(workload: Workload, num_requests: int) -> ArrivalPlan:
    """All requests available at time zero (used for closed-loop sequential runs)."""
    tasks = workload.sample_tasks(num_requests)
    return ArrivalPlan(arrival_times=[0.0] * num_requests, tasks=tasks)


def mixture_plan(
    components: Sequence[Tuple[str, Workload, float]],
    qps: float,
    num_requests: int,
    stream: RandomStream,
    task_pool_size: int = 64,
    process: str = "poisson",
) -> ArrivalPlan:
    """One arrival process over a weighted mixture of traffic classes.

    ``components`` is a sequence of ``(label, workload, weight)``; every
    arrival first draws its traffic class by weight, then a task (with
    replacement) from that class's pool, and the plan tags the arrival with
    the class label so the cluster can route it to the right pool.
    """
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    if not components:
        raise ValueError("mixture needs at least one traffic class")
    total_weight = sum(weight for _, _, weight in components)
    if total_weight <= 0:
        raise ValueError("mixture weights must sum to > 0")
    labels = [label for label, _, _ in components]
    probabilities = [weight / total_weight for _, _, weight in components]
    pools: Dict[str, List[Task]] = {
        label: workload.sample_tasks(max(task_pool_size, 1))
        for label, workload, _ in components
    }
    if process == "poisson":
        arrivals = PoissonArrivals(qps, stream.substream("arrivals")).arrival_times(
            num_requests
        )
    elif process == "uniform":
        arrivals = DeterministicArrivals(qps).arrival_times(num_requests)
    else:
        raise ValueError(f"mixture plans support poisson/uniform, not {process!r}")
    class_stream = stream.substream("class-pick")
    pick_streams = {
        label: stream.substream(f"task-pick/{label}") for label in labels
    }
    chosen: List[str] = []
    tasks: List[Task] = []
    for _ in range(num_requests):
        label = class_stream.choice(labels, p=probabilities)
        pool = pools[label]
        tasks.append(pool[pick_streams[label].integers(0, len(pool))])
        chosen.append(label)
    return ArrivalPlan(arrival_times=arrivals, tasks=tasks, traffic_classes=chosen)
