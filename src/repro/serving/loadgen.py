"""Load generation for the agent serving experiments (paper Section IV-C).

The paper drives its serving system with requests sampled uniformly from the
benchmark and arriving according to a Poisson process at a target QPS; this
module produces those arrival schedules and the accompanying task samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.sim.distributions import DeterministicArrivals, PoissonArrivals, RandomStream
from repro.workloads.base import Task, Workload


@dataclass(frozen=True)
class ArrivalPlan:
    """A schedule of (arrival_time, task) pairs for one serving run."""

    arrival_times: List[float]
    tasks: List[Task]

    def __post_init__(self) -> None:
        if len(self.arrival_times) != len(self.tasks):
            raise ValueError("arrival_times and tasks must have the same length")
        if any(b < a for a, b in zip(self.arrival_times, self.arrival_times[1:])):
            raise ValueError("arrival times must be non-decreasing")

    def __len__(self) -> int:
        return len(self.tasks)

    @property
    def duration(self) -> float:
        return self.arrival_times[-1] if self.arrival_times else 0.0

    @property
    def offered_qps(self) -> float:
        if not self.arrival_times or self.duration <= 0:
            return 0.0
        return len(self.arrival_times) / self.duration


def poisson_plan(
    workload: Workload,
    qps: float,
    num_requests: int,
    stream: RandomStream,
    task_pool_size: int = 64,
) -> ArrivalPlan:
    """Poisson arrivals at ``qps`` with tasks sampled (with replacement) from a pool."""
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    pool = workload.sample_tasks(max(task_pool_size, 1))
    arrivals = PoissonArrivals(qps, stream.substream("arrivals")).arrival_times(num_requests)
    pick_stream = stream.substream("task-pick")
    tasks = [pool[pick_stream.integers(0, len(pool))] for _ in range(num_requests)]
    return ArrivalPlan(arrival_times=arrivals, tasks=tasks)


def uniform_plan(
    workload: Workload,
    qps: float,
    num_requests: int,
    task_pool_size: int = 64,
    stream: RandomStream | None = None,
) -> ArrivalPlan:
    """Evenly spaced arrivals (deterministic), useful for calibration tests."""
    pool = workload.sample_tasks(max(task_pool_size, 1))
    arrivals = DeterministicArrivals(qps).arrival_times(num_requests)
    tasks = [pool[index % len(pool)] for index in range(num_requests)]
    return ArrivalPlan(arrival_times=arrivals, tasks=tasks)


def sequential_plan(workload: Workload, num_requests: int) -> ArrivalPlan:
    """All requests available at time zero (used for closed-loop sequential runs)."""
    tasks = workload.sample_tasks(num_requests)
    return ArrivalPlan(arrival_times=[0.0] * num_requests, tasks=tasks)
