"""QPS sweeps and peak-throughput (knee) detection (paper Fig. 11).

:class:`QpsSweepResult` is the legacy one-axis view of a study:
:func:`repro.api.run_sweep` now executes a one-axis
:class:`~repro.api.study.StudySpec` under the hood (bit-for-bit identical)
and rebuilds this result type through
:meth:`~repro.api.study.StudyResult.as_qps_sweep`; multi-axis studies
(shapes, pool layouts, policies) return the richer
:class:`~repro.api.study.StudyResult` instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.serving.server import ServingConfig, ServingResult

#: Baseline p95 latencies at or below this are treated as "no signal" when
#: deriving the knee threshold (a degenerate baseline would otherwise collapse
#: the threshold to zero and report no sustainable throughput on healthy runs).
_BASELINE_EPSILON = 1e-9


@dataclass
class QpsSweepResult:
    """Tail-latency-vs-QPS curve for one serving configuration."""

    config: ServingConfig
    results: List[ServingResult] = field(default_factory=list)

    @property
    def qps_values(self) -> List[float]:
        return [result.offered_qps for result in self.results]

    @property
    def p95_latencies(self) -> List[float]:
        return [result.p95_latency for result in self.results]

    @property
    def throughputs(self) -> List[float]:
        return [result.throughput_qps for result in self.results]

    def peak_throughput(
        self,
        latency_slo_s: Optional[float] = None,
        knee_factor: float = 3.0,
    ) -> float:
        """Maximum sustainable QPS at the knee of the tail-latency curve.

        The knee is the largest offered QPS whose p95 latency stays below
        ``knee_factor`` times the lowest-load p95 (or below an absolute SLO if
        one is given).  This mirrors how the paper reads peak throughput off
        its Fig. 11 curves.

        A zero (or numerically negligible) lowest-load p95 carries no signal
        about saturation, so the baseline falls back to the smallest positive
        p95 in the sweep; if every point is at zero latency the threshold is
        unbounded and any sufficiently completed point counts.
        """
        if not self.results:
            return 0.0
        ordered = sorted(self.results, key=lambda result: result.offered_qps)
        if latency_slo_s is not None:
            threshold = latency_slo_s
        else:
            baseline = ordered[0].p95_latency
            if baseline <= _BASELINE_EPSILON:
                positive = [
                    result.p95_latency
                    for result in ordered
                    if result.p95_latency > _BASELINE_EPSILON
                ]
                baseline = min(positive) if positive else float("inf")
            threshold = baseline * knee_factor
        peak = 0.0
        for result in ordered:
            if result.p95_latency <= threshold and result.num_completed >= result.num_requests * 0.95:
                peak = max(peak, result.throughput_qps)
        return peak


def sweep_qps(
    config: ServingConfig,
    qps_values: Sequence[float],
    num_requests: int = 60,
    task_pool_size: int = 48,
) -> QpsSweepResult:
    """Run the same serving configuration across several offered loads.

    Compatibility shim over :func:`repro.api.run_sweep`.
    """
    from repro.api.runners import run_sweep
    from repro.api.spec import ArrivalSpec
    from repro.serving.server import _spec_from_config

    spec = _spec_from_config(
        config,
        arrival=ArrivalSpec(
            process="single",
            num_requests=num_requests,
            task_pool_size=task_pool_size,
        ),
    )
    return run_sweep(spec, qps_values)
