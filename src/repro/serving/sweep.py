"""QPS sweeps and peak-throughput (knee) detection (paper Fig. 11)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.serving.server import ServingConfig, ServingResult, run_at_qps


@dataclass
class QpsSweepResult:
    """Tail-latency-vs-QPS curve for one serving configuration."""

    config: ServingConfig
    results: List[ServingResult] = field(default_factory=list)

    @property
    def qps_values(self) -> List[float]:
        return [result.offered_qps for result in self.results]

    @property
    def p95_latencies(self) -> List[float]:
        return [result.p95_latency for result in self.results]

    @property
    def throughputs(self) -> List[float]:
        return [result.throughput_qps for result in self.results]

    def peak_throughput(
        self,
        latency_slo_s: Optional[float] = None,
        knee_factor: float = 3.0,
    ) -> float:
        """Maximum sustainable QPS at the knee of the tail-latency curve.

        The knee is the largest offered QPS whose p95 latency stays below
        ``knee_factor`` times the lowest-load p95 (or below an absolute SLO if
        one is given).  This mirrors how the paper reads peak throughput off
        its Fig. 11 curves.
        """
        if not self.results:
            return 0.0
        ordered = sorted(self.results, key=lambda result: result.offered_qps)
        baseline = ordered[0].p95_latency
        threshold = latency_slo_s if latency_slo_s is not None else baseline * knee_factor
        peak = 0.0
        for result in ordered:
            if result.p95_latency <= threshold and result.num_completed >= result.num_requests * 0.95:
                peak = max(peak, result.throughput_qps)
        return peak


def sweep_qps(
    config: ServingConfig,
    qps_values: Sequence[float],
    num_requests: int = 60,
    task_pool_size: int = 48,
) -> QpsSweepResult:
    """Run the same serving configuration across several offered loads."""
    sweep = QpsSweepResult(config=config)
    for qps in qps_values:
        sweep.results.append(
            run_at_qps(config, qps, num_requests=num_requests, task_pool_size=task_pool_size)
        )
    return sweep
