"""Agent serving system: pooled clusters, routers, autoscaling, load generation."""

from repro.serving.autoscaler import Autoscaler
from repro.serving.cluster import (
    Cluster,
    LeastLoadedRouter,
    PrefixAffinityRouter,
    ReplicaPool,
    ROUTER_POLICIES,
    RoundRobinRouter,
    RouterPolicy,
    ScalingEvent,
    available_router_policies,
    create_router_policy,
    register_router_policy,
)
from repro.serving.loadgen import (
    ArrivalPlan,
    mixture_plan,
    poisson_plan,
    sequential_plan,
    uniform_plan,
)
from repro.serving.server import AgentServer, ServingConfig, ServingResult, run_at_qps
from repro.serving.sweep import QpsSweepResult, sweep_qps

__all__ = [
    "AgentServer",
    "ArrivalPlan",
    "Autoscaler",
    "Cluster",
    "LeastLoadedRouter",
    "PrefixAffinityRouter",
    "QpsSweepResult",
    "ROUTER_POLICIES",
    "ReplicaPool",
    "RoundRobinRouter",
    "RouterPolicy",
    "ScalingEvent",
    "ServingConfig",
    "ServingResult",
    "available_router_policies",
    "create_router_policy",
    "mixture_plan",
    "poisson_plan",
    "register_router_policy",
    "run_at_qps",
    "sequential_plan",
    "sweep_qps",
    "uniform_plan",
]
