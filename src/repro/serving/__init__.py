"""Agent serving system: workers, load generation, and QPS sweeps."""

from repro.serving.loadgen import ArrivalPlan, poisson_plan, sequential_plan, uniform_plan
from repro.serving.server import AgentServer, ServingConfig, ServingResult, run_at_qps
from repro.serving.sweep import QpsSweepResult, sweep_qps

__all__ = [
    "AgentServer",
    "ArrivalPlan",
    "QpsSweepResult",
    "ServingConfig",
    "ServingResult",
    "poisson_plan",
    "run_at_qps",
    "sequential_plan",
    "sweep_qps",
    "uniform_plan",
]
