"""Agent serving system: clusters, routers, workers, load generation, sweeps."""

from repro.serving.cluster import (
    Cluster,
    LeastLoadedRouter,
    PrefixAffinityRouter,
    ROUTER_POLICIES,
    RoundRobinRouter,
    RouterPolicy,
    available_router_policies,
    create_router_policy,
    register_router_policy,
)
from repro.serving.loadgen import ArrivalPlan, poisson_plan, sequential_plan, uniform_plan
from repro.serving.server import AgentServer, ServingConfig, ServingResult, run_at_qps
from repro.serving.sweep import QpsSweepResult, sweep_qps

__all__ = [
    "AgentServer",
    "ArrivalPlan",
    "Cluster",
    "LeastLoadedRouter",
    "PrefixAffinityRouter",
    "QpsSweepResult",
    "ROUTER_POLICIES",
    "RoundRobinRouter",
    "RouterPolicy",
    "ServingConfig",
    "ServingResult",
    "available_router_policies",
    "create_router_policy",
    "poisson_plan",
    "register_router_policy",
    "run_at_qps",
    "sequential_plan",
    "sweep_qps",
    "uniform_plan",
]
