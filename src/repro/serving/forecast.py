"""Arrival-rate forecasting: the look-ahead half of predictive autoscaling.

An :class:`ArrivalForecaster` watches the arrival timeline (the serving
driver feeds it every request the instant it reaches the door, before any
admission decision) and answers one question: *what arrival rate should the
fleet expect over the next horizon?*  The predictive
:class:`~repro.serving.autoscaler.Autoscaler` mode converts that rate --
times the predicted decode length per request -- into a target replica
count and scales ahead of the demand by the pool's warm-up time.

Built-in forecasters:

* :class:`NoForecaster` (``none``) -- predicts zero future arrivals; a
  predictive autoscaler degenerates to sizing for the backlog already
  enqueued (useful as the look-ahead-free control arm of a study),
* :class:`WindowedRateForecaster` (``windowed-rate``) -- persistence
  forecasting: the rate observed over the trailing ``window_s`` is assumed
  to continue through the horizon.  Reacts fast, but lags ramps by half a
  window and has no notion of trend,
* :class:`EwmaForecaster` (``ewma``) -- exponentially weighted moving
  average of per-bucket arrival rates; smoother than the raw window (burst
  noise is damped by ``alpha``) but, like persistence, trend-blind,
* :class:`HoltForecaster` (``holt``) -- double exponential smoothing
  (Holt's linear method): a level *and* a trend term, extrapolated
  ``horizon_s`` ahead.  The only built-in that scales ahead of a ramp
  instead of chasing it.

Every forecaster also keeps the books needed to score itself: each
:meth:`~ArrivalForecaster.forecast_rate` call is logged, and once simulated
time passes the forecast's target the realised arrival rate over the
forecast interval is known, giving the absolute forecast error reported in
:class:`~repro.api.results.ResultSet` (``forecast_mae``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Type

from repro.registry import PolicyRegistry


class ArrivalForecaster:
    """Predicts the arrival rate the fleet will see over a future horizon.

    Subclasses implement :meth:`_predict_rate`; the base class owns the
    arrival timeline (:meth:`observe`), the forecast log, and the error
    accounting (:meth:`mean_absolute_error`).  Rates are requests/second.
    """

    name = "base"

    def __init__(self) -> None:
        #: Observed arrival timestamps, append-ordered (simulated seconds).
        self.arrivals: List[float] = []
        # (made_at, target_time, predicted_rate) per forecast_rate call.
        self._forecasts: List[Tuple[float, float, float]] = []

    # -- timeline ------------------------------------------------------------
    def observe(self, t: float) -> None:
        """Record one arrival at simulated time ``t``."""
        self.arrivals.append(t)

    def _arrivals_between(self, start: float, end: float) -> int:
        """Arrivals observed in ``(start, end]`` (binary search on the timeline)."""
        import bisect

        lo = bisect.bisect_right(self.arrivals, start)
        hi = bisect.bisect_right(self.arrivals, end)
        return hi - lo

    # -- forecasting ---------------------------------------------------------
    def forecast_rate(self, now: float, horizon_s: float) -> float:
        """Predicted mean arrival rate (req/s) over ``[now, now + horizon_s]``.

        The forecast is logged so its error can be scored once simulated
        time reaches the target.
        """
        if horizon_s <= 0:
            raise ValueError("forecast horizon_s must be > 0")
        rate = max(0.0, self._predict_rate(now, horizon_s))
        self._forecasts.append((now, now + horizon_s, rate))
        return rate

    def _predict_rate(self, now: float, horizon_s: float) -> float:
        raise NotImplementedError

    # -- error accounting ----------------------------------------------------
    def matured_errors(self, now: float) -> List[float]:
        """|predicted - realised| rate for every forecast whose target passed."""
        errors: List[float] = []
        for made_at, target, predicted in self._forecasts:
            if target > now:
                continue
            horizon = target - made_at
            actual = self._arrivals_between(made_at, target) / horizon
            errors.append(abs(predicted - actual))
        return errors

    def mean_absolute_error(self, now: float) -> Optional[float]:
        """Mean absolute rate error over matured forecasts (``None`` if none)."""
        errors = self.matured_errors(now)
        if not errors:
            return None
        return sum(errors) / len(errors)

    @property
    def num_forecasts(self) -> int:
        return len(self._forecasts)


class NoForecaster(ArrivalForecaster):
    """Predicts zero future arrivals (the look-ahead-free control arm)."""

    name = "none"

    def _predict_rate(self, now: float, horizon_s: float) -> float:
        return 0.0


class WindowedRateForecaster(ArrivalForecaster):
    """Persistence forecasting: the trailing-window rate continues unchanged."""

    name = "windowed-rate"

    def __init__(self, window_s: float = 10.0) -> None:
        super().__init__()
        if window_s <= 0:
            raise ValueError("windowed-rate window_s must be > 0")
        self.window_s = window_s

    def _predict_rate(self, now: float, horizon_s: float) -> float:
        span = min(self.window_s, now) if now > 0 else self.window_s
        if span <= 0:
            return 0.0
        return self._arrivals_between(now - span, now) / span


class _BucketedForecaster(ArrivalForecaster):
    """Shared machinery: arrivals folded into fixed buckets of per-bucket rate.

    Subclasses consume one closed bucket at a time through :meth:`_update`
    (empty buckets included -- a smoother that never sees zeros cannot track
    a dying burst down).
    """

    def __init__(self, bucket_s: float = 2.0) -> None:
        super().__init__()
        if bucket_s <= 0:
            raise ValueError("forecaster bucket_s must be > 0")
        self.bucket_s = bucket_s
        self._bucket_start = 0.0
        self._bucket_count = 0

    def observe(self, t: float) -> None:
        self._fold_until(t)
        super().observe(t)
        self._bucket_count += 1

    def _fold_until(self, t: float) -> None:
        """Close every bucket that fully elapsed before ``t``."""
        while t >= self._bucket_start + self.bucket_s:
            self._update(self._bucket_count / self.bucket_s)
            self._bucket_count = 0
            self._bucket_start += self.bucket_s

    def _update(self, rate: float) -> None:
        raise NotImplementedError


class EwmaForecaster(_BucketedForecaster):
    """EWMA of per-bucket arrival rates; the smoothed level is the forecast."""

    name = "ewma"

    def __init__(self, bucket_s: float = 2.0, alpha: float = 0.5) -> None:
        super().__init__(bucket_s)
        if not 0 < alpha <= 1:
            raise ValueError("ewma alpha must be in (0, 1]")
        self.alpha = alpha
        self.level: Optional[float] = None

    def _update(self, rate: float) -> None:
        if self.level is None:
            self.level = rate
        else:
            self.level = self.alpha * rate + (1 - self.alpha) * self.level

    def _predict_rate(self, now: float, horizon_s: float) -> float:
        self._fold_until(now)
        return self.level if self.level is not None else 0.0


class HoltForecaster(_BucketedForecaster):
    """Holt's linear (double exponential) smoothing: level + trend look-ahead.

    ``level`` tracks the smoothed rate, ``trend`` its per-bucket slope; the
    forecast extrapolates ``horizon_s / bucket_s`` buckets ahead, floored at
    zero (arrival rates cannot go negative).
    """

    name = "holt"

    def __init__(
        self, bucket_s: float = 2.0, alpha: float = 0.5, beta: float = 0.3
    ) -> None:
        super().__init__(bucket_s)
        if not 0 < alpha <= 1:
            raise ValueError("holt alpha must be in (0, 1]")
        if not 0 < beta <= 1:
            raise ValueError("holt beta must be in (0, 1]")
        self.alpha = alpha
        self.beta = beta
        self.level: Optional[float] = None
        self.trend = 0.0

    def _update(self, rate: float) -> None:
        if self.level is None:
            self.level = rate
            self.trend = 0.0
            return
        previous = self.level
        self.level = self.alpha * rate + (1 - self.alpha) * (self.level + self.trend)
        self.trend = self.beta * (self.level - previous) + (1 - self.beta) * self.trend

    def _predict_rate(self, now: float, horizon_s: float) -> float:
        self._fold_until(now)
        if self.level is None:
            return 0.0
        # forecast_rate's contract is the MEAN rate over the horizon, not the
        # endpoint: for a linear trend over buckets 1..k that mean is
        # level + trend * (k + 1) / 2.
        steps = horizon_s / self.bucket_s
        return self.level + self.trend * (steps + 1.0) / 2.0


FORECASTER_REGISTRY = PolicyRegistry("arrival forecaster")
#: name -> class mapping (keys are lower-case); kept for membership checks.
FORECASTERS: Dict[str, Type[ArrivalForecaster]] = FORECASTER_REGISTRY.policies


def register_forecaster(
    forecaster_class: Type[ArrivalForecaster],
) -> Type[ArrivalForecaster]:
    """Register a forecaster under its ``name`` (also usable as a decorator)."""
    return FORECASTER_REGISTRY.register(forecaster_class)


register_forecaster(NoForecaster)
register_forecaster(WindowedRateForecaster)
register_forecaster(EwmaForecaster)
register_forecaster(HoltForecaster)


def available_forecasters() -> List[str]:
    return FORECASTER_REGISTRY.available()


def replay_score(
    forecaster: ArrivalForecaster,
    arrivals: List[float],
    horizon_s: float = 5.0,
    interval_s: float = 2.0,
    start_s: float = 4.0,
) -> float:
    """Replay an arrival trace through a forecaster and return its MAE.

    Walks simulated time from ``start_s`` to the last arrival in
    ``interval_s`` steps, feeding the forecaster every arrival up to the
    current instant and asking for a ``horizon_s``-ahead forecast at each
    step; the result is the mean absolute rate error over every matured
    forecast.  This is the scoring loop the forecaster-accuracy tests pin,
    shared so studies (forecaster x traffic shape sweeps) score the same
    way the tests do.  Deterministic traces come from
    :func:`repro.serving.shapes.deterministic_trace`.
    """
    if not arrivals:
        raise ValueError("replay_score needs a non-empty arrival trace")
    if interval_s <= 0:
        raise ValueError("replay_score interval_s must be > 0")
    pending = iter(arrivals)
    upcoming: Optional[float] = next(pending)
    t, end = start_s, arrivals[-1]
    while t < end:
        while upcoming is not None and upcoming <= t:
            forecaster.observe(upcoming)
            upcoming = next(pending, None)
        forecaster.forecast_rate(t, horizon_s)
        t += interval_s
    error = forecaster.mean_absolute_error(end)
    if error is None:
        raise ValueError(
            "replay_score produced no matured forecasts (trace shorter than "
            "start_s + horizon_s)"
        )
    return error


def build_forecaster(
    name: str,
    *,
    window_s: float = 10.0,
    bucket_s: float = 2.0,
    alpha: float = 0.5,
    beta: float = 0.3,
) -> ArrivalForecaster:
    """Instantiate a registered forecaster from declarative parameters.

    Parameters a forecaster does not take are ignored, so one spec
    vocabulary covers the whole registry.  Raises :class:`ValueError` for
    unknown names.
    """
    key = name.lower()
    if key not in FORECASTERS:
        raise ValueError(
            f"unknown arrival forecaster {name!r}; known: {available_forecasters()}"
        )
    if key == "none":
        return NoForecaster()
    if key == "windowed-rate":
        return WindowedRateForecaster(window_s=window_s)
    if key == "ewma":
        return EwmaForecaster(bucket_s=bucket_s, alpha=alpha)
    if key == "holt":
        return HoltForecaster(bucket_s=bucket_s, alpha=alpha, beta=beta)
    # Externally registered forecasters are built with their default
    # constructor; parameterise them by registering a pre-configured class.
    return FORECASTER_REGISTRY.create(name)
