"""The agent serving system (paper Fig. 10).

A server entry point receives user requests, spawns an asynchronous agent
worker per request, and lets the workers' LLM calls batch at the shared vLLM
backend (continuous batching + FCFS scheduling).  Tool calls run inside each
worker.  The system reports the end-to-end latency distribution, sustained
throughput, KV-cache memory, and GPU energy over the measurement window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.agents import AgentConfig, AgentRunResult, create_agent
from repro.core.metrics import GpuRuntimeBreakdown, LatencyStats, mean
from repro.llm import EngineConfig, LLMClient, LLMEngine
from repro.llm.models import get_model
from repro.serving.loadgen import ArrivalPlan, poisson_plan, sequential_plan
from repro.sim import Environment, RandomStream
from repro.workloads import create_workload
from repro.workloads.base import Workload


@dataclass(frozen=True)
class ServingConfig:
    """Configuration of one serving experiment."""

    agent: str = "react"
    benchmark: str = "hotpotqa"
    model: str = "8b"
    enable_prefix_caching: bool = True
    agent_config: AgentConfig = field(default_factory=AgentConfig)
    seed: int = 0
    # Simulation-speed knob: how many decode tokens one engine step may batch.
    max_decode_chunk: int = 4
    max_concurrency: Optional[int] = None


@dataclass
class ServingResult:
    """Outcome of one serving run at a fixed offered load."""

    config: ServingConfig
    offered_qps: float
    num_requests: int
    results: List[AgentRunResult] = field(default_factory=list)
    duration: float = 0.0
    energy_wh: float = 0.0
    gpu: GpuRuntimeBreakdown = field(default_factory=lambda: GpuRuntimeBreakdown(0, 0, 0))
    kv_average_bytes: float = 0.0
    kv_max_bytes: float = 0.0
    preemptions: int = 0
    prefix_cache_hit_rate: float = 0.0

    @property
    def num_completed(self) -> int:
        return len(self.results)

    @property
    def latencies(self) -> List[float]:
        return [result.e2e_latency for result in self.results]

    @property
    def latency_stats(self) -> LatencyStats:
        return LatencyStats.from_values(self.latencies)

    @property
    def mean_latency(self) -> float:
        return mean(self.latencies)

    @property
    def p95_latency(self) -> float:
        return self.latency_stats.p95

    @property
    def throughput_qps(self) -> float:
        if self.duration <= 0:
            return 0.0
        return self.num_completed / self.duration

    @property
    def energy_wh_per_query(self) -> float:
        if self.num_completed == 0:
            return 0.0
        return self.energy_wh / self.num_completed

    @property
    def accuracy(self) -> float:
        if not self.results:
            return 0.0
        return mean([1.0 if result.answer_correct else 0.0 for result in self.results])


class AgentServer:
    """Serving system binding a workload, an agent workflow, and an engine."""

    def __init__(self, config: ServingConfig):
        self.config = config
        self.env = Environment()
        self.engine = LLMEngine(
            self.env,
            EngineConfig(
                model=get_model(config.model),
                enable_prefix_caching=config.enable_prefix_caching,
                max_decode_chunk=config.max_decode_chunk,
            ),
        )
        self.client = LLMClient(self.env, self.engine)
        self.workload: Workload = create_workload(config.benchmark, seed=config.seed)
        self.stream = RandomStream(config.seed, f"serving/{config.agent}/{config.benchmark}")
        self._needs_tools = config.agent.lower() not in ("cot", "chatbot")
        self._active_workers = 0

    # -- worker ----------------------------------------------------------------
    def _make_agent(self):
        toolset = (
            self.workload.build_toolset(self.env, self.client.tokenizer, self.client)
            if self._needs_tools
            else None
        )
        return create_agent(
            self.config.agent,
            env=self.env,
            client=self.client,
            workload=self.workload,
            toolset=toolset,
            config=self.config.agent_config,
            seed_stream=self.stream.substream(f"agent-worker/{self._active_workers}"),
        )

    def _worker(self, task, collected: List[AgentRunResult]):
        self._active_workers += 1
        agent = self._make_agent()
        result = yield agent.run_process(task)
        collected.append(result)
        self._active_workers -= 1

    def _request_generator(self, plan: ArrivalPlan, collected: List[AgentRunResult]):
        previous = 0.0
        for arrival, task in zip(plan.arrival_times, plan.tasks):
            gap = arrival - previous
            if gap > 0:
                yield self.env.timeout(gap)
            previous = arrival
            self.env.process(self._worker(task, collected))

    # -- open-loop serving -------------------------------------------------------
    def serve(self, plan: ArrivalPlan) -> ServingResult:
        """Serve an arrival plan to completion and collect serving metrics."""
        collected: List[AgentRunResult] = []
        energy_before = self.engine.energy.snapshot()
        start_time = self.env.now
        generator = self.env.process(self._request_generator(plan, collected))
        self.env.run(generator)
        # Drain: run until every issued request has been answered (or no more
        # simulation events remain, which would indicate a deadlocked worker).
        while len(collected) < len(plan) and self.env.peek() != float("inf"):
            self.env.step()
        end_time = self.env.now
        duration = max(end_time - start_time, 1e-9)

        window = self.engine.energy.since(energy_before)
        gpu = GpuRuntimeBreakdown.from_engine_window(
            self.engine.runtime_breakdown(start_time, end_time)
        )
        kv_stats = self.engine.kv_memory_stats(start_time, end_time)
        return ServingResult(
            config=self.config,
            offered_qps=plan.offered_qps,
            num_requests=len(plan),
            results=collected,
            duration=duration,
            energy_wh=window.total_wh,
            gpu=gpu,
            kv_average_bytes=kv_stats["average_bytes"],
            kv_max_bytes=kv_stats["max_bytes"],
            preemptions=self.engine.scheduler.preemption_count,
            prefix_cache_hit_rate=self.engine.kv_cache.hit_rate(),
        )

    # -- closed-loop sequential serving -------------------------------------------
    def serve_sequential(self, num_requests: int) -> ServingResult:
        """Process requests strictly one at a time (the paper's sequential baseline)."""
        plan = sequential_plan(self.workload, num_requests)
        collected: List[AgentRunResult] = []
        energy_before = self.engine.energy.snapshot()
        start_time = self.env.now
        for task in plan.tasks:
            agent = self._make_agent()
            result = self.env.run(agent.run_process(task))
            collected.append(result)
        duration = max(self.env.now - start_time, 1e-9)
        window = self.engine.energy.since(energy_before)
        gpu = GpuRuntimeBreakdown.from_engine_window(
            self.engine.runtime_breakdown(start_time, self.env.now)
        )
        kv_stats = self.engine.kv_memory_stats(start_time, self.env.now)
        return ServingResult(
            config=self.config,
            offered_qps=0.0,
            num_requests=num_requests,
            results=collected,
            duration=duration,
            energy_wh=window.total_wh,
            gpu=gpu,
            kv_average_bytes=kv_stats["average_bytes"],
            kv_max_bytes=kv_stats["max_bytes"],
            preemptions=self.engine.scheduler.preemption_count,
            prefix_cache_hit_rate=self.engine.kv_cache.hit_rate(),
        )


def run_at_qps(
    config: ServingConfig,
    qps: float,
    num_requests: int = 60,
    task_pool_size: int = 48,
) -> ServingResult:
    """Convenience wrapper: build a server, drive it at ``qps``, return the result."""
    server = AgentServer(config)
    plan = poisson_plan(
        server.workload,
        qps=qps,
        num_requests=num_requests,
        stream=server.stream.substream(f"plan/{qps}"),
        task_pool_size=task_pool_size,
    )
    return server.serve(plan)
