"""The agent serving system (paper Fig. 10) -- legacy-compatible front end.

Historically this module owned the whole serving path; it is now a thin
compatibility shim over the unified experiment API (:mod:`repro.api`): a
:class:`ServingConfig` is translated into an
:class:`~repro.api.spec.ExperimentSpec`, assembly is delegated to
:class:`~repro.api.builder.SystemBuilder`, and the serving loop lives in
:class:`~repro.api.runners.ServingDriver`.  Signatures and results are
unchanged -- a one-replica FCFS run through the new layer reproduces the
historical metrics bit-for-bit -- and ``ServingConfig.max_concurrency`` is
now enforced: excess requests queue at the server door and their admission
delay is reported via :attr:`ServingResult.admission_delays`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.agents import AgentConfig, AgentRunResult
from repro.core.metrics import (
    GpuRuntimeBreakdown,
    LatencyStats,
    PoolStats,
    TrafficClassStats,
    mean,
    percentile,
)
from repro.serving.admission import ClassAdmissionStats
from repro.serving.cluster import ScalingEvent
from repro.serving.loadgen import ArrivalPlan
from repro.serving.sessions import SessionStats
from repro.serving.tenants import TenantFairnessStats


@dataclass(frozen=True)
class ServingConfig:
    """Configuration of one serving experiment."""

    agent: str = "react"
    benchmark: str = "hotpotqa"
    model: str = "8b"
    enable_prefix_caching: bool = True
    agent_config: AgentConfig = field(default_factory=AgentConfig)
    seed: int = 0
    # Simulation-speed knob: how many decode tokens one engine step may batch.
    max_decode_chunk: int = 4
    # Maximum agent workers running at once; excess requests queue at the
    # server door (None = unlimited).
    max_concurrency: Optional[int] = None


@dataclass
class ServingResult:
    """Outcome of one serving run at a fixed offered load."""

    config: ServingConfig
    offered_qps: float
    num_requests: int
    results: List[AgentRunResult] = field(default_factory=list)
    duration: float = 0.0
    energy_wh: float = 0.0
    gpu: GpuRuntimeBreakdown = field(default_factory=lambda: GpuRuntimeBreakdown(0, 0, 0))
    kv_average_bytes: float = 0.0
    kv_max_bytes: float = 0.0
    preemptions: int = 0
    prefix_cache_hit_rate: float = 0.0
    num_replicas: int = 1
    # Requests routed to each replica, by replica index.
    routed_counts: List[int] = field(default_factory=list)
    # Per-request delay between arrival and worker admission (all zero unless
    # max_concurrency gated the door).
    admission_delays: List[float] = field(default_factory=list)
    # -- fleet reporting (single-pool runs have one "default" entry) ---------
    # Engine-level metrics per replica pool over the measured window.
    pool_stats: Dict[str, PoolStats] = field(default_factory=dict)
    # Request-level metrics per traffic class (empty without a mixture).
    class_stats: Dict[str, TrafficClassStats] = field(default_factory=dict)
    # Replica-seconds paid for across every pool (cost accounting).
    replica_seconds: float = 0.0
    # USD cost of those replica-seconds, priced per pool's hardware (GPU
    # on-demand price x TP degree), summed across pools.
    cost_usd: float = 0.0
    # Prompt + output tokens of the measured requests (the denominator of
    # cost_per_1k_tokens).
    served_tokens: float = 0.0
    # Elastic-capacity actions taken during the run (empty without autoscaling).
    scaling_events: List[ScalingEvent] = field(default_factory=list)
    # Door-level admission accounting per traffic class ("" = unlabelled
    # requests).  Driver-served runs record every arrival here, open door or
    # not; the counts cover the whole run (door events cannot be warm-up
    # trimmed the way completion metrics are).
    admission_stats: Dict[str, ClassAdmissionStats] = field(default_factory=dict)
    # Experiment-wide p95 latency SLO declared in MeasurementSpec (None = none).
    slo_p95_s: Optional[float] = None
    # -- predictive-autoscaling telemetry (None/empty without a forecaster) --
    # Mean absolute arrival-rate forecast error (req/s) over matured forecasts.
    forecast_mae: Optional[float] = None
    # Per forecast-triggered grow: seconds of head start over the reactive
    # trigger (queue pressure crossing the scale-up threshold).
    scale_ahead_leads: List[float] = field(default_factory=list)
    # Per-tenant fairness accounting over the contended window (None for
    # untenanted runs).
    tenant_stats: Optional[TenantFairnessStats] = None
    # Multi-turn session accounting (None for sessionless runs).
    session_stats: Optional[SessionStats] = None
    # -- engine-fidelity telemetry (all zero when the features are off) ------
    # Seconds decode sequences spent blocked behind atomic prefill steps
    # (head-of-line blocking; chunked prefill drives this toward zero).
    prefill_hol_block_s: float = 0.0
    # Speculative decoding: per-sequence verify events and the draft tokens
    # they accepted (excluding bonus tokens), summed across replicas.
    spec_sequence_steps: int = 0
    spec_accepted_tokens: int = 0
    # Joules spent in draft-model forward passes within the measured window.
    draft_energy_j: float = 0.0

    @property
    def mean_accepted_per_step(self) -> Optional[float]:
        """Mean draft tokens accepted per verify (None without speculation)."""
        if self.spec_sequence_steps == 0:
            return None
        return self.spec_accepted_tokens / self.spec_sequence_steps

    @property
    def num_completed(self) -> int:
        return len(self.results)

    @property
    def scale_ahead_lead_s(self) -> Optional[float]:
        """Mean scale-ahead lead time (``None`` without predictive grows)."""
        if not self.scale_ahead_leads:
            return None
        return mean(self.scale_ahead_leads)

    @property
    def latencies(self) -> List[float]:
        return [result.e2e_latency for result in self.results]

    @property
    def latency_stats(self) -> LatencyStats:
        return LatencyStats.from_values(self.latencies)

    @property
    def mean_latency(self) -> float:
        return mean(self.latencies)

    @property
    def p95_latency(self) -> float:
        return self.latency_stats.p95

    @property
    def throughput_qps(self) -> float:
        if self.duration <= 0:
            return 0.0
        return self.num_completed / self.duration

    @property
    def energy_wh_per_query(self) -> float:
        if self.num_completed == 0:
            return 0.0
        return self.energy_wh / self.num_completed

    @property
    def energy_j(self) -> float:
        """Measured-window energy in joules (the Wh figure, SI units)."""
        return self.energy_wh * 3600.0

    @property
    def cost_per_1k_tokens(self) -> float:
        """USD per 1000 served tokens (0.0 when nothing was served)."""
        if self.served_tokens <= 0:
            return 0.0
        return self.cost_usd / (self.served_tokens / 1000.0)

    @property
    def accuracy(self) -> float:
        if not self.results:
            return 0.0
        return mean([1.0 if result.answer_correct else 0.0 for result in self.results])

    # -- admission control ----------------------------------------------------
    @property
    def num_queued(self) -> int:
        """Requests that waited at the door before a worker slot opened."""
        return sum(1 for delay in self.admission_delays if delay > 0)

    @property
    def mean_admission_delay(self) -> float:
        return mean(self.admission_delays)

    @property
    def p95_admission_delay(self) -> float:
        if not self.admission_delays:
            return 0.0
        return percentile(self.admission_delays, 95.0)

    @property
    def num_rejected(self) -> int:
        """Requests the admission policy shed instead of serving."""
        return sum(stats.rejected for stats in self.admission_stats.values())

    @property
    def rejection_rate(self) -> float:
        """Shed fraction of the offered load (0.0 with an open door)."""
        offered = sum(stats.offered for stats in self.admission_stats.values())
        if offered == 0:
            return 0.0
        return self.num_rejected / offered

    @property
    def shed_tokens(self) -> float:
        """Estimated decode tokens the fleet avoided by shedding requests."""
        return sum(stats.shed_tokens for stats in self.admission_stats.values())

    @property
    def slo_attainment(self) -> Optional[float]:
        """Fraction of measured requests meeting the experiment-wide p95 SLO.

        ``None`` when the spec declares no experiment-wide SLO; per-class
        SLOs live in :attr:`class_stats`.
        """
        if self.slo_p95_s is None:
            return None
        if not self.results:
            return 0.0
        return mean(
            [1.0 if latency <= self.slo_p95_s else 0.0 for latency in self.latencies]
        )

    # -- per-tenant fairness ---------------------------------------------------
    @property
    def served_token_ratio(self) -> Optional[float]:
        """Served-token max/min ratio across contending tenants (1.0 = fair).

        ``None`` for untenanted runs; ``inf`` when a contending tenant was
        fully starved within the contended window.
        """
        if self.tenant_stats is None:
            return None
        return self.tenant_stats.max_min_ratio

    @property
    def jain_fairness(self) -> Optional[float]:
        """Jain's fairness index over per-tenant served tokens (``None`` untenanted)."""
        if self.tenant_stats is None:
            return None
        return self.tenant_stats.jain

    @property
    def tenant_throttle_rate(self) -> Optional[float]:
        """Door rejection fraction of tenanted offers (``None`` untenanted)."""
        if self.tenant_stats is None:
            return None
        return self.tenant_stats.throttle_rate

    # -- multi-turn sessions ----------------------------------------------------
    @property
    def cross_turn_hit_rate(self) -> Optional[float]:
        """Prefix-cache hit rate over later-turn prompt tokens (``None`` sessionless).

        Measures how much conversation context survived the think-time gap:
        1.0 means every later turn re-read its history straight from the KV
        cache of the replica that served the previous turn.
        """
        if self.session_stats is None:
            return None
        return self.session_stats.cross_turn_hit_rate

    @property
    def num_sessions(self) -> Optional[int]:
        """Interactions started during the run (``None`` for sessionless runs)."""
        if self.session_stats is None:
            return None
        return self.session_stats.num_sessions

    @property
    def completed_sessions(self) -> Optional[int]:
        """Interactions that finished their final turn (``None`` sessionless)."""
        if self.session_stats is None:
            return None
        return self.session_stats.completed_sessions

    @property
    def total_turns(self) -> Optional[int]:
        """Turns served across every session (``None`` for sessionless runs)."""
        if self.session_stats is None:
            return None
        return self.session_stats.total_turns

    @property
    def mean_turns_per_session(self) -> Optional[float]:
        """Mean turns served per started session (``None`` sessionless)."""
        if self.session_stats is None:
            return None
        return self.session_stats.mean_turns_per_session

    @property
    def affinity_invalidations(self) -> Optional[int]:
        """Sticky-routing re-pins: spills plus homes lost to replica churn."""
        if self.session_stats is None:
            return None
        return self.session_stats.affinity_invalidations

    def per_class_admission(self) -> List[Dict[str, object]]:
        """One flat row per traffic class of the door accounting."""
        return [stats.as_dict() for stats in self.admission_stats.values()]


def _spec_from_config(config: ServingConfig, arrival) -> "object":
    """Translate a legacy ServingConfig (+ arrival) into an ExperimentSpec."""
    from repro.api.spec import ExperimentSpec

    return ExperimentSpec(
        agent=config.agent,
        workload=config.benchmark,
        model=config.model,
        enable_prefix_caching=config.enable_prefix_caching,
        agent_config=config.agent_config,
        arrival=arrival,
        seed=config.seed,
        max_decode_chunk=config.max_decode_chunk,
        max_concurrency=config.max_concurrency,
    )


class AgentServer:
    """Serving system binding a workload, an agent workflow, and an engine.

    Compatibility shim: assembly and the serving loop are delegated to
    :mod:`repro.api`; the historical attributes (``env``, ``engine``,
    ``client``, ``workload``, ``stream``) remain available.
    """

    def __init__(self, config: ServingConfig):
        from repro.api.builder import SystemBuilder
        from repro.api.runners import ServingDriver
        from repro.api.spec import ArrivalSpec

        self.config = config
        spec = _spec_from_config(
            config, arrival=ArrivalSpec(process="sequential", num_requests=1)
        )
        self._system = SystemBuilder(spec).build()
        self._driver = ServingDriver(self._system)
        self.env = self._system.env
        self.cluster = self._system.cluster
        self.engine = self.cluster.replicas[0]
        self.client = self._system.client
        self.workload = self._system.workload
        self.stream = self._system.stream

    # -- open-loop serving -------------------------------------------------------
    def serve(self, plan: ArrivalPlan) -> ServingResult:
        """Serve an arrival plan to completion and collect serving metrics."""
        return self._driver.serve(plan)

    # -- closed-loop sequential serving -------------------------------------------
    def serve_sequential(self, num_requests: int) -> ServingResult:
        """Process requests strictly one at a time (the paper's sequential baseline)."""
        return self._driver.serve_sequential(num_requests)


def run_at_qps(
    config: ServingConfig,
    qps: float,
    num_requests: int = 60,
    task_pool_size: int = 48,
) -> ServingResult:
    """Convenience wrapper: drive ``config`` at ``qps`` through the unified API."""
    from repro.api.runners import run_experiment
    from repro.api.spec import ArrivalSpec

    spec = _spec_from_config(
        config,
        arrival=ArrivalSpec(
            process="poisson",
            qps=qps,
            num_requests=num_requests,
            task_pool_size=task_pool_size,
        ),
    )
    return run_experiment(spec).serving
