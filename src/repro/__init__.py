"""repro: reproduction of "The Cost of Dynamic Reasoning" (HPCA 2026).

A simulation-based characterization suite for LLM-based AI agents and
test-time scaling from an AI-infrastructure perspective.  The package is
organised bottom-up:

* :mod:`repro.sim` -- discrete-event simulation kernel.
* :mod:`repro.llm` -- vLLM-style serving engine (continuous batching, paged KV
  cache, prefix caching) over an A100/Llama-3.1 roofline and energy model.
* :mod:`repro.oracle` -- calibrated synthetic LLM behaviour/accuracy models.
* :mod:`repro.tools` / :mod:`repro.workloads` -- simulated tool environments
  and the HotpotQA / WebShop / MATH / HumanEval / ShareGPT benchmarks.
* :mod:`repro.agents` -- CoT, ReAct, Reflexion, LATS, and LLMCompiler
  workflows plus the single-turn chatbot baseline.
* :mod:`repro.serving` -- the agent serving system: multi-replica clusters,
  pluggable request routers, and the load generator.
* :mod:`repro.core` -- the characterization framework (latency/GPU/token/KV/
  energy metrics, Pareto analysis, datacenter projections).
* :mod:`repro.api` -- the unified experiment API: declarative
  ``ExperimentSpec``, ``SystemBuilder`` assembly, and unified ``ResultSet``.
* :mod:`repro.analysis` -- one function per paper figure and table.

Quickstart::

    from repro.api import ArrivalSpec, ExperimentSpec, run_experiment

    spec = ExperimentSpec(
        agent="react",
        workload="hotpotqa",
        replicas=2,
        router="least-loaded",
        arrival=ArrivalSpec(process="poisson", qps=1.0, num_requests=20),
    )
    print(run_experiment(spec).summary())
"""

__version__ = "1.1.0"

__all__ = ["__version__"]
