"""repro: reproduction of "The Cost of Dynamic Reasoning" (HPCA 2026).

A simulation-based characterization suite for LLM-based AI agents and
test-time scaling from an AI-infrastructure perspective.  The package is
organised bottom-up:

* :mod:`repro.sim` -- discrete-event simulation kernel.
* :mod:`repro.llm` -- vLLM-style serving engine (continuous batching, paged KV
  cache, prefix caching) over an A100/Llama-3.1 roofline and energy model.
* :mod:`repro.oracle` -- calibrated synthetic LLM behaviour/accuracy models.
* :mod:`repro.tools` / :mod:`repro.workloads` -- simulated tool environments
  and the HotpotQA / WebShop / MATH / HumanEval / ShareGPT benchmarks.
* :mod:`repro.agents` -- CoT, ReAct, Reflexion, LATS, and LLMCompiler
  workflows plus the single-turn chatbot baseline.
* :mod:`repro.serving` -- the agent serving system and load generator.
* :mod:`repro.core` -- the characterization framework (latency/GPU/token/KV/
  energy metrics, Pareto analysis, datacenter projections).
* :mod:`repro.analysis` -- one function per paper figure and table.

Quickstart::

    from repro.core import SingleRequestRunner

    runner = SingleRequestRunner(model="8b")
    result = runner.run("react", "hotpotqa", num_tasks=10)
    print(result.mean_latency, result.accuracy, result.mean_energy_wh)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
