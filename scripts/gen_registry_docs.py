#!/usr/bin/env python
"""Autogenerate docs/REGISTRIES.md from the live policy registries.

The registry tables in prose documentation rot the moment someone
registers a new policy; this script makes the document a *projection* of
the code instead.  It imports every pluggable registry (agents,
workloads, scheduler policies, router policies, admission policies,
arrival forecasters, rate shapes), renders one table per registry --
name, implementing class, and the first line of the class docstring --
and writes ``docs/REGISTRIES.md``.

Modes::

    PYTHONPATH=src python scripts/gen_registry_docs.py           # rewrite
    PYTHONPATH=src python scripts/gen_registry_docs.py --check   # CI lane

``--check`` exits non-zero (printing a unified diff) when the committed
file does not match what the live registries would generate -- the CI
docs lane and ``tests/test_docs.py`` both run it, so a PR that adds a
policy without regenerating the document fails fast.
"""

from __future__ import annotations

import argparse
import difflib
import sys
from pathlib import Path
from typing import Callable, List, Mapping, Sequence, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.agents.registry import AGENT_CLASSES  # noqa: E402
from repro.llm.hardware import GPU_CATALOG  # noqa: E402
from repro.llm.scheduler import SCHEDULER_POLICIES  # noqa: E402
from repro.serving.admission import ADMISSION_POLICIES  # noqa: E402
from repro.serving.cluster import ROUTER_POLICIES  # noqa: E402
from repro.serving.forecast import FORECASTERS  # noqa: E402
from repro.serving.shapes import RATE_SHAPES  # noqa: E402
from repro.workloads import available_workloads, create_workload  # noqa: E402

OUTPUT_PATH = REPO_ROOT / "docs" / "REGISTRIES.md"

HEADER = """\
# Pluggable registries

> **Generated file — do not edit.**  Regenerate with
> `PYTHONPATH=src python scripts/gen_registry_docs.py` after registering a
> new policy; CI (and `tests/test_docs.py`) fails when this file is stale.

Every policy family below is a case-insensitive name → class registry
(see `src/repro/registry.py`).  Spec fields name entries by their
registry name (`ExperimentSpec(scheduler="vtc", router="session-affinity")`),
and each family exposes a `register_*` hook so external code can add
policies without touching this repository.
"""

#: (section title, spec field that names entries, registering module, rows).
Registry = Tuple[str, str, str, Mapping[str, type]]


def _first_doc_line(obj: object) -> str:
    doc = getattr(obj, "__doc__", None) or ""
    for line in doc.strip().splitlines():
        line = line.strip()
        if line:
            return line
    return ""


def _workload_classes() -> Mapping[str, type]:
    """Materialise each registered workload once to recover its class."""
    return {name: type(create_workload(name, seed=0)) for name in available_workloads()}


def _registries() -> Sequence[Registry]:
    return (
        (
            "Agents",
            "`ExperimentSpec.agent` / `WeightedWorkload.agent`",
            "`repro.agents.registry`",
            AGENT_CLASSES,
        ),
        (
            "Workloads",
            "`ExperimentSpec.workload` / `WeightedWorkload.workload`",
            "`repro.workloads` (`register_workload`)",
            _workload_classes(),
        ),
        (
            "Scheduler policies",
            "`ExperimentSpec.scheduler` / `PoolSpec.scheduler`",
            "`repro.llm.scheduler` (`register_scheduler_policy`)",
            SCHEDULER_POLICIES,
        ),
        (
            "Router policies",
            "`ExperimentSpec.router` / `PoolSpec.router`",
            "`repro.serving.cluster` (`register_router_policy`)",
            ROUTER_POLICIES,
        ),
        (
            "Admission policies",
            "`AdmissionSpec.policy`",
            "`repro.serving.admission` (`register_admission_policy`)",
            ADMISSION_POLICIES,
        ),
        (
            "Arrival forecasters",
            "`AutoscalerSpec.forecaster`",
            "`repro.serving.forecast` (`register_forecaster`)",
            FORECASTERS,
        ),
        (
            "Rate shapes",
            "`ArrivalSpec.shape` / `WeightedWorkload.shape`",
            "`repro.serving.shapes` (`register_shape`)",
            RATE_SHAPES,
        ),
    )


def _render_gpu_catalog() -> str:
    """The GPU catalog section: instances, not classes, so it gets its own
    table shape (roofline, power, and price columns instead of docstrings)."""
    parts: List[str] = ["\n## GPU catalog\n"]
    parts.append(
        "Named by `HardwareSpec.gpu` (on `PoolSpec.hardware` /\n"
        "`ExperimentSpec.hardware`); registered in `repro.llm.hardware`\n"
        "(`register_gpu`).  Prices are GCP us-central1 on-demand per\n"
        "GPU-hour; rooflines are vendor datasheet numbers (dense bf16).\n"
    )
    parts.append(
        "\n| name | aliases | $/GPU-hr | peak TFLOP/s | HBM GB/s | mem GB "
        "| idle/decode/prefill W |"
    )
    parts.append("\n| --- | --- | --- | --- | --- | --- | --- |")
    by_spec: dict = {}
    for key, spec in GPU_CATALOG.items():
        by_spec.setdefault(id(spec), [spec, []])[1].append(key)
    for spec, keys in sorted(by_spec.values(), key=lambda entry: entry[0].name):
        aliases = sorted(key for key in keys if key != spec.name.lower())
        parts.append(
            f"\n| `{spec.name}` | {', '.join(f'`{a}`' for a in aliases) or '--'} "
            f"| {spec.cost_per_hour:.2f} | {spec.peak_flops / 1e12:.0f} "
            f"| {spec.mem_bandwidth / 1e9:,.0f} | {spec.mem_capacity / 1e9:.0f} "
            f"| {spec.idle_power_w:.0f}/{spec.decode_power_w:.0f}/"
            f"{spec.prefill_power_w:.0f} |"
        )
    parts.append("\n")
    return "".join(parts)


def render() -> str:
    """The full REGISTRIES.md content the live registries imply."""
    parts: List[str] = [HEADER]
    for title, field, module, entries in _registries():
        parts.append(f"\n## {title}\n")
        parts.append(f"Named by {field}; registered in {module}.\n")
        parts.append("\n| name | class | summary |")
        parts.append("\n| --- | --- | --- |")
        for name in sorted(entries):
            cls = entries[name]
            parts.append(f"\n| `{name}` | `{cls.__name__}` | {_first_doc_line(cls)} |")
        parts.append("\n")
    parts.append(_render_gpu_catalog())
    return "".join(parts)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify the committed file matches the registries (exit 1 when stale)",
    )
    options = parser.parse_args(argv)

    content = render()
    if options.check:
        on_disk = OUTPUT_PATH.read_text() if OUTPUT_PATH.exists() else ""
        if on_disk == content:
            print(f"{OUTPUT_PATH.relative_to(REPO_ROOT)} is up to date")
            return 0
        diff = difflib.unified_diff(
            on_disk.splitlines(keepends=True),
            content.splitlines(keepends=True),
            fromfile="docs/REGISTRIES.md (committed)",
            tofile="docs/REGISTRIES.md (generated)",
        )
        sys.stderr.write("".join(diff))
        sys.stderr.write(
            "\ndocs/REGISTRIES.md is stale; regenerate with:\n"
            "    PYTHONPATH=src python scripts/gen_registry_docs.py\n"
        )
        return 1

    OUTPUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT_PATH.write_text(content)
    print(f"wrote {OUTPUT_PATH.relative_to(REPO_ROOT)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
