#!/usr/bin/env bash
# Regenerate the committed pytest-benchmark baseline the CI `bench` job
# compares against (benchmarks/BENCH_baseline.json).
#
# Run this after an *accepted* performance change -- a faster hot path, a new
# benchmark file, or an intentional slowdown traded for a feature -- then
# commit the refreshed baseline together with the change that motivated it.
# The bench job fails any benchmark whose mean regresses more than 25%
# against this file, so a stale baseline turns every future run red.
#
# Usage, from the repository root:
#   scripts/refresh_bench_baseline.sh
set -euo pipefail

cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
python -m pytest benchmarks -q \
  --benchmark-json=benchmarks/BENCH_baseline.json

echo
echo "Refreshed benchmarks/BENCH_baseline.json -- review and commit it"
echo "together with the change that motivated the refresh."
