#!/usr/bin/env python
"""Profile the simulator hot path over a representative Table IV run.

One-command perf baseline for future optimisation work: runs the Table III
characterization mix (ShareGPT chatbot plus the paper's Reflexion and LATS
configurations, both models) at exact token-level fidelity, then prints

* wall-clock, simulated-events processed, and simulated-events/sec, and
* the top cumulative-time hot spots from cProfile.

Usage, from the repository root::

    PYTHONPATH=src python scripts/profile_sim.py [--tasks N] [--top N]
        [--no-fast-forward] [--sort tottime|cumulative]

``--no-fast-forward`` profiles the reference per-token decode path instead
of the default fast-forwarding one, which is how the decode fast-forward
speedup quoted in the README was measured.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
import time


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tasks", type=int, default=8, help="tasks per agent workload")
    parser.add_argument("--top", type=int, default=20, help="hot spots to print")
    parser.add_argument(
        "--sort",
        default="cumulative",
        choices=("cumulative", "tottime"),
        help="pstats sort key",
    )
    parser.add_argument(
        "--no-fast-forward",
        action="store_true",
        help="profile the reference per-token decode path",
    )
    args = parser.parse_args()

    from repro.analysis.tables import table3, table4
    from repro.sim import core as sim_core

    if args.no_fast_forward:
        import dataclasses

        from repro.api.builder import SystemBuilder

        original = SystemBuilder.engine_config

        def forced(self):
            return dataclasses.replace(original(self), decode_fast_forward=False)

        SystemBuilder.engine_config = forced

    # Every Environment the study builds reports into one counter so the
    # events/sec figure covers the whole run.
    events_total = 0
    original_step = sim_core.Environment.step

    def counting_step(self):
        nonlocal events_total
        events_total += 1
        return original_step(self)

    sim_core.Environment.step = counting_step

    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    result = table3(models=("8b", "70b"), num_tasks=args.tasks, seed=0, max_decode_chunk=1)
    table4(result)
    profiler.disable()
    elapsed = time.perf_counter() - started

    mode = "per-token reference" if args.no_fast_forward else "decode fast-forward"
    print(f"Table IV characterization run ({mode}, tasks={args.tasks})")
    print(f"  wall-clock:           {elapsed:.2f} s")
    print(f"  simulated events:     {events_total}")
    print(f"  simulated events/sec: {events_total / elapsed:,.0f}")
    print()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats(args.sort).print_stats(args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
