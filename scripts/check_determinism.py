#!/usr/bin/env python
"""Hash-seed determinism check: the simulator's output must not depend on
``PYTHONHASHSEED``.

The reproduction's headline contract is bit-for-bit determinism: the same
:class:`~repro.api.ExperimentSpec` produces the same :class:`ResultSet`
on every run, every machine, every Python process.  The easiest way to
break that silently is to iterate a set (or an insertion-unordered dict)
of hash-randomised keys somewhere in the scheduling or aggregation path
-- the tests all pass within one process, and results drift between
processes.  This script pins the contract the way CI exercises it: run a
small but representative experiment battery -- including the chunked
prefill and speculative-decoding fidelity paths -- in two fresh
interpreters with *different* hash seeds, serialise every result to
canonical JSON (full latency vectors, not just summaries), and diff.

Modes::

    PYTHONPATH=src python scripts/check_determinism.py           # CI lane
    PYTHONPATH=src python scripts/check_determinism.py --emit    # one run

The default mode spawns itself twice (``PYTHONHASHSEED=0`` and ``=42``)
and fails loudly on the first differing byte; ``--emit`` prints one
battery's canonical JSON to stdout (useful for diffing across machines
or commits by hand).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

HASH_SEEDS = ("0", "42")


def battery() -> dict:
    """Run the experiment battery and return a JSON-ready payload."""
    from repro.api import (
        ArrivalSpec,
        ExperimentSpec,
        SpeculativeSpec,
        WeightedWorkload,
        run_experiment,
    )
    from repro.agents import AgentConfig

    def mixture(**overrides) -> ExperimentSpec:
        return ExperimentSpec(
            workloads=(
                WeightedWorkload(
                    agent="chatbot", workload="sharegpt", weight=0.7, name="chat"
                ),
                WeightedWorkload(
                    agent="react", workload="hotpotqa", weight=0.3, name="agent"
                ),
            ),
            agent_config=AgentConfig(max_iterations=4),
            arrival=ArrivalSpec(
                process="poisson", qps=8.0, num_requests=12, task_pool_size=6
            ),
            max_num_seqs=4,
            **overrides,
        )

    specs = {
        "baseline": mixture(),
        "chunked-prefill": mixture(prefill_chunk_tokens=128),
        "speculative": mixture(speculative=SpeculativeSpec()),
        "chunked+speculative": mixture(
            prefill_chunk_tokens=128, speculative=SpeculativeSpec()
        ),
        "tenanted-vtc": ExperimentSpec(
            agent="chatbot",
            workload="sharegpt",
            scheduler="vtc",
            arrival=ArrivalSpec(
                process="poisson",
                qps=8.0,
                num_requests=12,
                task_pool_size=6,
            ),
            max_num_seqs=2,
        ),
    }
    payload = {}
    for name, spec in specs.items():
        result = run_experiment(spec)
        payload[name] = {
            "summary": result.summary(),
            # Full vectors: a summary can agree while orderings drift.
            "latencies": result.latencies,
            "spec": spec.to_dict(),
        }
    return payload


def emit() -> None:
    print(json.dumps(battery(), sort_keys=True, indent=1))


def compare() -> int:
    outputs = {}
    for seed in HASH_SEEDS:
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = seed
        env["PYTHONPATH"] = f"{REPO_ROOT / 'src'}" + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        print(f"running battery under PYTHONHASHSEED={seed} ...", flush=True)
        proc = subprocess.run(
            [sys.executable, str(Path(__file__).resolve()), "--emit"],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout)
            sys.stderr.write(proc.stderr)
            print(f"FAIL: battery crashed under PYTHONHASHSEED={seed}")
            return 1
        outputs[seed] = proc.stdout
    first, second = (outputs[seed] for seed in HASH_SEEDS)
    if first != second:
        a_lines, b_lines = first.splitlines(), second.splitlines()
        for index, (a, b) in enumerate(zip(a_lines, b_lines)):
            if a != b:
                print(f"FAIL: outputs diverge at line {index + 1}:")
                print(f"  PYTHONHASHSEED={HASH_SEEDS[0]}: {a}")
                print(f"  PYTHONHASHSEED={HASH_SEEDS[1]}: {b}")
                break
        else:
            print("FAIL: outputs diverge in length")
        print(
            "The simulator's results depend on hash randomisation -- look "
            "for iteration over a set or unordered dict on the run path."
        )
        return 1
    print(
        f"OK: identical canonical output ({len(first)} bytes) under "
        f"PYTHONHASHSEED={{{', '.join(HASH_SEEDS)}}}"
    )
    return 0


def main() -> int:
    if "--emit" in sys.argv[1:]:
        emit()
        return 0
    return compare()


if __name__ == "__main__":
    sys.exit(main())
