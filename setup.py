"""Setuptools entry point (kept for environments without PEP 517 tooling)."""

from setuptools import setup

setup()
