"""Figure 14 -- iteration-budget tuning for ReAct (latency, tail, accuracy)."""

from bench_utils import scaled

from repro.analysis import figure14


def test_fig14_iteration_budget_sweep(run_once):
    result = run_once(
        figure14,
        budgets={"hotpotqa": (3, 5, 10, 15, 25), "webshop": (5, 10, 20, 30)},
        num_tasks=scaled(8),
        seed=0,
    )
    print()
    print(result.format())

    for benchmark, sweep in result.sweeps.items():
        points = sorted(sweep.points, key=lambda p: p.config["max_iterations"])

        # Accuracy improves with budget, then saturates.
        assert points[-1].accuracy >= points[0].accuracy
        last_two_gain = points[-1].accuracy - points[-2].accuracy
        first_gain = points[1].accuracy - points[0].accuracy
        assert last_two_gain <= first_gain + 0.15

        # The p95 tail keeps growing with the budget even after accuracy
        # saturates (outlier tasks consume the full budget).
        assert points[-1].p95_latency_s >= points[0].p95_latency_s
        assert points[-1].p95_latency_s >= points[-1].latency_s

        # The efficiency-optimal budget (blue marker) is below the maximum.
        best_efficiency = sweep.best_efficiency()
        assert best_efficiency.config["max_iterations"] < points[-1].config["max_iterations"]
