"""Admission control -- chat SLO protection under the Table IV mixed burst.

Sweeps the admission-policy registry (open door vs deadline-aware shedding)
on a shared pool serving the chat+agent mixture and asserts the qualitative
shape: the open door violates the declared chat p95 SLO and sheds nothing,
while ``slo-shed`` holds the SLO by rejecting a nonzero share of agent work.
"""

from repro.analysis import admission_study


def test_slo_shed_protects_chat_under_agent_burst(run_once):
    study = run_once(
        admission_study,
        policies=("unlimited", "slo-shed"),
    )
    print()
    print(study.format())

    unlimited = study.outcomes["unlimited"]
    shed = study.outcomes["slo-shed"]

    # The open door: the agent burst drags chat past its SLO, nothing is shed.
    assert not study.chat_slo_held("unlimited")
    assert unlimited.num_rejected == 0
    assert unlimited.rejection_rate == 0.0

    # Deadline-aware shedding: chat p95 back inside the SLO, with a nonzero
    # agent rejection rate and priced shed tokens reported per class.
    assert study.chat_slo_held("slo-shed")
    agent_door = shed.admission_stats["agent"]
    assert agent_door.rejected > 0
    assert 0.0 < agent_door.rejection_rate <= 1.0
    assert agent_door.shed_tokens > 0.0
    assert shed.admission_stats["chat"].rejected == 0
    chat = shed.class_stats["chat"]
    assert chat.slo_attainment == 1.0
    # Shedding saves energy relative to serving the full burst.
    assert shed.energy_wh < unlimited.energy_wh
