"""Figure 15 -- few-shot prompting sweep for ReAct."""

from bench_utils import scaled

from repro.analysis import figure15


def test_fig15_few_shot_sweep(run_once):
    result = run_once(
        figure15,
        counts=(0, 1, 2, 3, 5),
        benchmarks=("hotpotqa", "webshop"),
        num_tasks=scaled(8),
        seed=0,
    )
    print()
    print(result.format())

    for benchmark, sweep in result.sweeps.items():
        points = {p.config["num_few_shot"]: p for p in sweep.points}

        # A few examples improve accuracy over zero-shot ...
        assert points[2].accuracy >= points[0].accuracy
        # ... with diminishing (or negative) returns beyond that.
        assert points[5].accuracy <= points[2].accuracy + 0.15

        # Average latency does not grow with more examples: better-guided
        # agents need fewer reasoning steps (the paper's counterintuitive
        # finding), even though each prompt is longer.
        assert points[3].latency_s <= points[0].latency_s * 1.25

        # Efficiency-optimal prompt uses at least one example.
        assert sweep.best_efficiency().config["num_few_shot"] >= 1
