"""Shaped traffic programs -- plan generation and a declarative mini-study.

Two timed probes of the traffic-program surface:

* shaped-plan generation: a thinned square-wave Poisson plan plus a
  superposed per-class shaped mixture, asserting the burst really
  concentrates arrivals inside its window (the thinning must modulate,
  not just decorate), and
* a small fleet-sizing study (2 fleets x steady/burst on the Table IV
  chat+agent mixture) whose replica-seconds vs chat-p95 Pareto frontier
  must stay non-trivial: the lean fleet stays the cheapest frontier
  point and the frontier is never empty.
"""

from repro.analysis import fleet_sizing_study
from repro.serving.loadgen import mixture_plan, shaped_plan
from repro.serving.shapes import SquareWaveShape
from repro.sim.distributions import RandomStream
from repro.workloads import create_workload

BURST = SquareWaveShape(
    base_level=0.25, burst_level=4.0, period_s=40.0, burst_start_s=10.0,
    burst_s=10.0,
)


def _generate_plans():
    chat = create_workload("sharegpt", seed=0)
    agent = create_workload("hotpotqa", seed=0)
    single = shaped_plan(
        chat, qps=4.0, shape=BURST, num_requests=400,
        stream=RandomStream(0, "bench/shaped"), task_pool_size=8,
    )
    mixture = mixture_plan(
        [("chat", chat, 0.5, None), ("agent", agent, 0.5, BURST)],
        qps=4.0, num_requests=400, stream=RandomStream(0, "bench/mixture"),
        task_pool_size=8,
    )
    return single, mixture


def test_shaped_plan_generation(run_once):
    single, mixture = run_once(_generate_plans)

    def burst_fraction(times):
        return len([t for t in times if 10.0 <= (t % 40.0) < 20.0]) / len(times)

    # The burst window is 1/4 of the period but carries 4/4.75 of the mass.
    assert burst_fraction(single.arrival_times) > 0.6
    agent_times = [
        t for t, label in zip(mixture.arrival_times, mixture.traffic_classes)
        if label == "agent"
    ]
    chat_times = [
        t for t, label in zip(mixture.arrival_times, mixture.traffic_classes)
        if label == "chat"
    ]
    # Only the agent class bursts; chat stays roughly uniform.
    assert burst_fraction(agent_times) > 0.6
    assert burst_fraction(chat_times) < 0.45
    assert mixture.arrival_times == sorted(mixture.arrival_times)


def test_fleet_sizing_mini_study(run_once):
    study = run_once(
        fleet_sizing_study,
        qps=5.0,
        num_requests=24,
        fleets=((1, 2), (2, 3)),
    )
    print()
    print(study.format())

    # 2 fleets x 2 traffic shapes, all served.
    assert len(study.result.points) == 4
    for point in study.result.points:
        assert point.outcome.num_completed == 24

    for traffic in ("steady", "burst"):
        frontier = study.frontier(traffic)
        assert frontier, traffic
        # The lean fleet is always the cheapest frontier point.
        assert frontier[0].point.labels["fleet"] == "chat1+agent2"
        # Frontier costs are strictly increasing (non-trivial ordering).
        costs = [entry.cost for entry in frontier]
        assert costs == sorted(costs)
