"""Figure 9 -- effect of prefix caching on LLM inference latency."""

from bench_utils import scaled

from repro.analysis import figure9


def test_fig09_prefix_caching_inference_latency(run_once):
    result = run_once(
        figure9,
        benchmarks=("hotpotqa", "webshop"),
        num_tasks=scaled(5),
        seed=0,
    )
    print()
    print(result.format())

    rows = {(row["agent"], row["benchmark"]): row for row in result.rows()}

    # Prefix caching removes most redundant prefill work for iterative agents
    # (paper: 60.1% average prefill-latency reduction) ...
    assert result.mean_prefill_reduction(exclude_cot=True) > 0.4

    # ... but helps CoT much less, since a single-call request shares little.
    cot_reduction = rows[("cot", "hotpotqa")]["prefill_reduction"]
    react_reduction = rows[("react", "hotpotqa")]["prefill_reduction"]
    assert react_reduction > cot_reduction

    # Decoding work itself is unchanged; total inference latency drops.
    for row in result.rows():
        assert row["decode_s_cache"] > 0
        assert row["inference_s_cache"] <= row["inference_s_no_cache"] + 1e-6
