"""Figure 13 -- accuracy vs latency Pareto analysis across agent design points."""

from bench_utils import scaled

from repro.analysis import figure13
from repro.core import best_efficiency_point, diminishing_returns, pareto_frontier


def test_fig13_accuracy_cost_design_space(run_once):
    result = run_once(figure13, num_tasks=scaled(6), seed=0)
    print()
    print(result.format())

    for benchmark, points in result.points.items():
        by_agent = {}
        for point in points:
            by_agent.setdefault(point.agent, []).append(point)

        # ReAct is the cheap/efficient end of the design space; LATS the
        # accurate/expensive end (paper Fig. 13a).
        react_latency = min(p.latency_s for p in by_agent["react"])
        lats_latency = max(p.latency_s for p in by_agent["lats"])
        assert lats_latency > react_latency
        best_lats_accuracy = max(p.accuracy for p in by_agent["lats"])
        best_react_accuracy = max(p.accuracy for p in by_agent["react"])
        assert best_lats_accuracy >= best_react_accuracy - 0.05

        # Cost-efficiency: the most efficient configuration is never the most
        # expensive one -- returns diminish as compute increases.
        efficient = best_efficiency_point(points)
        assert efficient.latency_s < max(p.latency_s for p in points)

        frontier = pareto_frontier(points)
        assert 1 <= len(frontier) <= len(points)

    # LLMCompiler beats ReAct on HotpotQA cost-efficiency but loses on WebShop
    # (paper: DAG planning misfires on interdependent web navigation).
    hotpot = {p.agent: p for p in result.points["hotpotqa"] if p.label.endswith("v1")}
    webshop = {p.agent: p for p in result.points["webshop"] if p.label.endswith("v1")}
    assert hotpot["llmcompiler"].cost_efficiency >= 0.5 * hotpot["react"].cost_efficiency
    assert webshop["llmcompiler"].accuracy <= webshop["react"].accuracy + 0.05
