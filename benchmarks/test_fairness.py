"""Multi-tenant fairness -- vtc vs fcfs on a Zipf-skewed million users.

Two lanes: a population-sampling throughput check (rejection-inversion
Zipf draws must stay O(1) per sample -- thousands of draws from a
million-user population in well under a second, touching memory only for
tenants actually seen), and a mini fairness study asserting the
headline: under heavy skew the ``vtc`` scheduler holds the served-token
max/min ratio below fcfs at equal or better chat SLO attainment.
"""

from repro.analysis import fairness_study
from repro.serving.tenants import TenantPopulation, TenantSpec
from repro.sim.distributions import RandomStream

from bench_utils import scaled


def test_population_sampling_throughput(benchmark):
    spec = TenantSpec(num_users=1_000_000, skew=1.2, num_apps=100)

    def draw():
        population = TenantPopulation(spec)
        stream = RandomStream(0, "bench")
        for _ in range(10_000):
            population.sample(stream)
        return population

    population = benchmark.pedantic(draw, rounds=1, iterations=1)
    print()
    print(
        f"10k draws from a 1e6-user population touched "
        f"{population.distinct_seen} distinct tenants"
    )
    # Lazy sampling: memory stays proportional to tenants seen, not users.
    assert 0 < population.distinct_seen <= 10_000


def test_vtc_beats_fcfs_under_heavy_skew(run_once):
    study = run_once(
        fairness_study,
        schedulers=("fcfs", "vtc"),
        num_requests=scaled(32),
    )
    print()
    print(study.format())
    for skew in ("mild", "heavy"):
        print(study.format_frontier(skew))

    fcfs = study.mean_served_ratio("fcfs", "heavy")
    vtc = study.mean_served_ratio("vtc", "heavy")
    print(f"heavy-skew served-token ratio: fcfs {fcfs:.2f} vs vtc {vtc:.2f}")

    # The headline: vtc materially narrows the whale/tail served-token gap.
    assert vtc < fcfs

    # ... without paying for it in chat SLO attainment: at every heavy-skew
    # grid point, vtc's attainment is at least fcfs's.
    heavy = study.result.slice(skew="heavy")
    for point in heavy.slice(scheduler="vtc").points:
        qps = point.labels["qps"]
        (fcfs_point,) = heavy.slice(scheduler="fcfs", qps=qps).points
        assert point.metric("class_attainment:chat") >= fcfs_point.metric(
            "class_attainment:chat"
        )

    # The fairness frontier is queryable and vtc sits on it.
    assert "vtc" in study.frontier_schedulers("heavy")
