"""Figure 11 -- p95 latency vs offered QPS, with and without prefix caching."""

from bench_utils import scaled

from repro.analysis import figure11


def test_fig11_tail_latency_vs_qps(run_once):
    result = run_once(
        figure11,
        qps_grid={
            "sharegpt": (1.0, 2.0, 4.0, 6.0),
            "hotpotqa": (0.25, 0.5, 1.0, 2.0),
            "webshop": (0.25, 0.5, 1.0, 1.5),
        },
        num_requests=scaled(30, cap=120),
        seed=0,
    )
    print()
    print(result.format())
    peaks = result.peak_throughputs()
    print("peak throughput (QPS):", {f"{k[0]}{'+' if k[1] else '-'}pc": round(v, 2) for k, v in peaks.items()})

    # Single-turn chatbot serving sustains far higher QPS than agent serving
    # (paper: 6.4 vs 2.6 / 1.2 QPS).
    assert peaks[("sharegpt", True)] > peaks[("hotpotqa", True)]
    assert peaks[("sharegpt", True)] > peaks[("webshop", True)]

    # Prefix caching barely moves the chatbot workload but helps agents
    # (paper: 1.03x vs 5.62x peak-throughput improvement).
    sharegpt_speedup = result.caching_speedup("sharegpt")
    agent_speedup = max(result.caching_speedup("hotpotqa"), result.caching_speedup("webshop"))
    assert 0.8 <= sharegpt_speedup <= 1.4
    assert agent_speedup >= sharegpt_speedup

    # Tail latency rises with offered load for every workload.
    for (label, caching), sweep in result.curves.items():
        ordered = sorted(sweep.results, key=lambda r: r.offered_qps)
        assert ordered[-1].p95_latency >= ordered[0].p95_latency * 0.8
