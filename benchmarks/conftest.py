"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures on the
serving simulator, prints the rows/series the paper reports, and asserts the
qualitative shape (who wins, by roughly what factor) rather than absolute
numbers.

Sample sizes default to small values so the whole suite finishes in a few
minutes; set ``REPRO_BENCH_SCALE`` (e.g. ``REPRO_BENCH_SCALE=4``) to multiply
task counts toward the paper's 50-task protocol.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run the experiment exactly once under pytest-benchmark timing."""

    def _run(function, *args, **kwargs):
        return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
