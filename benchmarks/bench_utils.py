"""Helpers shared by the benchmark harness modules."""

from __future__ import annotations

import os


def bench_scale() -> int:
    """Task-count multiplier controlled by the REPRO_BENCH_SCALE env var."""
    try:
        return max(1, int(os.environ.get("REPRO_BENCH_SCALE", "1")))
    except ValueError:
        return 1


def scaled(base: int, cap: int = 50) -> int:
    """Scale a per-experiment task count, capped at the paper's 50 samples."""
    return min(cap, base * bench_scale())
