"""Simulator-core speed lane: events/sec, fast-forward speedup, 1k concurrency.

Two budgets ride in ``BENCH_baseline.json``:

* the Table IV characterization study at exact (per-token) decode fidelity,
  timed with the production decode fast-forward on -- an untimed reference
  run with the flag off checks the results are bit-identical and reports
  the speedup and simulated-events/sec; and
* the tenant-fairness study rerun at 1k+ concurrent requests, where the
  contention is genuine KV-cache pressure (the batch cap is set far above
  the request count so it cannot be the binding constraint).
"""

from __future__ import annotations

import dataclasses
import time

from bench_utils import scaled

from repro.analysis import table3, table4
from repro.analysis.fairness import fairness_study
from repro.api.builder import SystemBuilder
from repro.sim import core as sim_core


def count_events(monkeypatch):
    """Route every Environment's step through one shared counter."""
    counter = {"events": 0}
    original_step = sim_core.Environment.step

    def counting_step(self):
        counter["events"] += 1
        return original_step(self)

    monkeypatch.setattr(sim_core.Environment, "step", counting_step)
    return counter


def force_fast_forward(monkeypatch, enabled: bool) -> None:
    """Pin ``decode_fast_forward`` for every engine the builder constructs."""
    original = SystemBuilder.engine_config

    def forced(self):
        return dataclasses.replace(original(self), decode_fast_forward=enabled)

    monkeypatch.setattr(SystemBuilder, "engine_config", forced)


def peak_in_flight(serving) -> int:
    """Maximum concurrently in-flight requests over one serving run."""
    events = []
    for run in serving.results:
        events.append((run.start_time, 1))
        events.append((run.end_time, -1))
    events.sort()
    peak = current = 0
    for _, delta in events:
        current += delta
        if current > peak:
            peak = current
    return peak


def test_table4_exact_study_wall_clock(run_once, monkeypatch):
    """Wall-clock budget for the Table IV study at exact decode fidelity.

    The timed run (the figure committed to ``BENCH_baseline.json``) uses the
    production decode fast-forward.  The untimed reference rerun with the
    flag off proves fast-forwarding is a replay, not an approximation: both
    tables compare equal field for field.
    """
    tasks = scaled(8)
    counter = count_events(monkeypatch)

    def build():
        t3 = table3(
            models=("8b", "70b"), num_tasks=tasks, seed=0, max_decode_chunk=1
        )
        return t3, table4(table3_result=t3)

    started = time.perf_counter()
    fast_t3, fast_t4 = run_once(build)
    fast_elapsed = time.perf_counter() - started
    fast_events = counter["events"]

    force_fast_forward(monkeypatch, False)
    counter["events"] = 0
    started = time.perf_counter()
    ref_t3 = table3(models=("8b", "70b"), num_tasks=tasks, seed=0, max_decode_chunk=1)
    ref_t4 = table4(table3_result=ref_t3)
    ref_elapsed = time.perf_counter() - started
    ref_events = counter["events"]

    print()
    print(f"fast-forward on:  {fast_elapsed:6.2f} s  {fast_events:8d} events  "
          f"{fast_events / fast_elapsed:10,.0f} events/s")
    print(f"fast-forward off: {ref_elapsed:6.2f} s  {ref_events:8d} events  "
          f"{ref_events / ref_elapsed:10,.0f} events/s")
    print(f"speedup: {ref_elapsed / fast_elapsed:.2f}x wall-clock, "
          f"{ref_events / fast_events:.2f}x fewer events")

    # Fast-forwarding replays the per-token path bit for bit.
    assert fast_t3 == ref_t3
    assert fast_t4 == ref_t4
    # And it genuinely collapses decode runs into fewer simulated events.
    assert fast_events < ref_events
    # Conservative wall-clock floor; measured ~2x on a quiet machine, but
    # single-run timings on shared CI hardware are noisy.
    assert ref_elapsed / fast_elapsed > 1.3


def test_fairness_at_thousand_concurrent(run_once):
    """Fairness study rerun with 1k+ requests genuinely in flight at once.

    ``max_num_seqs`` is set far above the request count so the batch cap
    cannot be what makes requests contend -- the contention is KV-cache
    pressure on the default cluster, evidenced by preemptions.
    """
    num_requests = 1100
    study = run_once(
        fairness_study,
        qps_values=(64.0,),
        num_requests=num_requests,
        schedulers=("fcfs", "vtc"),
        skews=(("heavy", 1.6),),
        max_num_seqs=4096,
        seed=0,
    )

    print()
    print(study.format())

    assert study.result.points, "fairness grid came back empty"
    for point in study.result.points:
        serving = point.outcome.serving
        peak = peak_in_flight(serving)
        print(f"{point.labels}: peak in-flight {peak}, "
              f"preemptions {serving.preemptions}")
        assert serving.num_completed == num_requests
        # 1k+ requests genuinely concurrent...
        assert peak >= 1000
        # ...contending on KV memory, not on the (non-binding) batch cap.
        assert serving.preemptions > 0
