"""Predictive scale-ahead + cooperative admission -- Table IV burst study.

Sweeps the controller configurations (reactive baseline vs predictive
scale-ahead vs predictive + cooperative admission) on the shared autoscaled
pool under the chat+agent burst and asserts the qualitative shape: every
configuration holds the declared chat p95 SLO, and the cooperative
configuration beats the reactive baseline on at least one of
replica-seconds or agent rejection rate -- the trade the ROADMAP's
"cooperative admission + autoscaling" follow-on asks for.
"""

from repro.analysis import predictive_scaling_study


def test_cooperative_scale_ahead_beats_reactive_baseline(run_once):
    study = run_once(predictive_scaling_study)
    print()
    print(study.format())

    reactive = study.outcomes["reactive"]
    cooperative = study.outcomes["cooperative"]

    # Every configuration keeps the protected chat class inside its SLO.
    for mode in study.outcomes:
        assert study.chat_attainment(mode) == 1.0, mode

    # The reactive baseline sheds agent work the autoscaler was absorbing.
    assert study.agent_rejection_rate("reactive") > 0.0

    # Predictive runs report forecast telemetry; the reactive baseline has
    # no forecaster and therefore none.
    assert reactive.forecast_mae is None
    assert cooperative.forecast_mae is not None and cooperative.forecast_mae >= 0.0
    assert cooperative.scale_ahead_lead_s is not None
    assert cooperative.scale_ahead_lead_s > 0.0

    # The acceptance trade: at equal chat SLO attainment the cooperative
    # configuration wins on replica-seconds or agent rejection rate.
    assert study.beats_reactive("cooperative")
    # And the win is substantial on the shed side: cooperating with the
    # autoscaler admits a strictly larger share of the agent burst.
    assert (
        study.agent_rejection_rate("cooperative")
        < study.agent_rejection_rate("reactive")
    )
    assert cooperative.num_completed > reactive.num_completed
