"""Figure 17 -- model-size effects on test-time scaling (8B vs 70B)."""

from bench_utils import scaled

from repro.analysis import figure17


def test_fig17_model_size_effects(run_once):
    result = run_once(
        figure17,
        reflexion_trials=(1, 2, 4, 8),
        lats_expansions=(2, 4, 8),
        models=("8b", "70b"),
        num_tasks=scaled(5),
        seed=0,
    )
    print()
    print(result.format())

    def best(agent, model, metric):
        return max(getattr(p, metric) for p in result.sweeps[(agent, model)].points)

    def best_accuracy(agent, model):
        return max(p.accuracy for p in result.sweeps[(agent, model)].points)

    # The 70B model reaches higher accuracy than 8B for the sequential-scaling
    # agent (Reflexion), and at least matches it for LATS.
    assert best_accuracy("reflexion", "70b") >= best_accuracy("reflexion", "8b")
    assert best_accuracy("lats", "70b") >= best_accuracy("lats", "8b") - 0.05

    # Parallel scaling lets the small model approach the large model's
    # accuracy (the paper's compensation finding): the LATS gap is small.
    lats_gap = best_accuracy("lats", "70b") - best_accuracy("lats", "8b")
    reflexion_gap = best_accuracy("reflexion", "70b") - best_accuracy("reflexion", "8b")
    assert lats_gap <= reflexion_gap + 0.05

    # The 8B deployment is far cheaper in energy per request at comparable
    # scaling levels (1 GPU vs 8 GPUs).
    for agent in ("reflexion", "lats"):
        energy_8b = max(p.energy_wh for p in result.sweeps[(agent, "8b")].points)
        energy_70b = max(p.energy_wh for p in result.sweeps[(agent, "70b")].points)
        assert energy_70b > energy_8b

    # Token usage grows with deeper scaling for both model sizes.
    for (agent, model), sweep in result.sweeps.items():
        ordered = sorted(sweep.points, key=lambda p: list(p.config.values())[0])
        assert ordered[-1].total_tokens >= ordered[0].total_tokens * 0.8
