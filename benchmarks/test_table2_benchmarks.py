"""Table II -- description of benchmarks."""

from repro.analysis import table2


def test_table2_benchmark_descriptions(run_once):
    result = run_once(table2)
    print()
    print(result.format())

    rows = {row["Benchmark"]: row for row in result.rows()}
    assert set(rows) == {"hotpotqa", "webshop", "math", "humaneval"}
    assert "Wikipedia" in rows["hotpotqa"]["Tool"]
    assert "navigation" in rows["webshop"]["Tool"]
    assert "Wolfram" in rows["math"]["Tool"]
    assert "test" in rows["humaneval"]["Tool"]
    # Paper's agent/benchmark omissions.
    assert "cot" not in rows["webshop"]["Agent"]
    assert "llmcompiler" not in rows["math"]["Agent"]
    assert "llmcompiler" not in rows["humaneval"]["Agent"]
