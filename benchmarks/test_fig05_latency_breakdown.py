"""Figure 5 -- latency breakdown (LLM / tool / overlap / other) and e2e latency."""

import pytest
from bench_utils import scaled

from repro.analysis import figure5


def test_fig05_latency_breakdown(run_once):
    result = run_once(figure5, num_tasks=scaled(6), seed=0)
    print()
    print(result.format())

    rows = {(row["agent"], row["benchmark"]): row for row in result.rows()}
    averages = result.average_fractions()

    # Both phases contribute substantially; LLM inference is the larger share
    # on average (paper: 69.4% LLM vs 30.2% tool), and the four fractions
    # partition the request wall-clock time.
    assert averages["llm"] > averages["tool"] > 0.03
    assert sum(averages.values()) == pytest.approx(1.0, abs=0.02)

    # HotpotQA's Wikipedia calls (1.2 s each) make tools a much larger share of
    # latency than WebShop's 20 ms local navigation calls.
    assert rows[("react", "hotpotqa")]["tool_frac"] > rows[("react", "webshop")]["tool_frac"] + 0.1

    # Only LLMCompiler overlaps planning with tool execution (pink bars).
    compiler_overlap = rows[("llmcompiler", "hotpotqa")]["overlap_frac"]
    assert compiler_overlap >= 0.0
    for agent in ("react", "reflexion"):
        assert rows[(agent, "hotpotqa")]["overlap_frac"] <= compiler_overlap + 0.02

    # CoT requests are the cheapest end to end; LATS the most expensive.
    assert rows[("cot", "hotpotqa")]["e2e_latency_s"] < rows[("lats", "hotpotqa")]["e2e_latency_s"]
    assert rows[("react", "hotpotqa")]["e2e_latency_s"] < rows[("lats", "hotpotqa")]["e2e_latency_s"]
