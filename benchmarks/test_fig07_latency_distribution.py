"""Figure 7 -- end-to-end latency distribution: chatbot vs ReAct agents."""

from bench_utils import scaled

from repro.analysis import figure7


def test_fig07_latency_distribution(run_once):
    result = run_once(figure7, num_tasks=scaled(15), seed=0)
    print()
    print(result.format())

    rows = {row["workload"]: row for row in result.rows()}
    chatbot = rows["sharegpt_chatbot"]
    hotpot = rows["hotpotqa_react"]
    webshop = rows["webshop_react"]

    # Chatbot latencies are low and tight (paper: p95 = 9.7 s); agents are
    # slower with much heavier tails (paper: 20.7 s HotpotQA, 50.8 s WebShop).
    assert chatbot["p95_s"] < 15.0
    assert hotpot["p95_s"] > chatbot["p95_s"]
    assert webshop["p95_s"] > chatbot["p95_s"]

    # The latency distribution of agent workloads is much broader: the gap
    # between the median and the 95th percentile is wider than the chatbot's.
    chatbot_spread = chatbot["p95_s"] - chatbot["p50_s"]
    agent_spread = max(
        hotpot["p95_s"] - hotpot["p50_s"],
        webshop["p95_s"] - webshop["p50_s"],
    )
    assert agent_spread > chatbot_spread
