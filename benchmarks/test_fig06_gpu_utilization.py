"""Figure 6 -- GPU runtime breakdown (prefill/decode/idle) and utilization."""

from bench_utils import scaled

from repro.analysis import figure6


def test_fig06_gpu_runtime_breakdown(run_once):
    result = run_once(figure6, num_tasks=scaled(6), seed=0)
    print()
    print(result.format())

    rows = {(row["agent"], row["benchmark"]): row for row in result.rows()}

    # CoT keeps the GPU busy nearly the whole time (single LLM call, no tools).
    assert rows[("cot", "hotpotqa")]["gpu_utilization"] > 0.95

    # External-API tools (HotpotQA Wikipedia, MATH Wolfram) leave the GPU idle
    # for a large fraction of the request (paper: up to 54.5%).
    assert rows[("react", "hotpotqa")]["idle_frac"] > 0.30
    assert rows[("react", "math")]["idle_frac"] > 0.10

    # WebShop's local 20 ms tools barely idle the GPU, and HumanEval's test
    # tool keeps the GPU busy because test generation itself runs on the GPU.
    assert rows[("react", "webshop")]["idle_frac"] < rows[("react", "hotpotqa")]["idle_frac"]
    assert rows[("react", "humaneval")]["idle_frac"] < rows[("react", "hotpotqa")]["idle_frac"]

    # Decode dominates the GPU-active time (paper: 74.1% decode vs 4.7% prefill).
    for row in result.rows():
        assert row["decode_frac"] > row["prefill_frac"]
