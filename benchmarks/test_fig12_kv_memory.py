"""Figure 12 -- KV-cache memory usage with and without prefix caching."""

from bench_utils import scaled

from repro.analysis import figure12


def test_fig12_kv_cache_memory(run_once):
    result = run_once(figure12, num_requests=scaled(20, cap=80), seed=0)
    print()
    print(result.format())

    # Prefix caching reduces both the average and the maximum KV-cache
    # footprint (paper: 51.7% / 63.5% at the same offered load).
    for benchmark in ("hotpotqa", "webshop"):
        assert result.reduction(benchmark, "avg_bytes") > 0.10
        assert result.reduction(benchmark, "max_bytes") > 0.0

    # Absolute footprints stay within a single A100's KV budget (tens of GB).
    for row in result.rows():
        assert 0.0 < row["max_kv_gb"] < 20.0
        assert row["avg_kv_gb"] <= row["max_kv_gb"]
