"""Heterogeneous fleets -- the cost frontier and the hardware off-switch.

Two lanes: a mini hardware-layout study asserting the headline (the mixed
H100+L4 fleet dominates the homogeneous A100 fleet sized to the same chat
attainment on dollars per 1k served tokens, and the FleetPlanner selects
it under a cost budget), and an identity check pinning that a spec with
``hardware`` left unset reproduces the explicit paper-default hardware bit
for bit -- pinning hardware must cost nothing when it names the default.
"""

from repro.analysis import hetero_fleet_study
from repro.api import ArrivalSpec, ExperimentSpec, HardwareSpec, run_experiment

from bench_utils import scaled


def test_hetero_fleet_cost_frontier(run_once):
    study = run_once(hetero_fleet_study, num_requests=scaled(48))
    print()
    print(study.format())
    for traffic in ("steady", "burst"):
        print(study.format_frontier(traffic))

    # The headline: under both traffic programs the mixed fleet serves
    # tokens cheaper than the attainment-matched homogeneous A100 fleet
    # while holding chat attainment at least as high -- the homogeneous
    # fleet cannot sit on the frontier, the mixed fleet does.
    for traffic in ("steady", "burst"):
        assert study.mixed_dominates(traffic)
        fleets = study.frontier_fleets(traffic)
        assert "mixed-h100-l4" in fleets
        assert "a100-heavy" not in fleets

    # The planner question: under a $/1k-tokens budget the heavy A100
    # fleet cannot meet, the planner buys the mixed fleet.
    plan = study.plan(0.003, traffic="burst")
    print(f"plan under $0.003/1k tokens: {plan.describe()}")
    assert plan.labels.get("fleet") == "mixed-h100-l4"
    assert plan.cost <= 0.003
    assert plan.quality >= study.fleet_metric(
        "burst", "a100-heavy", "class_attainment:chat"
    )


def test_hardware_unset_is_identity(run_once):
    arrival = ArrivalSpec(
        process="poisson", qps=4.0, num_requests=scaled(16), task_pool_size=8
    )
    base = ExperimentSpec(
        agent="chatbot", workload="sharegpt", arrival=arrival, max_num_seqs=4
    )
    pinned = ExperimentSpec(
        agent="chatbot",
        workload="sharegpt",
        arrival=arrival,
        max_num_seqs=4,
        hardware=HardwareSpec(gpu="A100-40GB"),
    )

    def both():
        return run_experiment(base), run_experiment(pinned)

    default_run, pinned_run = run_once(both)
    print()
    print(f"hardware unset:  {default_run.summary()}")
    print(f"paper default:   {pinned_run.summary()}")

    # Unset means the paper default: explicitly pinning A100-40GB changes
    # nothing, bit for bit, including the new cost accounting.
    assert pinned_run.latencies == default_run.latencies
    assert pinned_run.summary() == default_run.summary()
