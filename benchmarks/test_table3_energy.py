"""Table III -- accuracy, latency, and GPU energy per agent request (HotpotQA)."""

from bench_utils import scaled

from repro.analysis import table3


def test_table3_per_request_energy(run_once):
    result = run_once(table3, models=("8b", "70b"), num_tasks=scaled(5), seed=0)
    print()
    print(result.format())

    rows = {(row.model, row.workload): row for row in result.rows_data}

    for model in ("8b", "70b"):
        baseline = rows[(model, "sharegpt")]
        # Single-turn inference is cheap: a fraction of a Wh (8B) to a few Wh (70B).
        assert baseline.energy_wh < 5.0
        for agent in ("reflexion", "lats"):
            row = rows[(model, agent)]
            # Agentic test-time scaling costs at least an order of magnitude
            # more latency and energy per query than single-turn inference
            # (paper: 48x-154x latency, 62x-136x energy).
            assert row.latency_vs_sharegpt > 5.0
            assert row.energy_vs_sharegpt > 5.0
            assert row.accuracy is not None

    # The 70B deployment consumes far more energy per query than 8B.
    assert rows[("70b", "sharegpt")].energy_wh > rows[("8b", "sharegpt")].energy_wh
    assert rows[("70b", "reflexion")].energy_wh > rows[("8b", "reflexion")].energy_wh

    # LATS (parallel scaling) reaches higher accuracy than Reflexion
    # (sequential scaling) on HotpotQA for both model sizes.
    for model in ("8b", "70b"):
        assert rows[(model, "lats")].accuracy >= rows[(model, "reflexion")].accuracy
