"""Figure 16 -- sequential vs parallel test-time scaling on HotpotQA."""

from bench_utils import scaled

from repro.analysis import figure16
from repro.core import diminishing_returns


def test_fig16_sequential_vs_parallel_scaling(run_once):
    result = run_once(
        figure16,
        reflexion_trials=(2, 4, 8, 16),
        lats_expansions=(4, 8, 16),
        lats_children=(1, 4, 16),
        num_tasks=scaled(8),
        seed=0,
    )
    print()
    print(result.format())

    # Sequential scaling (Reflexion): more reflection trials -> more latency,
    # accuracy improves with diminishing returns.
    reflexion = sorted(result.reflexion_sequential.points, key=lambda p: p.config["max_trials"])
    assert reflexion[-1].latency_s > reflexion[0].latency_s
    assert reflexion[-1].accuracy >= reflexion[0].accuracy
    marginals = diminishing_returns(reflexion)
    assert marginals[-1] <= max(marginals[0], 0.02)

    # Sequential scaling (LATS): larger expansion budgets never reduce accuracy.
    lats_seq = sorted(result.lats_sequential.points, key=lambda p: p.config["max_expansions"])
    assert lats_seq[-1].accuracy >= lats_seq[0].accuracy - 0.05
    assert lats_seq[-1].latency_s >= lats_seq[0].latency_s * 0.8

    # Parallel scaling (LATS children 1 -> 16): accuracy improves while the
    # end-to-end latency does not grow (the paper observes it *drops*).
    parallel = sorted(result.lats_parallel.points, key=lambda p: p.config["num_children"])
    assert parallel[-1].accuracy >= parallel[0].accuracy
    assert parallel[-1].latency_s <= parallel[0].latency_s * 1.1
