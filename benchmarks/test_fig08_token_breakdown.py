"""Figure 8 -- breakdown of input and output tokens in LLM inference."""

from bench_utils import scaled

from repro.analysis import figure8


def test_fig08_token_breakdown(run_once):
    result = run_once(figure8, num_tasks=scaled(6), seed=0)
    print()
    print(result.format())

    rows = {(row["agent"], row["benchmark"]): row for row in result.rows()}

    # Agents carry longer inputs than CoT: role instructions plus accumulated
    # LLM/tool interaction history.
    for benchmark in ("hotpotqa", "math", "humaneval"):
        cot = rows[("cot", benchmark)]
        react = rows[("react", benchmark)]
        assert react["input_total"] > cot["input_total"]
        assert react["llm_history"] + react["tool_history"] > 0
        assert cot["tool_history"] == 0

    # Knowledge/decision tasks accumulate tool history; reasoning-heavy tasks
    # accumulate LLM history (paper Section IV-B).
    assert rows[("react", "hotpotqa")]["tool_history"] > rows[("react", "math")]["tool_history"]
    assert rows[("react", "webshop")]["tool_history"] > rows[("react", "webshop")]["llm_history"]
    assert rows[("react", "math")]["llm_history"] > rows[("react", "math")]["tool_history"]

    # Per-call outputs are shorter for iterating agents than for CoT, because
    # the answer is spread over many calls; LATS is the exception.
    assert rows[("react", "hotpotqa")]["output"] < rows[("cot", "hotpotqa")]["output"]

    # Instruction + few-shot prompt segments are identical across agents on a
    # benchmark (they are the shared prefix the prefix cache exploits).
    assert rows[("react", "hotpotqa")]["instruction"] == rows[("reflexion", "hotpotqa")]["instruction"]
