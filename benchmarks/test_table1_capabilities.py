"""Table I -- comparison of AI agents (capability matrix)."""

from repro.analysis import table1


def test_table1_capability_matrix(run_once):
    result = run_once(table1)
    print()
    print(result.format())

    rows = {row["Agent"]: row for row in result.rows()}
    assert list(rows) == ["cot", "react", "reflexion", "lats", "llmcompiler"]
    # Exact capability pattern from the paper's Table I.
    assert [rows["cot"][c] for c in ("Reasoning", "Tool Use", "Reflection", "Tree Search", "Structured Planning")] == ["O", "X", "X", "X", "X"]
    assert [rows["react"][c] for c in ("Tool Use", "Reflection")] == ["O", "X"]
    assert [rows["reflexion"][c] for c in ("Reflection", "Tree Search")] == ["O", "X"]
    assert [rows["lats"][c] for c in ("Reflection", "Tree Search", "Structured Planning")] == ["O", "O", "X"]
    assert [rows["llmcompiler"][c] for c in ("Tree Search", "Structured Planning")] == ["X", "O"]
