"""Table IV -- datacenter-wide power demand under current and future traffic."""

from bench_utils import scaled

from repro.analysis import table3, table4
from repro.core import CHATGPT_QUERIES_PER_DAY, GOOGLE_QUERIES_PER_DAY, format_power


def test_table4_datacenter_power_projection(run_once):
    def build():
        t3 = table3(models=("8b", "70b"), num_tasks=scaled(4), seed=0)
        return t3, table4(table3_result=t3)

    table3_result, result = run_once(build)
    print()
    print(table3_result.format())
    print(result.format())

    chatgpt = CHATGPT_QUERIES_PER_DAY
    google = GOOGLE_QUERIES_PER_DAY

    sharegpt_8b = result.power_for("sharegpt-8b", chatgpt)
    sharegpt_70b = result.power_for("sharegpt-70b", chatgpt)
    reflexion_70b_today = result.power_for("reflexion-70b", chatgpt)
    reflexion_70b_future = result.power_for("reflexion-70b", google)
    lats_8b_today = result.power_for("lats-8b", chatgpt)

    print("ShareGPT-70B @ ChatGPT traffic:", format_power(sharegpt_70b.power_watts))
    print("Reflexion-70B @ ChatGPT traffic:", format_power(reflexion_70b_today.power_watts))
    print("Reflexion-70B @ Google traffic:", format_power(reflexion_70b_future.power_watts))

    # Single-turn serving at today's traffic fits the tens-of-MW datacenter
    # envelope (paper: 1.0 MW for 8B, 7.6 MW for 70B).
    assert sharegpt_8b.power_megawatts < 20
    assert sharegpt_70b.power_megawatts < 100

    # Agentic serving at the same traffic is orders of magnitude above the
    # single-turn baseline and scales toward GW levels at search-engine
    # traffic (paper: ~200 GW for Reflexion-70B at 13.7B queries/day).
    assert reflexion_70b_today.power_watts > 10 * sharegpt_70b.power_watts
    assert lats_8b_today.power_watts > 3 * sharegpt_8b.power_watts
    assert reflexion_70b_future.power_gigawatts > 1.0
    assert reflexion_70b_future.power_watts / reflexion_70b_today.power_watts == (
        google / chatgpt
    )
