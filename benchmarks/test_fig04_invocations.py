"""Figure 4 -- average number of LLM and tool invocations per request."""

from bench_utils import scaled

from repro.analysis import figure4
from repro.core import mean


def test_fig04_llm_and_tool_invocations(run_once):
    result = run_once(figure4, num_tasks=scaled(6), seed=0)
    print()
    print(result.format())

    rows = {(row["agent"], row["benchmark"]): row for row in result.rows()}

    # CoT performs exactly one LLM inference and no tool calls.
    for benchmark in ("hotpotqa", "math", "humaneval"):
        assert rows[("cot", benchmark)]["llm_invocations"] == 1.0
        assert rows[("cot", benchmark)]["tool_invocations"] == 0.0

    # Tool-augmented agents require many more LLM calls than CoT (paper: 9.2x
    # on average) and LATS is the most call-hungry agent on every benchmark.
    ratios = []
    for benchmark in ("hotpotqa", "math", "humaneval"):
        for agent in ("react", "reflexion", "lats"):
            ratios.append(rows[(agent, benchmark)]["llm_invocations"])
        lats_calls = rows[("lats", benchmark)]["llm_invocations"]
        assert lats_calls >= rows[("react", benchmark)]["llm_invocations"]
        assert lats_calls >= rows[("reflexion", benchmark)]["llm_invocations"]
    assert mean(ratios) > 4.0

    # WebShop's long navigation sessions need the most iterations (paper Fig. 4).
    assert rows[("react", "webshop")]["llm_invocations"] > rows[("react", "hotpotqa")]["llm_invocations"]

    # LLMCompiler's DAG planning compresses several tool calls into one LLM call.
    assert (
        rows[("llmcompiler", "hotpotqa")]["llm_invocations"]
        < rows[("react", "hotpotqa")]["llm_invocations"] + 1
    )
    assert rows[("llmcompiler", "webshop")]["tool_invocations"] > rows[("llmcompiler", "webshop")]["llm_invocations"]
