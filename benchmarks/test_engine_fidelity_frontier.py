"""Engine fidelity -- chunked prefill and speculative decoding frontiers.

Two lanes: a mini engine-fidelity study asserting the headline (chunked
prefill zeroes out prefill head-of-line blocking and improves chat p95 on
the agent-heavy mixture at equal replica-seconds, while speculation trades
draft energy for decode latency), and an off-switch identity check pinning
that a spec with both features explicitly off reproduces the default
engine's latencies exactly -- the fidelity knobs must cost nothing when
unused.
"""

from repro.analysis import engine_fidelity_study
from repro.api import ArrivalSpec, ExperimentSpec, run_experiment

from bench_utils import scaled


def test_chunking_and_speculation_frontier(run_once):
    study = run_once(
        engine_fidelity_study,
        num_requests=scaled(32),
        chunk_values=(None, 256),
    )
    print()
    print(study.format())
    print(study.format_frontier())

    advantage = study.chunking_advantage("256")
    trade = study.speculation_tradeoff()
    print(
        f"chunked prefill: {advantage['chat_p95_s']:+.2f}s chat p95, "
        f"{advantage['hol_s']:+.2f}s head-of-line blocking; "
        f"speculation: {trade['chat_p95_s']:+.2f}s chat p95 for "
        f"{trade['draft_j']:,.0f} J of draft compute"
    )

    # The headline: chunking removes head-of-line blocking entirely and
    # improves chat tail latency at equal replica-seconds.
    assert study.hol_block_s("off", "off") > 0
    assert study.hol_block_s("256", "off") == 0.0
    assert advantage["chat_p95_s"] < 0

    # Speculation is an energy-for-latency trade: faster chat tails, paid
    # for in draft joules the non-speculative arm never books.
    assert trade["chat_p95_s"] < 0
    assert trade["draft_j"] > 0
    assert trade["accepted"] > 1.0


def test_fidelity_off_switch_is_identity(run_once):
    arrival = ArrivalSpec(
        process="poisson", qps=4.0, num_requests=scaled(16), task_pool_size=8
    )
    base = ExperimentSpec(
        agent="chatbot", workload="sharegpt", arrival=arrival, max_num_seqs=4
    )
    explicit_off = ExperimentSpec(
        agent="chatbot",
        workload="sharegpt",
        arrival=arrival,
        max_num_seqs=4,
        prefill_chunk_tokens=None,
        speculative=None,
    )

    def both():
        return run_experiment(base), run_experiment(explicit_off)

    default_run, off_run = run_once(both)
    print()
    print(f"default:      {default_run.summary()}")
    print(f"explicit off: {off_run.summary()}")

    # Off is off: explicit None fields change nothing, bit for bit, and
    # neither summary grows any fidelity key.
    assert off_run.latencies == default_run.latencies
    assert off_run.summary() == default_run.summary()
    for key in ("prefill_hol_block_s", "mean_accepted_per_step", "draft_energy_j"):
        assert key not in default_run.summary()
