"""Multi-tenant fairness: does fair scheduling cost interactive latency?

A million-user Zipf population (a few whales, a long tail) offers the
chat+agent mixture through one serving fleet.  This example declares the
question as a :class:`~repro.api.StudySpec` sweeping three axes around
one tenanted base spec:

* ``scheduler`` -- fcfs, priority, sjf-by-predicted-decode, and ``vtc``
  (per-tenant virtual token counters: the pending tenant with the least
  weighted service admitted first),
* ``skew`` (the ``arrival.tenants`` field) -- a mildly (1.1) vs heavily
  (1.6) Zipf-skewed million-user population,
* ``qps`` -- moderate vs heavy offered load.

Every grid point runs the same mixture at the same seed with the engine
batch capped (``max_num_seqs=2``) so requests genuinely contend at the
scheduler's door, and the :class:`~repro.api.StudyResult` answers the
operator's question directly: ``pareto_frontier(
cost="served_token_ratio", quality="class_attainment:chat",
minimize_quality=False)`` -- which scheduler buys fairness, and what does
it pay in chat SLO attainment?

Expected read: under heavy skew fcfs lets the whale monopolise the
contended window (served-token max/min ratio several times vtc's), while
vtc holds the ratio down at equal or better chat attainment -- fairness
scheduling is close to free.

Run with::

    python examples/fairness.py
"""

from __future__ import annotations

from repro.analysis import fairness_study, predictor_error_study


def main() -> None:
    study = fairness_study()
    print(study.format())
    print()

    for skew in ("mild", "heavy"):
        print(study.format_frontier(skew))
        print()

    fcfs = study.mean_served_ratio("fcfs", "heavy")
    vtc = study.mean_served_ratio("vtc", "heavy")
    print(
        f"heavy skew, mean over loads: fcfs serves the whale "
        f"{fcfs:.1f}x the tail's tokens; vtc holds the ratio to {vtc:.1f}x"
    )
    frontier = study.frontier_schedulers("heavy")
    print(f"heavy-skew frontier (fairest first): {' -> '.join(frontier)}")
    if "vtc" in frontier:
        print(
            "vtc sits on the frontier: per-tenant token accounting buys "
            "fairness without paying for it in chat SLO attainment"
        )

    print()
    noise = predictor_error_study()
    print(noise.format())
    for error in ("0", "1", "2"):
        print(f"predictor noise sigma={error}: sjf advantage {noise.sjf_advantage(error):+.1%}")
    collapse = noise.collapse_error()
    if collapse is not None:
        print(
            f"sjf-by-predicted-decode's mean-latency win over fcfs collapses "
            f"at predictor noise sigma={collapse}: beyond that the 'shortest' "
            f"pick is effectively random"
        )


if __name__ == "__main__":
    main()
