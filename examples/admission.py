"""SLO-aware admission control under the Table IV chat+agent burst.

One shared two-replica pool serves a weighted chatbot + ReAct-agent traffic
mixture at burst load (the paper's datacenter scenario).  The sweep compares
the admission policies guarding the serving door:

* ``unlimited``    -- the open door: the agent burst drags the interactive
  chat p95 past its declared SLO,
* ``concurrency``  -- the legacy global in-flight cap: blunt, class-blind,
* ``token-bucket`` -- the agent class capped to a fixed request budget,
* ``slo-shed``     -- deadline-aware: agent work is shed (rejected at the
  door, with shed-token accounting) whenever the projected chat p95 --
  rolling completion window plus predicted-decode backlog drain -- would
  violate the SLO declared in ``MeasurementSpec``.

Expected outcome: with ``slo-shed`` the chat class's measured p95 stays
within its SLO (attainment 1.0) while a nonzero fraction of agent requests
is rejected; the open door violates the SLO and sheds nothing.

Run with::

    python examples/admission.py
"""

from __future__ import annotations

from repro.analysis import admission_study


def main() -> None:
    study = admission_study()
    print(study.format())
    print()

    held = study.chat_slo_held("slo-shed")
    open_door = study.chat_slo_held("unlimited")
    shed_stats = study.outcomes["slo-shed"].admission_stats["agent"]
    print(f"chat SLO ({study.chat_slo_s:.0f}s p95) with the open door:  "
          f"{'HELD' if open_door else 'VIOLATED'}")
    print(f"chat SLO ({study.chat_slo_s:.0f}s p95) under slo-shed:      "
          f"{'HELD' if held else 'VIOLATED'}")
    print(f"agent requests shed by slo-shed:        "
          f"{shed_stats.rejected}/{shed_stats.offered} "
          f"({shed_stats.rejection_rate * 100:.0f}%, "
          f"~{shed_stats.shed_tokens:.0f} decode tokens avoided)")


if __name__ == "__main__":
    main()
