"""Burst-profile workloads: forecasters swept across shaped traffic programs.

The ramp / square-wave / diurnal profiles that validated the arrival
forecasters now live in the spec vocabulary
(:mod:`repro.serving.shapes`), so the forecaster question becomes a
declarative study: a :class:`~repro.api.StudySpec` sweeps
``autoscaler.forecaster`` x ``arrival.shape`` on one predictive-autoscaled
chatbot pool, while an offline table scores every forecaster on each
profile's deterministic trace (the exact loop the accuracy tests pin).

Expected read: offline, the trend-aware ``holt`` forecaster wins the ramp
by a wide margin while smoothing (``ewma``) damps the square wave; in the
loop, the forecasted configurations buy scale-ahead lead time on the
burst that the ``none`` baseline (backlog-only sizing) never gets.

Run with::

    python examples/burst_profiles.py
"""

from __future__ import annotations

from repro.analysis import burst_profile_study


def main() -> None:
    study = burst_profile_study()
    print(study.format_accuracy())
    print()
    print(study.format())
    print()

    best_ramp = study.best_offline("ramp")
    print(f"best offline forecaster on the ramp: {best_ramp}")

    baseline = study.lead_on("burst", "none")
    print(
        "scale-ahead lead on the square burst: "
        + ", ".join(
            f"{name}={study.lead_on('burst', name) or 0.0:.1f}s"
            for name in ("none", "windowed-rate", "holt")
        )
    )
    if baseline is None:
        print(
            "the none baseline never scales ahead of the burst -- "
            "look-ahead is what buys the head start"
        )


if __name__ == "__main__":
    main()
