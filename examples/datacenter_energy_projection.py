"""Project datacenter power needs from per-query energy (Tables III-IV).

Measures per-query GPU energy for single-turn chatbot serving and for two
agentic test-time-scaling configurations, then projects the datacenter power
required to serve today's ChatGPT-scale traffic and tomorrow's Google-scale
traffic, comparing against reference power scales.

Run with::

    python examples/datacenter_energy_projection.py [--tasks 5]
"""

from __future__ import annotations

import argparse

from repro.analysis import format_table, table3
from repro.core import (
    CHATGPT_QUERIES_PER_DAY,
    GOOGLE_QUERIES_PER_DAY,
    format_power,
    gigawatt_threshold_energy_wh,
    project_power,
)
from repro.core.datacenter import REFERENCE_POWER_W


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tasks", type=int, default=5)
    parser.add_argument("--models", nargs="+", default=["8b", "70b"])
    args = parser.parse_args()

    measured = table3(models=tuple(args.models), num_tasks=args.tasks)
    print(measured.format())
    print()

    rows = []
    for row in measured.rows_data:
        for label, traffic in (
            ("ChatGPT today (71.4M q/day)", CHATGPT_QUERIES_PER_DAY),
            ("Google scale (13.7B q/day)", GOOGLE_QUERIES_PER_DAY),
        ):
            projection = project_power(f"{row.workload}-{row.model}", row.energy_wh, traffic)
            rows.append(
                {
                    "workload": f"{row.workload} ({row.model})",
                    "traffic": label,
                    "power": format_power(projection.power_watts),
                    "daily_energy_gwh": projection.daily_energy_gwh,
                    "x_colossus_150MW": projection.relative_to(REFERENCE_POWER_W["xai_colossus"]),
                }
            )
    print(format_table(rows, "Datacenter-wide power projection"))
    print()
    threshold = gigawatt_threshold_energy_wh()
    print(
        f"Per-query energy above ~{threshold:.0f} Wh makes ChatGPT-scale traffic a "
        ">1 GW load -- agentic test-time scaling approaches or crosses that threshold."
    )


if __name__ == "__main__":
    main()
