"""Cost-optimal fleet sizing: a declarative study with a Pareto answer.

Which fleet should you buy for the Table IV chat+agent mixture?  This
example declares the question as a :class:`~repro.api.StudySpec` sweeping
two non-qps axes around one base spec:

* ``fleet`` (the ``pools`` field) -- replica splits between a chat pool
  (least-loaded routing) and an agent pool (SJF by predicted decode,
  prefix-affinity routing), from a lean 3-replica fleet to a heavy
  6-replica one, including a misbalanced ``chat1+agent3`` candidate,
* ``traffic`` (the ``arrival.shape`` field) -- steady arrivals vs a
  square-wave burst at 6x the base level for a third of each period
  (the agent-hour spike).

Every grid point runs the same weighted mixture at the same seed, and the
:class:`~repro.api.StudyResult` answers the planning question directly:
``pareto_frontier(cost="replica_seconds", quality="class_p95:chat")`` --
what does each extra replica-second buy in interactive-class latency?

Expected read: under steady traffic the misbalanced fleet clings to the
frontier, but the burst pushes it off -- an undersized chat pool cannot
hide once the spike lands -- while the lean and balanced fleets trade
cost for chat p95 along the frontier.

Run with::

    python examples/fleet_sizing.py
"""

from __future__ import annotations

from repro.analysis import fleet_sizing_study


def main() -> None:
    study = fleet_sizing_study()
    print(study.format())
    print()

    for traffic in ("steady", "burst"):
        print(study.format_frontier(traffic))
        print()

    steady = study.frontier_fleets("steady")
    burst = study.frontier_fleets("burst")
    print(f"steady-traffic frontier: {' -> '.join(steady)}")
    print(f"burst-traffic frontier:  {' -> '.join(burst)}")
    dropped = [fleet for fleet in steady if fleet not in burst]
    if dropped:
        print(
            f"the burst pushes {', '.join(dropped)} off the frontier: "
            "an undersized chat pool cannot hide once the spike lands"
        )
    cheapest, best = burst[0], burst[-1]
    print(
        f"under burst traffic, {best} buys the best chat p95 and {cheapest} "
        "is the cheapest frontier fleet -- the replica-seconds in between "
        "are the price of interactive latency"
    )


if __name__ == "__main__":
    main()
