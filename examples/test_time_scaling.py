"""Sequential vs parallel test-time scaling (miniature of Figs. 16-17).

Scales Reflexion sequentially (more reflection trials) and LATS in parallel
(more children per tree expansion) on HotpotQA, for both backend model sizes,
and prints the accuracy-latency-energy trade-off of each scaling level.

Run with::

    python examples/test_time_scaling.py [--tasks 6] [--models 8b 70b]
"""

from __future__ import annotations

import argparse

from repro.agents import AgentConfig
from repro.analysis import format_table
from repro.api import ArrivalSpec, ExperimentSpec, run_experiment


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tasks", type=int, default=6)
    parser.add_argument("--models", nargs="+", default=["8b", "70b"])
    args = parser.parse_args()

    def characterize(agent: str, config: AgentConfig, model: str):
        spec = ExperimentSpec(
            agent=agent,
            workload="hotpotqa",
            model=model,
            agent_config=config,
            arrival=ArrivalSpec(process="single", num_requests=args.tasks),
            seed=0,
            max_decode_chunk=4,
        )
        return run_experiment(spec).characterization

    rows = []
    for model in args.models:
        for trials in (1, 2, 4, 8):
            config = AgentConfig(max_iterations=7, max_trials=trials)
            result = characterize("reflexion", config, model)
            rows.append(
                {
                    "model": model,
                    "agent": "reflexion",
                    "scaling": f"sequential trials={trials}",
                    "accuracy": result.accuracy,
                    "latency_s": result.mean_latency,
                    "tokens": result.mean_total_tokens,
                    "energy_wh": result.mean_energy_wh,
                }
            )

        for children in (1, 4, 8, 16):
            config = AgentConfig(max_iterations=7, num_children=children, max_expansions=16)
            result = characterize("lats", config, model)
            rows.append(
                {
                    "model": model,
                    "agent": "lats",
                    "scaling": f"parallel children={children}",
                    "accuracy": result.accuracy,
                    "latency_s": result.mean_latency,
                    "tokens": result.mean_total_tokens,
                    "energy_wh": result.mean_energy_wh,
                }
            )

    print(format_table(rows, "Test-time scaling on HotpotQA"))
    print()
    print("Expected shapes (as in the paper):")
    print(" * sequential scaling buys accuracy at steeply growing latency/energy,")
    print(" * parallel scaling raises accuracy without inflating latency,")
    print(" * the 8B model with parallel scaling approaches 70B accuracy at far lower energy.")


if __name__ == "__main__":
    main()
