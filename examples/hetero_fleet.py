"""Heterogeneous fleets: buy hardware, not replicas.

Which *hardware* should you buy for the chat+agent mixture?  This example
sweeps fleet hardware layouts (each pool pinned to a catalog GPU via
:class:`~repro.api.HardwareSpec`) against traffic programs:

* ``fleet`` (the ``pools`` field) -- a lean homogeneous A100 fleet, a
  heavy homogeneous A100 fleet (chat pool sized up chasing attainment),
  and a mixed fleet: one H100 chat pool for latency headroom plus cheap
  L4 replicas absorbing the agent class,
* ``traffic`` (the ``arrival.shape`` field) -- steady arrivals vs a
  square-wave burst.

Every run is priced with the catalog's GPU hourly rates (GCP on-demand),
so the planning question becomes a Pareto query -- dollars per 1k served
tokens vs chat SLO attainment -- and :class:`~repro.api.FleetPlanner`
answers it under a cost budget.

Expected read: the mixed H100+L4 fleet *dominates* the heavy homogeneous
A100 fleet -- cheaper tokens AND higher chat attainment (the A100 chat
pool is decode-floor-bound; extra A100 replicas buy attainment nothing
while A100 rates price every background token) -- and the planner picks
the mixed fleet under a budget the lean fleet's attainment cannot justify.

Run with::

    python examples/hetero_fleet.py
"""

from __future__ import annotations

from repro.analysis import hetero_fleet_study


def main() -> None:
    study = hetero_fleet_study()
    print(study.format())
    print()

    for traffic in ("steady", "burst"):
        print(study.format_frontier(traffic))
        print()

    for traffic in ("steady", "burst"):
        if study.mixed_dominates(traffic):
            print(
                f"under {traffic} traffic the mixed H100+L4 fleet dominates "
                "the heavy homogeneous A100 fleet: cheaper per 1k tokens at "
                "chat attainment at least as high"
            )

    # The planner question: best attainment within a $/1k-tokens budget.
    budget = 0.003
    plan = study.plan(budget, traffic="burst")
    print()
    print(f"planner, burst traffic, budget ${budget:g}/1k tokens:")
    print(f"  {plan.describe()}")
    print(
        f"  -> buy the {plan.labels.get('fleet', '?')} fleet: "
        f"${plan.cost:.4f}/1k tokens at {plan.quality:.0%} chat attainment"
    )


if __name__ == "__main__":
    main()
