"""Compare agent workflows on accuracy vs cost (a miniature of paper Fig. 13).

Evaluates CoT, ReAct, Reflexion, LATS, and LLMCompiler on the HotpotQA
benchmark and prints the accuracy/latency/energy trade-off, the Pareto
frontier, and the cost-efficiency ranking.

Run with::

    python examples/agent_design_space.py [--benchmark hotpotqa] [--tasks 10]
"""

from __future__ import annotations

import argparse

from repro.agents import PAPER_AGENTS
from repro.analysis import default_config, format_table
from repro.api import ArrivalSpec, ExperimentSpec, run_experiment
from repro.core import DesignPoint, normalized_efficiency, pareto_frontier
from repro.workloads import create_workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="hotpotqa", help="hotpotqa | webshop | math | humaneval")
    parser.add_argument("--tasks", type=int, default=10, help="tasks per agent")
    parser.add_argument("--model", default="8b", help="8b | 70b")
    args = parser.parse_args()

    workload = create_workload(args.benchmark)

    points: list[DesignPoint] = []
    for agent in PAPER_AGENTS:
        if not workload.supports_agent(agent):
            continue
        spec = ExperimentSpec(
            agent=agent,
            workload=args.benchmark,
            model=args.model,
            agent_config=default_config(args.benchmark),
            arrival=ArrivalSpec(process="single", num_requests=args.tasks),
            seed=0,
        )
        result = run_experiment(spec).characterization
        points.append(
            DesignPoint(
                label=agent,
                agent=agent,
                benchmark=args.benchmark,
                accuracy=result.mean_score if args.benchmark == "webshop" else result.accuracy,
                latency_s=result.mean_latency,
                total_tokens=result.mean_total_tokens,
                energy_wh=result.mean_energy_wh,
                p95_latency_s=result.latency_stats.p95,
            )
        )

    efficiency = normalized_efficiency(points)
    frontier_labels = {point.label for point in pareto_frontier(points)}
    rows = [
        {
            "agent": point.agent,
            "accuracy": point.accuracy,
            "latency_s": point.latency_s,
            "p95_s": point.p95_latency_s,
            "tokens": point.total_tokens,
            "energy_wh": point.energy_wh,
            "efficiency_norm": efficiency[point.label],
            "pareto": "*" if point.label in frontier_labels else "",
        }
        for point in sorted(points, key=lambda p: p.latency_s)
    ]
    print(format_table(rows, f"Agent design space on {args.benchmark} ({args.model})"))
    print("\n'*' marks the accuracy/latency Pareto frontier.")
    print("As in the paper, accuracy rises with compute but with rapidly diminishing returns.")


if __name__ == "__main__":
    main()
