"""Quickstart: characterise one AI agent on one benchmark.

Declares an experiment with the unified API -- a frozen
:class:`~repro.api.ExperimentSpec` run through
:func:`~repro.api.run_experiment` -- and prints the per-request cost profile
the paper reports: LLM/tool invocations, latency breakdown, GPU utilization,
token composition, and GPU energy.  A second spec shows the same workload
served open-loop on a multi-replica cluster.

Beyond the single-pool specs shown here, the same ``ExperimentSpec`` scales
to a heterogeneous elastic fleet (see ``examples/mixed_fleet.py``):

* ``pools=(PoolSpec(name=..., model=..., replicas=..., scheduler=...,
  router=..., traffic_classes=(...,)), ...)`` declares named replica pools
  with their own engine configuration; the cluster classifies each request
  (by traffic class or predicted decode length) and routes it to the right
  pool, spilling to less-loaded pools under overload,
* ``workloads=(WeightedWorkload(agent=..., workload=..., weight=...,
  name=...), ...)`` serves a weighted traffic mixture (e.g. chatbot + agent,
  the paper's Table IV datacenter scenario) through one arrival process,
* ``autoscaler=AutoscalerSpec(pool=..., min_replicas=..., max_replicas=...,
  warmup_s=...)`` grows/shrinks a pool from load signals (queue depth,
  rolling p95) at a replica-seconds cost reported in the ``ResultSet``,
* ``admission=AdmissionSpec(policy=..., per_class=(...,))`` guards the
  serving door with a policy from the ``repro.serving.admission`` registry
  (``unlimited`` | ``concurrency`` | ``token-bucket`` | ``slo-shed``), with
  per-traffic-class overrides -- e.g. shed agent load whenever the chat
  class's projected p95 would violate the SLO declared in
  ``MeasurementSpec(slo_p95_s=... / class_slos=...)``.  The ``ResultSet``
  then reports per-class rejection rates, shed-token counts, and SLO
  attainment (see ``examples/admission.py``).

Performance trajectory: CI's ``bench`` lane replays the ``benchmarks/``
suite under pytest-benchmark, uploads the run as a ``BENCH_ci.json``
artifact, and fails on a >25% mean regression against the committed
``benchmarks/BENCH_baseline.json`` -- refresh that baseline when a PR
intentionally changes performance.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.agents import AgentConfig
from repro.analysis import format_table
from repro.api import ArrivalSpec, ExperimentSpec, run_experiment


def main() -> None:
    # -- declarative experiment: what to run, not how to wire it ------------
    spec = ExperimentSpec(
        agent="react",
        workload="hotpotqa",
        model="8b",
        enable_prefix_caching=True,
        agent_config=AgentConfig(max_iterations=7, num_few_shot=2),
        arrival=ArrivalSpec(process="single", num_requests=10),
        seed=0,
    )
    result = run_experiment(spec).characterization

    print("=== ReAct on HotpotQA (Llama-3.1-8B, 1x A100-40GB) ===")
    print(f"requests:            {result.num_requests}")
    print(f"accuracy:            {result.accuracy * 100:.1f} %")
    print(f"mean latency:        {result.mean_latency:.1f} s   (p95 {result.latency_stats.p95:.1f} s)")
    print(f"LLM calls/request:   {result.mean_llm_calls:.1f}")
    print(f"tool calls/request:  {result.mean_tool_calls:.1f}")
    print(f"GPU energy/request:  {result.mean_energy_wh:.2f} Wh")
    print()

    breakdown = result.latency_breakdown()
    print("Latency breakdown (fractions of end-to-end time):")
    for phase, fraction in breakdown.fractions.items():
        print(f"  {phase:<8s} {fraction * 100:5.1f} %")
    print()

    gpu = result.gpu_breakdown()
    print(f"GPU utilization: {gpu.utilization * 100:.1f} % "
          f"(prefill {gpu.fractions['prefill'] * 100:.1f} %, "
          f"decode {gpu.fractions['decode'] * 100:.1f} %, "
          f"idle {gpu.fractions['idle'] * 100:.1f} %)")
    print()

    tokens = result.token_breakdown()
    print(format_table([tokens.as_dict()], "Average prompt/output tokens per LLM call"))
    print()

    print("Per-request details:")
    rows = [
        {
            "task": obs.result.task_id,
            "latency_s": obs.result.e2e_latency,
            "llm_calls": obs.result.num_llm_calls,
            "tool_calls": obs.result.num_tool_calls,
            "correct": obs.result.answer_correct,
            "energy_wh": obs.energy_wh,
        }
        for obs in result.observations
    ]
    print(format_table(rows))
    print()

    # -- the same spec, served open-loop on a 2-replica cluster --------------
    serving_spec = spec.with_overrides(
        replicas=2,
        router="least-loaded",
        scheduler="fcfs",
        max_decode_chunk=8,
        arrival=ArrivalSpec(process="poisson", qps=1.0, num_requests=16, task_pool_size=8),
    )
    serving = run_experiment(serving_spec)
    print("=== Same agent served at 1 QPS on 2 replicas (least-loaded routing) ===")
    for key, value in serving.summary().items():
        print(f"{key:>22s}: {value if isinstance(value, str) else round(float(value), 3)}")


if __name__ == "__main__":
    main()
