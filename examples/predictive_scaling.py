"""Predictive scale-ahead autoscaling + cooperative admission (Table IV burst).

One autoscaled pool serves the weighted chatbot + ReAct-agent mixture at
burst load while the controller configuration sweeps:

* ``reactive``    -- queue-depth autoscaling with independent ``slo-shed``
  admission (the two controllers fight: admission sheds agent work the
  autoscaler was about to absorb),
* ``predictive``  -- the autoscaler forecasts the arrival rate (Holt
  double-exponential smoothing over the arrival timeline) and provisions
  replicas a warm-up ahead of the burst,
* ``cooperative`` -- predictive scale-ahead plus a cooperative gate: the
  shed projection credits in-flight scale-ups landing within the forecast
  horizon, so agent work is shed only when warm replicas cannot catch up
  in time -- and admitted again as they land.

Expected outcome: every configuration holds the chat p95 SLO, but the
cooperative one sheds far less agent work for it (the replica-seconds
column shows what the extra served load costs), and the predictive runs
report their forecast error and the head start scale-ahead bought.

Run with::

    python examples/predictive_scaling.py
"""

from __future__ import annotations

from repro.analysis import predictive_scaling_study


def main() -> None:
    study = predictive_scaling_study()
    print(study.format())
    print()

    for mode in study.outcomes:
        attainment = study.chat_attainment(mode)
        rejection = study.agent_rejection_rate(mode)
        print(
            f"{mode:>12}: chat SLO attainment {attainment:.2f}, "
            f"agent rejection {rejection * 100:.0f}%, "
            f"{study.replica_seconds(mode):.0f} replica-seconds"
        )
    print()

    coop = study.outcomes["cooperative"]
    if coop.scale_ahead_lead_s is not None:
        mae = (
            f"{coop.forecast_mae:.2f} req/s"
            if coop.forecast_mae is not None
            else "n/a (no matured forecasts)"
        )
        print(
            f"scale-ahead head start over the reactive trigger: "
            f"{coop.scale_ahead_lead_s:.1f}s (forecast MAE {mae})"
        )
    verdict = "beats" if study.beats_reactive("cooperative") else "does not beat"
    print(
        f"predictive+cooperative {verdict} the reactive baseline at equal "
        "chat SLO attainment"
    )


if __name__ == "__main__":
    main()
