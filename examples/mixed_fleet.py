"""Mixed-traffic elastic fleet: chatbot + agent traffic on pooled replicas.

The datacenter scenario of the paper (Table IV) serves interactive chatbot
traffic and long-running agent traffic on shared capacity.  This example
declares that scenario with the fleet vocabulary of the unified API:

* two :class:`~repro.api.PoolSpec` s -- a ``chat`` pool (least-loaded
  routing, autoscaled) and an ``agent`` pool (SJF scheduling by predicted
  decode length, prefix-affinity routing),
* a weighted :class:`~repro.api.WeightedWorkload` mixture -- 60 % ShareGPT
  chatbot turns, 40 % ReAct/HotpotQA agent requests, one Poisson arrival
  process, each request tagged with its traffic class so the cluster routes
  it to the right pool (with cross-pool spill under overload),
* an :class:`~repro.api.AutoscalerSpec` -- the chat pool grows (with a
  warm-up delay) when queue depth builds and drains back down when the
  burst passes, paying for capacity in replica-seconds.

The resulting :class:`~repro.api.ResultSet` reports the fleet view: per-pool
throughput/p95/energy/replica-seconds, per-class latency/accuracy, and the
scaling timeline.

Run with::

    python examples/mixed_fleet.py
"""

from __future__ import annotations

from repro.agents import AgentConfig
from repro.analysis import format_table
from repro.api import (
    ArrivalSpec,
    AutoscalerSpec,
    ExperimentSpec,
    PoolSpec,
    WeightedWorkload,
    run_experiment,
)


def main() -> None:
    spec = ExperimentSpec(
        pools=(
            PoolSpec(
                name="chat",
                model="8b",
                replicas=1,
                router="least-loaded",
                traffic_classes=("chat",),
            ),
            PoolSpec(
                name="agent",
                model="8b",
                replicas=2,
                scheduler="sjf-by-predicted-decode",
                router="prefix-affinity",
                traffic_classes=("agent",),
            ),
        ),
        workloads=(
            WeightedWorkload(agent="chatbot", workload="sharegpt", weight=0.6, name="chat"),
            WeightedWorkload(agent="react", workload="hotpotqa", weight=0.4, name="agent"),
        ),
        autoscaler=AutoscalerSpec(
            pool="chat",
            min_replicas=1,
            max_replicas=3,
            check_interval_s=1.0,
            warmup_s=2.0,
            scale_up_pending_per_replica=2.0,
            scale_down_pending_per_replica=0.5,
        ),
        arrival=ArrivalSpec(process="poisson", qps=2.5, num_requests=30, task_pool_size=12),
        agent_config=AgentConfig(max_iterations=5),
        max_decode_chunk=8,
        # Route and schedule on noisy decode-length predictions (20 % error)
        # instead of assuming a perfect oracle.
        predictor_error=0.2,
        seed=0,
    )

    outcome = run_experiment(spec)

    print("=== Mixed chatbot+agent traffic on a two-pool elastic fleet ===")
    for key, value in outcome.summary().items():
        print(f"{key:>22s}: {value if isinstance(value, str) else round(float(value), 3)}")
    print()
    print(format_table(outcome.per_pool_summary(), "Per-pool metrics"))
    print()
    print(format_table(outcome.per_class_summary(), "Per-traffic-class metrics"))
    print()
    events = outcome.serving.scaling_events
    print(f"Scaling timeline ({len(events)} events):")
    for event in events:
        print(
            f"  t={event.time:7.2f}s  {event.pool:<6s} {event.action:<6s} "
            f"-> {event.num_provisioned} provisioned  ({event.reason})"
        )


if __name__ == "__main__":
    main()
