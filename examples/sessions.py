"""Multi-turn sessions: which router keeps a conversation's KV cache warm?

Sixteen chat conversations -- each a multi-turn session whose every turn
extends the previous turn's prompt and answer token for token, separated
by think-time gaps -- are served by a fixed two-replica fleet.  This
example declares the question as a :class:`~repro.api.StudySpec` sweeping
three axes around one sessionful base spec:

* ``router`` -- least-loaded, prefix-affinity (hash of the opening
  tokens), and ``session-affinity`` (sticky: a conversation is pinned to
  the replica that served its previous turn),
* ``turns`` (the ``arrival.sessions`` field) -- short (2) vs long (4)
  conversations,
* ``kv`` (the ``kv_cache_fraction`` field) -- a KV cache sized for the
  working set vs squeezed to 5%, so cross-turn reuse competes with
  capacity eviction.

Every grid point serves the same conversations at the same seed on the
same fleet (equal replica-seconds), with the engine batch capped
(``max_num_seqs=2``) and the task pool deliberately tiny -- concurrent
conversations that open with the same prompt are exactly the traffic that
defeats prefix hashing, which collapses them all onto one hot replica.
The :class:`~repro.api.StudyResult` answers the operator's question
directly: ``pareto_frontier(cost="p95_latency",
quality="cross_turn_hit_rate", minimize_quality=False)`` -- which router
buys conversation reuse, and what does it pay in tail latency?

Expected read: session-affinity owns the frontier.  Prefix-affinity
matches its hit rate only by hot-spotting one replica (p95 several
seconds worse at the same replica-seconds), least-loaded spreads load but
forgets conversations, and squeezing the KV cache erodes sticky routing's
advantage on long sessions -- the home replica can no longer hold every
pinned conversation's history.

Run with::

    python examples/sessions.py
"""

from __future__ import annotations

from repro.analysis import sessions_study


def main() -> None:
    study = sessions_study()
    print(study.format())
    print()

    print(study.format_frontier())
    print()

    advantage = study.affinity_advantage(turns="4", kv="1")
    print(
        f"long sessions, ample KV: session-affinity beats prefix-affinity by "
        f"{advantage['hit_rate']:+.3f} cross-turn hit rate at "
        f"{advantage['p95_s']:+.2f}s p95 (equal replica-seconds)"
    )
    frontier = study.frontier_routers()
    print(f"frontier routers (fastest first): {' -> '.join(frontier)}")
    if set(frontier) == {"session-affinity"}:
        print(
            "session-affinity owns the frontier: sticky placement turns "
            "conversations into prefix-cache hits without hot-spotting"
        )


if __name__ == "__main__":
    main()
