"""Engine fidelity: what do chunked prefill and speculative decoding buy?

A single contended replica serves the agent-heavy Table IV mixture -- 70%
short chat turns, 30% ReAct agents whose retrieval-stuffed prompts are an
order of magnitude longer -- with the engine batch capped so prefills and
decodes genuinely share each step.  This example declares the question as
a :class:`~repro.api.StudySpec` sweeping two engine-fidelity knobs around
that base spec:

* ``chunk`` (the ``prefill_chunk_tokens`` field) -- atomic prefill (off)
  vs a 256- or 1024-token per-step budget, vLLM-style: prompt chunks are
  co-scheduled with running decodes instead of parking them,
* ``spec`` (the ``speculative`` field) -- speculative decoding off vs on
  (draft model at 10% of target cost, 4 drafted tokens per step, 70%
  per-position acceptance).

Every grid point serves the same arrivals at the same seed on the same
replica (equal replica-seconds), so any movement in chat tail latency,
head-of-line blocking (``prefill_hol_block_s``), or energy is
attributable to the engine knob alone.  The
:class:`~repro.api.StudyResult` answers the operator's question directly:
``pareto_frontier(cost="energy_wh_per_query", quality="class_p95:chat")``
-- which engine features are worth their cost?

Expected read: chunked prefill zeroes out head-of-line blocking and cuts
chat p95 at identical replica-seconds -- the agent prompts stop parking
the chat decodes -- while speculation roughly halves latency but books
kilojoules of draft compute (``draft_energy_j``), an energy-for-latency
trade the frontier makes explicit.

Run with::

    python examples/engine_fidelity.py
"""

from __future__ import annotations

from repro.analysis import engine_fidelity_study


def main() -> None:
    study = engine_fidelity_study()
    print(study.format())
    print()

    print(study.format_frontier())
    print()

    advantage = study.chunking_advantage("256")
    print(
        f"chunked prefill (256-token budget, no speculation): "
        f"{advantage['chat_p95_s']:+.2f}s chat p95 and "
        f"{advantage['hol_s']:+.2f}s head-of-line blocking vs atomic prefill "
        f"({advantage['replica_s']:+.2f} replica-seconds)"
    )
    trade = study.speculation_tradeoff()
    print(
        f"speculative decoding (atomic prefill arm): "
        f"{trade['chat_p95_s']:+.2f}s chat p95 for "
        f"{trade['draft_j']:,.0f} J of draft compute "
        f"({trade['accepted']:.2f} draft tokens accepted per verify step)"
    )


if __name__ == "__main__":
    main()
