"""Capacity planning for an agent serving cluster (miniature of Figs. 11-12).

Sweeps offered load for a chatbot workload and a ReAct agent workload, with
and without prefix caching -- and across replica counts -- and reports
sustainable throughput, tail latency, KV-cache memory pressure, and energy
per query -- the quantities an operator would use to size a serving
deployment.  Experiments are declared with :class:`repro.api.ExperimentSpec`
and driven through the unified experiment API.

Run with::

    python examples/serving_capacity_planning.py [--requests 40] [--replicas 1 4]
"""

from __future__ import annotations

import argparse

from repro.agents import AgentConfig
from repro.analysis import format_table
from repro.api import ArrivalSpec, ExperimentSpec, run_sweep


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=40, help="requests per load point")
    parser.add_argument("--replicas", type=int, nargs="+", default=[1], help="replica counts to compare")
    parser.add_argument("--router", default="least-loaded", help="round-robin | least-loaded | prefix-affinity")
    args = parser.parse_args()

    scenarios = {
        "chatbot (ShareGPT)": ("chatbot", "sharegpt", (1.0, 2.0, 4.0, 6.0)),
        "ReAct (HotpotQA)": ("react", "hotpotqa", (0.25, 0.5, 1.0, 2.0)),
    }

    rows = []
    for label, (agent, benchmark, qps_values) in scenarios.items():
        for replicas in args.replicas:
            for caching in (True, False):
                spec = ExperimentSpec(
                    agent=agent,
                    workload=benchmark,
                    replicas=replicas,
                    router=args.router,
                    enable_prefix_caching=caching,
                    agent_config=AgentConfig(max_iterations=7),
                    arrival=ArrivalSpec(process="single", num_requests=args.requests),
                    max_decode_chunk=8,
                )
                sweep = run_sweep(spec, qps_values)
                peak = sweep.peak_throughput()
                busiest = max(sweep.results, key=lambda r: r.offered_qps)
                rows.append(
                    {
                        "workload": label,
                        "replicas": replicas,
                        "prefix_caching": caching,
                        "peak_qps": peak,
                        "p95_at_peak_s": busiest.p95_latency,
                        "kv_avg_gb": busiest.kv_average_bytes / 1e9,
                        "kv_max_gb": busiest.kv_max_bytes / 1e9,
                        "energy_wh_per_query": busiest.energy_wh_per_query,
                        "preemptions": busiest.preemptions,
                    }
                )

    print(format_table(rows, "Serving capacity planning (Llama-3.1-8B, A100-40GB replicas)"))
    print()
    print("Observations to look for (mirroring the paper):")
    print(" * chatbot serving sustains several times the QPS of agent serving,")
    print(" * prefix caching matters much more for the agent workload,")
    print(" * agent serving needs more KV-cache memory per sustained query.")


if __name__ == "__main__":
    main()
