"""Tests for interval arithmetic, metrics, Pareto analysis, and datacenter math."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DesignPoint,
    GpuRuntimeBreakdown,
    LatencyBreakdown,
    LatencyStats,
    PowerProjection,
    TokenBreakdown,
    best_accuracy_point,
    best_efficiency_point,
    diminishing_returns,
    format_power,
    gigawatt_threshold_energy_wh,
    intersect,
    is_dominated,
    merge_intervals,
    normalized_efficiency,
    pareto_frontier,
    percentile,
    project_power,
    project_scenarios,
    total_length,
)
from repro.core.metrics import mean


class TestIntervals:
    def test_merge_disjoint(self):
        assert merge_intervals([(0, 1), (2, 3)]) == [(0, 1), (2, 3)]

    def test_merge_overlapping(self):
        assert merge_intervals([(0, 2), (1, 3)]) == [(0, 3)]

    def test_merge_touching(self):
        assert merge_intervals([(0, 1), (1, 2)]) == [(0, 2)]

    def test_merge_handles_unsorted_and_reversed(self):
        assert merge_intervals([(5, 4), (1, 2)]) == [(1, 2), (4, 5)]

    def test_zero_length_intervals_dropped(self):
        assert merge_intervals([(1, 1), (2, 2)]) == []

    def test_total_length(self):
        assert total_length([(0, 2), (1, 3), (10, 11)]) == pytest.approx(4.0)

    def test_intersect_basic(self):
        assert intersect([(0, 5)], [(3, 8)]) == [(3, 5)]

    def test_intersect_disjoint_is_empty(self):
        assert intersect([(0, 1)], [(2, 3)]) == []

    def test_intersect_multiple_segments(self):
        result = intersect([(0, 10)], [(1, 2), (3, 4), (9, 12)])
        assert result == [(1, 2), (3, 4), (9, 10)]

    @given(
        st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 100)), min_size=0, max_size=20
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_union_length_bounds(self, intervals):
        union = total_length(intervals)
        individual = sum(abs(b - a) for a, b in intervals)
        assert 0 <= union <= individual + 1e-9

    @given(
        a=st.lists(st.tuples(st.floats(0, 50), st.floats(0, 50)), max_size=10),
        b=st.lists(st.tuples(st.floats(0, 50), st.floats(0, 50)), max_size=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_intersection_never_longer_than_either_side(self, a, b):
        inter = total_length(intersect(a, b))
        assert inter <= total_length(a) + 1e-9
        assert inter <= total_length(b) + 1e-9


class TestStatistics:
    def test_percentile_empty(self):
        assert percentile([], 95) == 0.0

    def test_percentile_single_value(self):
        assert percentile([7.0], 95) == 7.0

    def test_percentile_interpolates(self):
        assert percentile([0, 10], 50) == pytest.approx(5.0)

    def test_percentile_bounds_checked(self):
        with pytest.raises(ValueError):
            percentile([1, 2, 3], 150)

    def test_p95_of_uniform_range(self):
        values = list(range(101))
        assert percentile(values, 95) == pytest.approx(95.0)

    def test_mean_empty_is_zero(self):
        assert mean([]) == 0.0

    def test_latency_stats_from_values(self):
        stats = LatencyStats.from_values([1, 2, 3, 4, 100])
        assert stats.count == 5
        assert stats.maximum == 100
        assert stats.p50 == 3
        assert stats.mean == pytest.approx(22.0)

    @given(st.lists(st.floats(0, 1e4), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_percentile_within_min_max(self, values):
        p95 = percentile(values, 95)
        assert min(values) - 1e-9 <= p95 <= max(values) + 1e-9


class TestBreakdownAggregation:
    def test_latency_breakdown_fractions_sum_to_one(self):
        breakdown = LatencyBreakdown(llm_time=6, tool_time=3, overlap_time=0.5, other_time=0.5, total=10)
        assert sum(breakdown.fractions.values()) == pytest.approx(1.0)

    def test_latency_breakdown_zero_total(self):
        breakdown = LatencyBreakdown(0, 0, 0, 0, 0)
        assert breakdown.fractions == {"llm": 0.0, "tool": 0.0, "overlap": 0.0, "other": 0.0}

    def test_latency_breakdown_average(self):
        a = LatencyBreakdown(1, 2, 0, 1, 4)
        b = LatencyBreakdown(3, 0, 0, 1, 4)
        avg = LatencyBreakdown.average([a, b])
        assert avg.llm_time == pytest.approx(2.0)
        assert avg.total == pytest.approx(4.0)

    def test_token_breakdown_totals(self):
        tokens = TokenBreakdown(10, 20, 5, 15, 30, 40)
        assert tokens.input_total == 80
        assert tokens.total == 120
        assert tokens.as_dict()["tool_history"] == 30

    def test_gpu_breakdown_utilization(self):
        gpu = GpuRuntimeBreakdown(prefill=1.0, decode=5.0, idle=4.0)
        assert gpu.utilization == pytest.approx(0.6)
        assert gpu.fractions["idle"] == pytest.approx(0.4)

    def test_gpu_breakdown_empty_average(self):
        assert GpuRuntimeBreakdown.average([]).total == 0.0


class TestPareto:
    def _points(self):
        return [
            DesignPoint("a", "react", "hotpotqa", accuracy=0.3, latency_s=5),
            DesignPoint("b", "reflexion", "hotpotqa", accuracy=0.4, latency_s=20),
            DesignPoint("c", "lats", "hotpotqa", accuracy=0.8, latency_s=60),
            DesignPoint("d", "lats", "hotpotqa", accuracy=0.5, latency_s=80),
        ]

    def test_invalid_design_point_rejected(self):
        with pytest.raises(ValueError):
            DesignPoint("x", "react", "hotpotqa", accuracy=1.5, latency_s=1)
        with pytest.raises(ValueError):
            DesignPoint("x", "react", "hotpotqa", accuracy=0.5, latency_s=-1)

    def test_cost_efficiency(self):
        point = DesignPoint("x", "react", "hotpotqa", accuracy=0.5, latency_s=10)
        assert point.cost_efficiency == pytest.approx(0.05)
        assert point.efficiency_against(100) == pytest.approx(0.005)

    def test_pareto_frontier_excludes_dominated(self):
        frontier = pareto_frontier(self._points())
        labels = [point.label for point in frontier]
        assert labels == ["a", "b", "c"]

    def test_is_dominated(self):
        points = self._points()
        assert is_dominated(points[3], points)       # d dominated by c
        assert not is_dominated(points[0], points)   # a is cheapest

    def test_best_accuracy_and_efficiency_points(self):
        points = self._points()
        assert best_accuracy_point(points).label == "c"
        assert best_efficiency_point(points).label == "a"

    def test_best_points_of_empty_list_are_none(self):
        assert best_accuracy_point([]) is None
        assert best_efficiency_point([]) is None

    def test_normalized_efficiency_max_is_one(self):
        normalized = normalized_efficiency(self._points())
        assert max(normalized.values()) == pytest.approx(1.0)
        assert all(0 <= value <= 1 for value in normalized.values())

    def test_diminishing_returns_sequence(self):
        marginals = diminishing_returns(self._points())
        assert len(marginals) == 3
        # accuracy/latency marginal gain decreases along the curve
        assert marginals[0] >= marginals[-1]

    @given(
        st.lists(
            st.tuples(st.floats(0, 1), st.floats(0.1, 1000)), min_size=1, max_size=30
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_frontier_is_subset_and_undominated(self, raw):
        points = [
            DesignPoint(f"p{i}", "react", "hotpotqa", accuracy=a, latency_s=l)
            for i, (a, l) in enumerate(raw)
        ]
        frontier = pareto_frontier(points)
        assert set(p.label for p in frontier) <= set(p.label for p in points)
        for point in frontier:
            assert not is_dominated(point, points)


class TestDatacenter:
    def test_power_formula_matches_paper(self):
        # Paper: ShareGPT 70B at 2.55 Wh/query and 71.4 M queries/day ~ 7.6 MW.
        projection = project_power("sharegpt-70b", 2.55, 71.4e6)
        assert projection.power_megawatts == pytest.approx(7.6, rel=0.01)

    def test_reflexion_70b_google_scale_is_hundreds_of_gw(self):
        projection = project_power("reflexion-70b", 348.41, 13.7e9)
        assert projection.power_gigawatts == pytest.approx(198.9, rel=0.01)

    def test_daily_energy(self):
        projection = project_power("x", 10.0, 1e6)
        assert projection.daily_energy_gwh == pytest.approx(0.01)

    def test_relative_to_reference(self):
        projection = project_power("x", 100.0, 71.4e6)
        assert projection.relative_to(1e9) == pytest.approx(projection.power_watts / 1e9)
        with pytest.raises(ValueError):
            projection.relative_to(0)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            project_power("x", -1.0, 1e6)

    def test_project_scenarios_has_both_traffic_levels(self):
        scenarios = project_scenarios("x", 1.0)
        assert len(scenarios) == 2
        assert any(p.queries_per_day == pytest.approx(71.4e6) for p in scenarios.values())

    def test_gigawatt_threshold_near_paper_value(self):
        # Paper: ~100 Wh/query pushes tens of millions of queries/day to GW scale.
        threshold = gigawatt_threshold_energy_wh()
        assert 200 < threshold < 500

    def test_format_power_units(self):
        assert format_power(500.0) == "500.0 W"
        assert format_power(5.3e3).endswith("kW")
        assert format_power(7.6e6).endswith("MW")
        assert format_power(1.5e9).endswith("GW")
