"""Arrival-forecaster registry: construction, folding, and accuracy.

Accuracy is scored on deterministic synthetic arrival traces (no RNG --
arrival times come from :func:`repro.serving.shapes.deterministic_trace`,
the shared rate-shape integrator the spec vocabulary uses), covering the
three shapes predictive autoscaling must survive: a linear *ramp*, a
square-wave *burst*, and a sinusoidal *diurnal* cycle, scored through the
shared :func:`repro.serving.forecast.replay_score` loop.  The assertions
pin the qualitative ordering, not absolute errors: every real forecaster
beats the ``none`` baseline, and only the trend-aware ``holt`` forecaster
keeps up with a ramp.
"""

from __future__ import annotations

from typing import Dict, List

import pytest

from repro.serving.forecast import (
    ArrivalForecaster,
    EwmaForecaster,
    HoltForecaster,
    NoForecaster,
    WindowedRateForecaster,
    available_forecasters,
    build_forecaster,
    register_forecaster,
    replay_score,
)
from repro.serving.shapes import (
    DiurnalShape,
    RampShape,
    SquareWaveShape,
    deterministic_trace,
)


# ---------------------------------------------------------------------------
# Synthetic traces: the shared shape library integrating a known rate
# ---------------------------------------------------------------------------


def ramp_trace() -> List[float]:
    """Rate climbs linearly 1 -> 11 req/s over 60 s."""
    return deterministic_trace(
        RampShape(start_level=1.0, end_level=11.0, ramp_s=60.0), duration_s=60.0
    )


def burst_trace() -> List[float]:
    """Square wave: 1 req/s baseline, 10 req/s burst over t in [20, 40)."""
    return deterministic_trace(
        SquareWaveShape(
            base_level=1.0, burst_level=10.0, period_s=60.0, burst_start_s=20.0,
            burst_s=20.0,
        ),
        duration_s=60.0,
    )


def diurnal_trace() -> List[float]:
    """Sinusoidal rate 3 +- 2 req/s with a 60 s period, two cycles."""
    return deterministic_trace(
        DiurnalShape(mean_level=3.0, amplitude=2.0, period_s=60.0), duration_s=120.0
    )


def score(forecaster: ArrivalForecaster, trace: List[float], horizon_s: float = 5.0) -> float:
    """Drive the forecaster along the trace via the shared scoring loop."""
    return replay_score(forecaster, trace, horizon_s=horizon_s)


TRACES: Dict[str, List[float]] = {
    "ramp": ramp_trace(),
    "burst": burst_trace(),
    "diurnal": diurnal_trace(),
}


# ---------------------------------------------------------------------------
# Registry and construction
# ---------------------------------------------------------------------------


class TestForecasterRegistry:
    def test_builtins_registered(self):
        assert available_forecasters() == ["ewma", "holt", "none", "windowed-rate"]

    def test_build_by_name_case_insensitive(self):
        assert isinstance(build_forecaster("none"), NoForecaster)
        assert isinstance(build_forecaster("HOLT"), HoltForecaster)
        assert isinstance(build_forecaster("ewma"), EwmaForecaster)
        assert isinstance(build_forecaster("Windowed-Rate"), WindowedRateForecaster)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown arrival forecaster"):
            build_forecaster("arima")

    def test_build_threads_parameters(self):
        windowed = build_forecaster("windowed-rate", window_s=4.0)
        assert windowed.window_s == 4.0
        holt = build_forecaster("holt", bucket_s=1.0, alpha=0.7, beta=0.2)
        assert (holt.bucket_s, holt.alpha, holt.beta) == (1.0, 0.7, 0.2)

    def test_custom_forecaster_registration(self):
        class ConstantForecaster(ArrivalForecaster):
            name = "constant-test"

            def _predict_rate(self, now, horizon_s):
                return 2.5

        try:
            register_forecaster(ConstantForecaster)
            built = build_forecaster("constant-test")
            assert built.forecast_rate(1.0, 5.0) == 2.5
        finally:
            from repro.serving.forecast import FORECASTERS

            FORECASTERS.pop("constant-test", None)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            WindowedRateForecaster(window_s=0.0)
        with pytest.raises(ValueError):
            EwmaForecaster(alpha=0.0)
        with pytest.raises(ValueError):
            HoltForecaster(beta=1.5)
        with pytest.raises(ValueError):
            EwmaForecaster(bucket_s=-1.0)

    def test_forecast_requires_positive_horizon(self):
        with pytest.raises(ValueError, match="horizon_s"):
            NoForecaster().forecast_rate(1.0, 0.0)


# ---------------------------------------------------------------------------
# Mechanics
# ---------------------------------------------------------------------------


class TestForecasterMechanics:
    def test_windowed_rate_counts_trailing_window(self):
        forecaster = WindowedRateForecaster(window_s=10.0)
        for t in (1.0, 2.0, 3.0, 14.0, 15.0):
            forecaster.observe(t)
        # At t=16 the window (6, 16] holds two arrivals.
        assert forecaster.forecast_rate(16.0, 5.0) == pytest.approx(0.2)

    def test_windowed_rate_early_window_not_diluted(self):
        # Before a full window has elapsed the rate divides by elapsed time,
        # not the window span: 4 arrivals by t=2 is 2 req/s, not 0.4.
        forecaster = WindowedRateForecaster(window_s=10.0)
        for t in (0.5, 1.0, 1.5, 2.0):
            forecaster.observe(t)
        assert forecaster.forecast_rate(2.0, 5.0) == pytest.approx(2.0)

    def test_ewma_folds_empty_buckets(self):
        # A smoother that never sees empty buckets can never track a dying
        # burst down; after a long silence the level must decay.
        forecaster = EwmaForecaster(bucket_s=1.0, alpha=0.5)
        for t in (0.1, 0.2, 0.3, 0.4):  # one hot bucket: 4 req/s
            forecaster.observe(t)
        hot = forecaster.forecast_rate(2.0, 5.0)
        cold = forecaster.forecast_rate(10.0, 5.0)
        assert cold < hot * 0.1

    def test_holt_extrapolates_trend(self):
        # Rising per-bucket rates give a positive trend: the forecast at a
        # long horizon must exceed the last observed level.
        forecaster = HoltForecaster(bucket_s=1.0, alpha=0.5, beta=0.5)
        t = 0.0
        for bucket, count in enumerate((1, 2, 3, 4, 5)):
            for i in range(count):
                forecaster.observe(bucket + (i + 1) / (count + 1))
        short = forecaster.forecast_rate(5.0, 1.0)
        long = forecaster.forecast_rate(5.0, 10.0)
        assert forecaster.trend > 0
        assert long > short

    def test_forecast_never_negative(self):
        # A falling trend extrapolated far ahead must floor at zero.
        forecaster = HoltForecaster(bucket_s=1.0, alpha=0.8, beta=0.8)
        for bucket, count in enumerate((8, 4, 2, 1, 0, 0)):
            for i in range(count):
                forecaster.observe(bucket + (i + 1) / (count + 1))
        assert forecaster.forecast_rate(6.0, 50.0) == 0.0

    def test_error_accounting_scores_matured_forecasts_only(self):
        forecaster = NoForecaster()
        for t in (1.0, 2.0, 3.0, 4.0):
            forecaster.observe(t)
        forecaster.forecast_rate(0.0, 4.0)   # matures at t=4: actual 1 req/s
        forecaster.forecast_rate(4.0, 10.0)  # immature at t=5
        assert forecaster.matured_errors(5.0) == [pytest.approx(1.0)]
        assert forecaster.mean_absolute_error(5.0) == pytest.approx(1.0)
        # Nothing matured yet at t=2.
        assert forecaster.mean_absolute_error(2.0) is None


# ---------------------------------------------------------------------------
# Accuracy on synthetic traces
# ---------------------------------------------------------------------------


class TestForecasterAccuracy:
    @pytest.mark.parametrize("trace_name", sorted(TRACES))
    def test_every_real_forecaster_beats_the_none_baseline(self, trace_name):
        trace = TRACES[trace_name]
        baseline = score(NoForecaster(), trace)
        for name in ("windowed-rate", "ewma", "holt"):
            assert score(build_forecaster(name), trace) < baseline, name

    def test_trend_aware_holt_wins_the_ramp(self):
        # Persistence and EWMA chase a ramp from behind; Holt's trend term
        # extrapolates it, cutting the error by a wide margin.
        trace = TRACES["ramp"]
        holt = score(build_forecaster("holt"), trace)
        assert holt < score(build_forecaster("windowed-rate"), trace) * 0.5
        assert holt < score(build_forecaster("ewma"), trace) * 0.5

    def test_smoothing_damps_burst_noise(self):
        # On the square wave the smoothed level overshoots less than raw
        # persistence once the burst ends.
        trace = TRACES["burst"]
        assert score(build_forecaster("ewma"), trace) < score(
            build_forecaster("windowed-rate"), trace
        )
